"""SQL console: ad-hoc queries in the paper's template SQL, with
QoS-gated admission.

Parses Figure 7/8-style statements, submits them through the
:class:`~repro.core.admission.AdmissionController`, and prints results —
the workflow of an analyst at a multi-tenant streaming platform.

Run with::

    python examples/sql_console.py
"""

from repro import AStreamEngine, EngineConfig, parse_query
from repro.core.admission import (
    AdmissionController,
    AdmissionPolicy,
)
from repro.core.qos import QoSMonitor, QoSThresholds
from repro.workloads.datagen import DataGenerator

STATEMENTS = [
    # Figure 7: windowed equi-join with per-stream predicates.
    "SELECT * FROM A, B RANGE 2 "
    "WHERE A.KEY = B.KEY AND A.FIELD1 > 40 AND B.FIELD2 <= 70",
    # Figure 8: windowed grouped aggregation.
    "SELECT SUM(A.FIELD1) FROM A RANGE 3 SLICE 1 "
    "WHERE A.FIELD3 >= 20 GROUP BY A.KEY",
    # Session analytics.
    "SELECT COUNT(*) FROM B SESSION 1 GROUP BY KEY",
    # §4.7 complex pipeline: join cascade + aggregation.
    "SELECT MAX(A.FIELD2) FROM A, B RANGE 2 AGGREGATE RANGE 4 "
    "WHERE A.KEY = B.KEY AND A.FIELD1 > 10 GROUP BY KEY",
]


def main() -> None:
    qos = QoSMonitor(
        sample_every=32,
        thresholds=QoSThresholds(max_event_time_latency_ms=30_000),
    )
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), collect_sharing_stats=True),
        on_deliver=qos.on_deliver,
    )
    controller = AdmissionController(
        engine, qos, AdmissionPolicy(max_active_queries=10)
    )

    submitted = []
    for statement in STATEMENTS:
        query = parse_query(statement)
        decision = controller.submit(query, now_ms=0)
        print(f"[{decision.value:6s}] {type(query).__name__:16s} {statement}")
        submitted.append(query)
    engine.flush_session(0)
    print(f"\n{engine.active_query_count} queries live on one shared topology\n")

    gen_a, gen_b = DataGenerator(seed=11, key_max=50), DataGenerator(seed=12, key_max=50)
    for ts in range(0, 8_000, 25):
        engine.push("A", ts, gen_a.next_tuple())
        engine.push("B", ts, gen_b.next_tuple())
    engine.watermark(16_000)

    for query in submitted:
        outputs = engine.results(query.query_id)
        print(f"{query.query_id:8s} {len(outputs):6d} results", end="")
        if outputs and hasattr(outputs[0].value, "window"):
            sample = outputs[0].value
            print(f"   e.g. key={sample.key} window=[{sample.window.start},"
                  f"{sample.window.end}) value={sample.value}")
        else:
            print()
    print(f"\nadmission: {controller.admitted_total} admitted, "
          f"{controller.deferred_total} deferred, "
          f"{controller.rejected_total} rejected")
    report = engine.sharing_report(limit=3, min_jaccard=0.01)
    if report:
        print("\nruntime sharing statistics (grouping candidates, §7):")
        for stream, id_a, id_b, jaccard in report:
            print(f"  {stream}: {id_a} ~ {id_b}  overlap={jaccard:.0%}")
    engine.shutdown()


if __name__ == "__main__":
    main()
