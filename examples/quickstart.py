"""Quickstart: one shared engine, two ad-hoc queries, live results.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AggregationQuery,
    AStreamEngine,
    EngineConfig,
    JoinQuery,
    WindowSpec,
)
from repro.core.query import Comparison, FieldPredicate, TruePredicate
from repro.workloads.datagen import DataGenerator


def main() -> None:
    # One topology over two streams; queries attach and detach at runtime.
    engine = AStreamEngine(EngineConfig(streams=("A", "B")))

    join = JoinQuery(
        left_stream="A",
        right_stream="B",
        left_predicate=FieldPredicate(0, Comparison.GT, 40),
        right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(2_000),
        query_id="big-a-joins-b",
    )
    top_sum = AggregationQuery(
        stream="A",
        predicate=TruePredicate(),
        window_spec=WindowSpec.sliding(3_000, 1_000),
        query_id="sum-of-a",
    )

    # Submit both; the shared session batches them into one changelog.
    engine.submit(join, now_ms=0)
    engine.submit(top_sum, now_ms=0)
    engine.flush_session(now_ms=0)
    print(f"live queries: {engine.active_query_count}")

    # Feed both streams for six seconds of event time.
    gen_a, gen_b = DataGenerator(seed=1), DataGenerator(seed=2)
    for ts in range(0, 6_000, 50):
        engine.push("A", ts, gen_a.next_tuple())
        engine.push("B", ts, gen_b.next_tuple())
    engine.watermark(10_000)  # close all windows

    print(f"join results:        {engine.result_count('big-a-joins-b')}")
    print(f"aggregation results: {engine.result_count('sum-of-a')}")
    sample = engine.results("sum-of-a")[0]
    print(f"first aggregate:     key={sample.value.key} "
          f"window={sample.value.window} sum={sample.value.value}")

    # Ad-hoc deletion: the join stops producing, no redeployment needed.
    engine.stop("big-a-joins-b", now_ms=6_000)
    engine.flush_session(now_ms=6_000)
    print(f"live queries after ad-hoc stop: {engine.active_query_count}")

    stats = engine.component_stats()
    print(f"predicate evaluations: {stats['predicate_evaluations']}, "
          f"slice-pair joins: {stats['join_pairs_computed']} computed / "
          f"{stats['join_pairs_reused']} reused, "
          f"router copies: {stats['router_copies']}")
    engine.shutdown()


if __name__ == "__main__":
    main()
