"""Serving-layer quickstart: host the engine over TCP, drive it with the SDK.

Boots an :class:`~repro.serve.AStreamServer` on a background thread
(the same server ``python -m repro serve`` runs), then acts as a
network tenant: create an ad-hoc SQL query over the wire, subscribe to
its result stream, push event batches with credit-based flow control,
and finish with a checkpointed drain.

Run with::

    python examples/serve_quickstart.py
"""

from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.workloads.datagen import DataGenerator


def main() -> None:
    # Manual clock: event time advances with our watermarks, so the
    # example is deterministic.  `port=0` picks a free loopback port.
    config = ServeConfig(streams=("A", "B"), clock="manual")
    with ServerThread(config) as host:
        print(f"server listening on 127.0.0.1:{host.port}")

        with ServeClient("127.0.0.1", host.port, client_id="quickstart") as client:
            # Control plane: template SQL in, admission decision +
            # changelog sequence out.  The ack's sequence is the
            # deployment epoch — results are only counted for windows
            # the query observed from this marker onwards.
            created = client.create_query(
                sql=(
                    "SELECT SUM(A.FIELD1) FROM A RANGE 3 SLICE 1 "
                    "WHERE A.FIELD3 >= 2 GROUP BY A.KEY"
                ),
                at_ms=0,
            )
            print(
                f"query {created.query_id!r} admitted over the wire "
                f"(changelog sequence {created.sequence})"
            )

            # Result plane: subscribe before pushing so every window
            # closed from here on is streamed to us as `result` frames.
            client.subscribe(created.query_id)

            # Data plane: framed micro-batches against the ingest
            # credit budget (push_ack refills are handled by the SDK).
            generator = DataGenerator(seed=7)
            pushed = 0
            for step in range(8):
                base_ms = step * 1_000
                events = [
                    (base_ms + i * 100, generator.next_tuple())
                    for i in range(10)
                ]
                pushed += client.push("A", events)
                client.watermark(base_ms + 1_000)
            print(f"pushed {pushed} tuples in 8 framed batches")

            outputs, shed = client.take_results(created.query_id, wait_ms=2_000)
            print(f"streamed results: {len(outputs)} windows (shed={shed})")
            for result in outputs[:5]:
                print(
                    f"  window [{result.value.window.start},"
                    f" {result.value.window.end}) key={result.value.key}"
                    f" sum={result.value.value}"
                )

            stats = client.stats()
            print(
                "server stats: "
                f"backend={stats['backend']} "
                f"active_queries={stats['active_queries']} "
                f"sessions={stats['sessions_connected']}"
            )

            # Ops surface: drain flushes in-flight work and cuts a
            # checkpoint the server could recover from.
            drained = client.drain(checkpoint=True)
            print(f"drained with checkpoint: {drained.raw['checkpoint']}")

    print("clean shutdown: server thread joined")


if __name__ == "__main__":
    main()
