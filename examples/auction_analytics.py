"""NEXMark-flavoured auction analytics with ad-hoc query churn.

An online marketplace streams bids and auction listings; analysts attach
ad-hoc questions — hot items, big-ticket bids, per-category revenue,
winning bids — to the shared topology and detach them when answered.

Run with::

    python examples/auction_analytics.py
"""

from repro import AStreamEngine, EngineConfig
from repro.workloads.nexmark import (
    AUCTIONS,
    BIDS,
    PRICE,
    RESERVE,
    NexmarkConfig,
    NexmarkGenerator,
    category_revenue,
    currency_filter,
    hot_items,
    winning_bids,
)


def main() -> None:
    engine = AStreamEngine(EngineConfig(streams=(BIDS, AUCTIONS)))
    generator = NexmarkGenerator(NexmarkConfig(auctions=50, seed=20))

    # Standing analytics, live from the start.
    hot = hot_items(window_s=4, slide_s=2, query_id="hot-items")
    wins = winning_bids(window_s=4, query_id="winning-bids")
    engine.submit(hot, now_ms=0)
    engine.submit(wins, now_ms=0)
    engine.flush_session(0)

    def feed(from_ms, to_ms):
        for ts, listing in generator.timestamped_auctions(
            (to_ms - from_ms) // 500, from_ms, 2
        ):
            engine.push(AUCTIONS, ts, listing)
        for ts, bid in generator.timestamped_bids(
            (to_ms - from_ms) // 20, from_ms, 50
        ):
            engine.push(BIDS, ts, bid)
        engine.watermark(to_ms)

    feed(0, 8_000)

    # An analyst drops in ad-hoc: premium bids and category-7 revenue.
    premium = currency_filter(min_price=800, query_id="premium-bids")
    revenue = category_revenue(category=7, window_s=4, query_id="cat7-revenue")
    engine.submit(premium, now_ms=8_000)
    engine.submit(revenue, now_ms=8_000)
    engine.flush_session(8_000)
    feed(8_000, 16_000)

    # Questions answered: the ad-hoc queries leave, the standing ones stay.
    engine.stop("premium-bids", now_ms=16_000)
    engine.stop("cat7-revenue", now_ms=16_000)
    engine.flush_session(16_000)
    feed(16_000, 20_000)
    engine.watermark(30_000)

    hottest = {}
    for output in engine.results("hot-items"):
        result = output.value
        hottest[result.key] = max(hottest.get(result.key, 0), result.value)
    top = sorted(hottest.items(), key=lambda item: -item[1])[:3]
    print("hottest auctions (max bids in any 4s window):")
    for auction_id, count in top:
        print(f"  auction {auction_id}: {count} bids")

    winners = [
        output
        for output in engine.results("winning-bids")
        if output.value.parts[0].fields[PRICE]
        >= output.value.parts[1].fields[RESERVE]
    ]
    print(f"\nbids meeting the reserve: {len(winners)} "
          f"(of {engine.result_count('winning-bids')} joined)")

    print(f"premium (≥800) bids while watched: "
          f"{engine.result_count('premium-bids')}")
    revenue_total = sum(
        output.value.value for output in engine.results("cat7-revenue")
    )
    print(f"category-7 windowed revenue while watched: {revenue_total}")
    print(f"\nactive queries at shutdown: {engine.active_query_count}")
    engine.shutdown()


if __name__ == "__main__":
    main()
