"""The paper's motivating scenario (Figure 1): online gaming analytics.

Two input streams:

* ``ads`` — advertisements shown to players.  Field layout:
  ``f0`` = price, ``f1`` = length (seconds), ``f2`` = geo (0=DE, 1=US, …).
* ``purchases`` — game-pack purchases.  Field layout:
  ``f0`` = price, ``f1`` = age, ``f2`` = level (99 = pro).

Three teams run ad-hoc queries against the *same* shared topology:

* **Q1 (marketing, short-living)**: German ads joined with purchases over
  50 — submitted, inspected, shut down.
* **Q2 (psychology, long-running)**: long ads joined with purchases by
  under-18 players — monitors continuously.
* **Q3 (system, session-based)**: per-player session spend of pro-level
  players (session window), created and deleted by the system.

Run with::

    python examples/online_gaming.py
"""

import random

from repro import (
    AggregationQuery,
    AggregationSpec,
    AStreamEngine,
    EngineConfig,
    JoinQuery,
    WindowSpec,
)
from repro.core.query import (
    AggregationKind,
    CallablePredicate,
    Comparison,
    FieldPredicate,
)
from repro.workloads.datagen import DataTuple

GEO_DE = 0


def _ad(player: int, price: int, length: int, geo: int) -> DataTuple:
    return DataTuple(key=player, fields=(price, length, geo, 0, 0))


def _purchase(player: int, price: int, age: int, level: int) -> DataTuple:
    return DataTuple(key=player, fields=(price, age, level, 0, 0))


def main() -> None:
    engine = AStreamEngine(EngineConfig(streams=("ads", "purchases")))
    rng = random.Random(7)

    def feed(from_ms: int, to_ms: int) -> None:
        for ts in range(from_ms, to_ms, 20):
            player = rng.randrange(50)
            engine.push(
                "ads", ts,
                _ad(player, rng.randrange(30), rng.randrange(120),
                    rng.randrange(3)),
            )
            if rng.random() < 0.4:
                engine.push(
                    "purchases", ts,
                    _purchase(player, rng.randrange(100), 12 + rng.randrange(40),
                              99 if rng.random() < 0.2 else rng.randrange(98)),
                )
        engine.watermark(to_ms)

    # --- t=0: marketing's short-living Q1 and psychology's Q2 ----------
    q1 = JoinQuery(
        left_stream="ads", right_stream="purchases",
        left_predicate=FieldPredicate(2, Comparison.EQ, GEO_DE),   # A.geo = DE
        right_predicate=FieldPredicate(0, Comparison.GT, 50),      # P.price > 50
        window_spec=WindowSpec.tumbling(2_000),
        query_id="q1-marketing-de",
    )
    q2 = JoinQuery(
        left_stream="ads", right_stream="purchases",
        left_predicate=FieldPredicate(1, Comparison.GT, 60),       # A.length > 60
        right_predicate=FieldPredicate(1, Comparison.LT, 18),      # P.age < 18
        window_spec=WindowSpec.sliding(4_000, 2_000),
        query_id="q2-psychology-minors",
    )
    engine.submit(q1, now_ms=0)
    engine.submit(q2, now_ms=0)
    engine.flush_session(0)
    print("t=0s   Q1 (marketing) and Q2 (psychology) deployed ad-hoc")

    feed(0, 6_000)
    print(f"t=6s   Q1 matched {engine.result_count('q1-marketing-de')} "
          f"DE-ad/purchase pairs — marketing got its numbers")

    # --- t=6s: marketing shuts Q1 down; the system starts Q3 -----------
    engine.stop("q1-marketing-de", now_ms=6_000)
    q3 = AggregationQuery(
        stream="purchases",
        predicate=CallablePredicate(
            lambda purchase: purchase.fields[2] == 99, "P.level = Pro"
        ),
        window_spec=WindowSpec.session(1_000),
        aggregation=AggregationSpec(AggregationKind.SUM, field_index=0),
        query_id="q3-pro-loyalty",
    )
    engine.submit(q3, now_ms=6_000)
    engine.flush_session(6_000)
    print("t=6s   Q1 stopped, Q3 (pro-player session spend) started — "
          "no topology restart, one changelog")

    feed(6_000, 14_000)
    engine.watermark(20_000)

    print(f"t=14s  Q2 kept running: "
          f"{engine.result_count('q2-psychology-minors')} matches so far")
    sessions = engine.results("q3-pro-loyalty")
    print(f"t=14s  Q3 closed {len(sessions)} pro-player sessions; sample:")
    for output in sessions[:3]:
        result = output.value
        print(f"        player {result.key}: spent {result.value} in "
              f"[{result.window.start}ms, {result.window.end}ms)")

    deployments = engine.deployment_events
    print("\ndeployment latencies (ms):")
    for event in deployments:
        print(f"  {event.kind:6s} {event.query_id:24s} "
              f"{event.deployment_latency_ms}")
    engine.shutdown()


if __name__ == "__main__":
    main()
