"""Multi-tenant ad-hoc dashboard: SC2-style churn through the driver.

Simulates a team of analysts issuing short-lived queries against live
streams — the paper's second workload scenario — and prints the QoS
numbers a platform owner watches: per-query deployment latency,
event-time latency, slowest and overall data throughput.

Run with::

    python examples/adhoc_dashboard.py
"""

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.qos import QoSMonitor
from repro.harness.metrics import ScenarioMetrics
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.driver import AStreamAdapter, Driver, DriverConfig
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc2_schedule


def main() -> None:
    generator = QueryGenerator(streams=("A", "B"), seed=42, window_max_seconds=3)
    # 6 analysts' queries per 4-second wave, previous wave retired.
    schedule = sc2_schedule(
        generator, queries_per_batch=6, batch_interval_s=4, batches=4,
        kind="join",
    )
    print(f"workload: {schedule.name} "
          f"({len(schedule)} requests, peak {schedule.peak_parallelism} live)")

    qos = QoSMonitor(sample_every=32)
    cluster = SimulatedCluster(ClusterSpec(nodes=4))
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=1, retain_results=False),
        cluster=cluster,
        on_deliver=qos.on_deliver,
    )
    driver = Driver(
        AStreamAdapter(engine),
        schedule,
        ("A", "B"),
        DriverConfig(input_rate_tps=500.0, duration_s=18.0),
        qos=qos,
    )
    report = driver.run()
    metrics = ScenarioMetrics(report, speedup=cluster.speedup())

    print("\n=== platform dashboard =====================================")
    print(f" tuples processed        {report.tuples_pushed:>12,}")
    print(f" wall-clock              {report.wall_seconds:>11.2f}s")
    print(f" slowest data throughput {metrics.slowest_data_throughput_tps:>12,.0f} t/s")
    print(f" overall data throughput {metrics.overall_data_throughput_tps:>12,.0f} t/s")
    print(f" mean event-time latency {metrics.mean_event_time_latency_ms:>11.0f}ms")
    print(f" p99 event-time latency  {metrics.p99_event_time_latency_ms:>11.0f}ms")
    print(f" mean deploy latency     {metrics.mean_deployment_latency_ms:>11.0f}ms")
    print(f" query throughput        {metrics.query_throughput_qps:>11.2f} q/s")
    print(f" sustained               {str(metrics.sustained):>12}")
    print("\nper-wave deployment latency (first query of each wave):")
    for requested_at, latency in metrics.deployment_timeline()[::6]:
        print(f"  t={requested_at / 1000.0:5.1f}s -> {latency / 1000.0:5.2f}s")
    violations = qos.violations(report.deployment_latencies_ms)
    print(f"\nQoS violations: {violations or 'none'}")
    engine.shutdown()


if __name__ == "__main__":
    main()
