"""Complex ad-hoc queries (§4.7): selection + n-ary join + aggregation.

Builds an engine over four streams with a three-deep shared join cascade
(A⋈B, A⋈B⋈C, A⋈B⋈C⋈D) and submits complex queries of different arities
ad-hoc.  Intermediate join results are shared: the 2-way cascade stage
feeds both the 3-way queries *and* its own aggregations.

Run with::

    python examples/complex_pipeline.py
"""

from repro import AStreamEngine, ComplexQuery, EngineConfig, WindowSpec
from repro.core.query import AggregationSpec, Comparison, FieldPredicate
from repro.workloads.datagen import DataGenerator

STREAMS = ("A", "B", "C", "D")


def main() -> None:
    # A deep cascade needs many operator instances; parallelism 2 fits
    # the default 4-node cluster's 64 task slots.
    engine = AStreamEngine(
        EngineConfig(streams=STREAMS, max_join_arity=3, parallelism=2)
    )

    two_way = ComplexQuery(
        join_streams=("A", "B"),
        predicates=(
            FieldPredicate(0, Comparison.GE, 20),
            FieldPredicate(1, Comparison.LE, 80),
        ),
        join_window=WindowSpec.tumbling(2_000),
        aggregation_window=WindowSpec.tumbling(2_000),
        aggregation=AggregationSpec(field_index=0),
        query_id="cx-2way",
    )
    three_way = ComplexQuery(
        join_streams=("A", "B", "C"),
        predicates=(
            FieldPredicate(0, Comparison.GE, 20),
            FieldPredicate(1, Comparison.LE, 80),
            FieldPredicate(2, Comparison.GE, 10),
        ),
        join_window=WindowSpec.tumbling(2_000),
        aggregation_window=WindowSpec.tumbling(4_000),
        aggregation=AggregationSpec(field_index=0),
        query_id="cx-3way",
    )
    engine.submit(two_way, now_ms=0)
    engine.submit(three_way, now_ms=0)
    engine.flush_session(0)
    print("plans:")
    for query in (two_way, three_way):
        stages = " -> ".join(stage.operator for stage in query.stages())
        print(f"  {query.query_id}: {stages}")

    generators = {stream: DataGenerator(seed=i, key_max=20)
                  for i, stream in enumerate(STREAMS)}
    for ts in range(0, 8_000, 40):
        for stream in STREAMS:
            engine.push(stream, ts, generators[stream].next_tuple())
    engine.watermark(16_000)

    for query_id in ("cx-2way", "cx-3way"):
        outputs = engine.results(query_id)
        print(f"\n{query_id}: {len(outputs)} windowed aggregates; sample:")
        for output in outputs[:3]:
            result = output.value
            print(f"  key={result.key} window=[{result.window.start},"
                  f"{result.window.end}) sum(A.f0)={result.value}")

    # The 4-way stage exists but is unused until someone needs it — add
    # a 4-way query ad-hoc, no redeployment:
    four_way = ComplexQuery(
        join_streams=STREAMS,
        predicates=tuple(FieldPredicate(0, Comparison.GE, 0) for _ in STREAMS),
        join_window=WindowSpec.tumbling(1_000),
        aggregation_window=WindowSpec.tumbling(2_000),
        aggregation=AggregationSpec(field_index=0),
        query_id="cx-4way",
    )
    engine.submit(four_way, now_ms=8_000)
    engine.flush_session(8_000)
    for ts in range(8_000, 12_000, 40):
        for stream in STREAMS:
            engine.push(stream, ts, generators[stream].next_tuple())
    engine.watermark(20_000)
    print(f"\ncx-4way (added ad-hoc at t=8s): "
          f"{engine.result_count('cx-4way')} aggregates")

    stats = engine.component_stats()
    print(f"\nslice-pair joins: {stats['join_pairs_computed']} computed, "
          f"{stats['join_pairs_reused']} reused across the cascade")
    engine.shutdown()


if __name__ == "__main__":
    main()
