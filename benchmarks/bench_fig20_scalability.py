"""Figure 20: sustainable ad-hoc query count vs cluster size.

Paper shape: the number of sustainable queries grows with the node
count for both scenarios; SC2 tends to scale better (its churn keeps
the active set and bitsets small).

Run as a script for the measured process-backend variant::

    python benchmarks/bench_fig20_scalability.py --backend process \
        --workers 1,2

which replaces the modelled node sweep with a sustainable-query search
on real worker processes.
"""

from repro.harness.figures import fig20_scalability


def bench_fig20(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig20_scalability, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    for scenario in ("SC1", "SC2"):
        rows = sorted(
            (row for row in result.rows if row["scenario"] == scenario),
            key=lambda row: row["nodes"],
        )
        counts = [row["sustainable_queries"] for row in rows]
        # Scaling: the largest cluster sustains more than the smallest.
        assert counts[-1] > counts[0], (scenario, counts)
        assert all(count > 0 for count in counts)


def measured_scalability(worker_counts=(1, 2), quick=True):
    """Sustainable SC1 query count vs *real* worker count.

    The modelled figure scales throughput by the calibrated cluster
    model; this variant binary-searches the sustainable ad-hoc query
    count with the process-sharded backend doing the actual work.  More
    sustainable queries per added worker requires the host to have the
    cores; on smaller machines the count simply saturates (the CPU-split
    evidence lives in the Figure 17 measured companion).
    """
    from repro.harness.report import FigureResult
    from repro.harness.runner import RunnerConfig, sustainable_query_search

    result = FigureResult(
        figure_id="Figure 20 (measured)",
        title="Sustainable query count vs process-backend workers (SC1)",
        columns=("workers", "scenario", "sustainable_queries"),
        paper_expectation=(
            "Sustainable query count grows with worker count when the "
            "host has the cores to run the shards concurrently."
        ),
    )
    for workers in worker_counts:
        count = sustainable_query_search(
            RunnerConfig(
                backend="process",
                workers=workers,
                deliver_sample_every=0,
                retain_results=False,
                input_rate_tps=200.0 if quick else 400.0,
                duration_s=6.0 if quick else 10.0,
                batch_size=64,
            ),
            scenario="sc1",
            kind="agg",
            low=1,
            high=32 if quick else 256,
            min_throughput_tps=100.0,
        )
        result.add(workers=workers, scenario="SC1", sustainable_queries=count)
    return result


def main(argv=None) -> int:
    """Script entry: modelled node sweep or measured worker sweep."""
    import argparse

    from conftest import RESULTS_DIR, is_full_scale
    from repro.harness.report import render_csv, render_table

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--backend", default="model",
                        choices=("model", "process"))
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts "
                             "(process backend)")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)

    quick = args.smoke or not is_full_scale()
    if args.backend == "model":
        result = fig20_scalability(quick=quick)
    else:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part
        )
        result = measured_scalability(
            worker_counts=worker_counts, quick=quick
        )
    table = render_table(result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = result.figure_id.lower().replace(" ", "").replace("(", "_").replace(")", "")
    (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")
    (RESULTS_DIR / f"{slug}.csv").write_text(render_csv(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
