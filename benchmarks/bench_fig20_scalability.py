"""Figure 20: sustainable ad-hoc query count vs cluster size.

Paper shape: the number of sustainable queries grows with the node
count for both scenarios; SC2 tends to scale better (its churn keeps
the active set and bitsets small).
"""

from repro.harness.figures import fig20_scalability


def bench_fig20(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig20_scalability, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    for scenario in ("SC1", "SC2"):
        rows = sorted(
            (row for row in result.rows if row["scenario"] == scenario),
            key=lambda row: row["nodes"],
        )
        counts = [row["sustainable_queries"] for row in rows]
        # Scaling: the largest cluster sustains more than the smallest.
        assert counts[-1] > counts[0], (scenario, counts)
        assert all(count > 0 for count in counts)
