"""Figure 11: SC1 mean query deployment latency.

Paper series: AStream/Flink single query plus AStream's SC1
configurations; Flink's single deployment is several seconds while
AStream's steady-state deployments sit within the changelog timeout.
"""

from repro.harness.figures import fig11_sc1_deployment


def bench_fig11(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig11_sc1_deployment, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    for row in result.rows:
        if row["sut"] == "flink":
            # A Flink job deployment is in the multi-second range.
            assert row["mean_deploy_s"] > 3
        elif row["config"] != "single query":
            # AStream steady-state deployment: bounded by batching (the
            # mean includes the one-off cold start in the max only) —
            # with or without shared arrangements (the "+arr" configs):
            # warm attach must not make deployment expensive.
            assert row["mean_deploy_s"] < 3
