"""Perf regression gate for CI: batched data-path speed-up vs baseline.

Absolute tuples/second differ wildly across runner hardware, so the
committed baseline (``benchmarks/baselines/perf_baseline.csv``) gates a
machine-normalised ratio instead: the batched (``batch_size=64``) over
unbatched (``batch_size=1``) service throughput on the quick SC1 join
workload — the same shape the data-batch ablation sweeps.  A change that
slows the batched data path shrinks this ratio on every machine, while a
uniformly slower runner leaves it alone.  The absolute rates ride along
in the CSV as ungated context.

Usage::

    python benchmarks/check_perf_regression.py            # gate (CI)
    python benchmarks/check_perf_regression.py --update   # re-baseline
    python benchmarks/check_perf_regression.py --observe-overhead
    python benchmarks/check_perf_regression.py --serve    # serving layer

The gate fails when a gated metric drops more than ``TOLERANCE`` (20 %)
below its committed baseline value.

``--serve`` gates the serving layer (ISSUE 5): the framed loopback
ingest TPS relative to direct in-process ``push_many`` on the same
workload (``serve_ingest_ratio_inline``, machine-normalised the same
way as the batched-speedup ratio), against its own committed baseline
(``benchmarks/baselines/serve_baseline.csv``); the wire control-plane
rate rides along ungated and is floor-checked at 200 ops/sec.  The
binary columnar codec (ISSUE 7) adds a second gated ratio,
``serve_ingest_ratio_binary_inline`` (pipelined binary wire / direct),
with an *absolute* floor of 0.5 on top of the baseline gate.

``--fused`` gates operator-chain fusion (ISSUE 7): the fused stateless
map→filter→map→key_by chain in ``bench_micro_minispe.py`` must move
records at least 1.3x faster than the same chain unfused.

``--sharing`` gates the semantic-overlap optimizer (ISSUE 8): on the
500-query ~30%-pairwise-overlap workload of
``bench_ablation_predicate_dedup.py``, service TPS with
``share_overlapping`` on must be at least ``SHARING_RATIO_FLOOR``
(1.3x) the TPS with it off — an absolute, machine-independent floor —
and the measured ratio is additionally gated against its committed
baseline (``benchmarks/baselines/sharing_baseline.csv``) with the
standard tolerance.  The bench itself raises if the sharing-on run's
outputs differ from sharing-off (the rewrite must be exact).

``--latency`` gates the wire-to-delivery latency plane (ISSUE 9): the
inline-backend p95 of traced push frames (client→server→engine→
subscriber, closed by the span telescoping at delivery) per codec,
from ``bench_serve_throughput.measure_latency_metrics``.  Like
``--resize`` this is an inverted (ceiling) gate with a wide tolerance
(100 %): absolute loopback milliseconds vary across hosts, and the gate
exists to catch a latency path that grew an order of magnitude — a lost
force-flush, an accidental sleep — not scheduler jitter.  The metrics
live in ``serve_baseline.csv`` next to the throughput ratios;
``--latency --update`` merges them into that file without touching the
``--serve`` metrics.

``--state`` gates the keyed-state backends (ISSUE 10): the median
lsm/memory service-TPS ratio on a genuinely spilling SC1 aggregation
workload (``state_spill_tps_ratio_sc1_agg``, interleaved pairs like
``--observe-overhead``) carries an *absolute* floor of
``STATE_SPILL_RATIO_FLOOR`` (0.7x in-memory) on top of the committed
baseline gate (``benchmarks/baselines/state_baseline.csv``), and the
warm-attach first-result lag (``state_warm_attach_lag_ms``, a
deterministic event-time metric: the late query's first result window
end minus its creation time) is ceiling-gated against baseline and must
stay strictly below the cold-deploy lag measured in the same run.  The
lsm run must actually write segments; the copy-on-write snapshot
speedup rides along ungated.

``--observe-overhead`` gates the telemetry subsystem (ISSUE 4) instead:
the same SC1 workload is run in interleaved pairs with ``observe`` off
and on, and the median on/off service-throughput ratio must stay at or
above ``OBSERVE_FLOOR`` (telemetry may cost at most 10 % service_tps).
The observe-off path is already covered by the default gate — telemetry
off leaves the data path with one ``is None`` check per delivery.

``--resize`` gates elasticity (ISSUE 6): the p95 ingest pause of a live
worker-pool migration (``benchmarks/bench_resize_latency.py``) must not
*exceed* its committed baseline by more than ``RESIZE_TOLERANCE`` — the
direction is inverted relative to the throughput gates, because here
the regression is a pause getting longer (e.g. a change that silently
turns the incremental migration back into a stop-the-world drain).
Absolute milliseconds vary across runner hardware, so the tolerance is
wide (100 %): the gate exists to catch order-of-magnitude regressions,
not scheduler jitter.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.harness.runner import RunnerConfig, run_scenario

BASELINE_PATH = Path(__file__).parent / "baselines" / "perf_baseline.csv"
SERVE_BASELINE_PATH = Path(__file__).parent / "baselines" / "serve_baseline.csv"
RESIZE_BASELINE_PATH = Path(__file__).parent / "baselines" / "resize_baseline.csv"
SHARING_BASELINE_PATH = Path(__file__).parent / "baselines" / "sharing_baseline.csv"
STATE_BASELINE_PATH = Path(__file__).parent / "baselines" / "state_baseline.csv"
TOLERANCE = 0.20
RESIZE_TOLERANCE = 1.00
"""Migration pauses may grow at most this fraction over baseline."""
RESIZE_GATED_METRICS = ("resize_pause_p95_ms",)
REPEATS = 4
GATED_METRICS = ("batched_speedup_sc1_agg",)
SERVE_GATED_METRICS = (
    "serve_ingest_ratio_inline",
    "serve_ingest_ratio_binary_inline",
)
LATENCY_TOLERANCE = 1.00
"""Traced-push p95 latency may grow at most this fraction over
baseline (absolute loopback ms: wide on purpose, like --resize)."""
LATENCY_GATED_METRICS = (
    "serve_e2e_p95_ms_json_inline",
    "serve_e2e_p95_ms_binary_inline",
)
SERVE_CONTROL_FLOOR_OPS = 200.0
"""Absolute floor on wire control-plane ops/sec (the ISSUE 5 bar)."""
SERVE_BINARY_RATIO_FLOOR = 0.5
"""Absolute floor on binary pipelined wire / direct ingest (the ISSUE 7
bar): machine-independent, on top of the relative baseline gate."""
OBSERVE_FLOOR = 0.90
"""Minimum observe-on / observe-off service-throughput ratio."""
FUSED_SPEEDUP_FLOOR = 1.3
"""Absolute floor on fused / unfused stateless-chain throughput (the
ISSUE 7 fusion bar)."""
SHARING_GATED_METRICS = ("sharing_tps_ratio_500q_overlap",)
SHARING_RATIO_FLOOR = 1.3
"""Absolute floor on sharing-on / sharing-off service TPS on the
500-query ~30%-overlap workload (the ISSUE 8 bar)."""
STATE_GATED_METRICS = ("state_spill_tps_ratio_sc1_agg",)
STATE_CEILING_METRICS = ("state_warm_attach_lag_ms",)
STATE_SPILL_RATIO_FLOOR = 0.7
"""Absolute floor on lsm / in-memory service TPS while spilling (the
ISSUE 10 bar), machine-independent, on top of the baseline gate."""
STATE_ATTACH_TOLERANCE = 0.0
"""The warm-attach lag is deterministic event time, so the ceiling gate
allows no slack — any growth means windows stopped backfilling."""


def _service_tps(batch_size: int, observe: bool = False) -> float:
    """One run's service rate for the gate's SC1 aggregation workload.

    Aggregation keeps per-record work small and constant, so the
    batched/unbatched ratio isolates dispatch amortisation — the thing
    the gate protects — instead of join-state growth, which made a join
    workload's ratio noisier than the gate tolerance.
    """
    metrics = run_scenario(
        RunnerConfig(
            # Big enough that one run takes O(1s) of wall time:
            # sub-second runs made the ratio noisy relative to the
            # 20% gate tolerance.
            input_rate_tps=2_000.0,
            duration_s=10.0,
            batch_size=batch_size,
            observe=observe,
        ),
        scenario="sc1",
        queries_per_second=4.0,
        query_parallelism=16,
        kind="agg",
    )
    return metrics.report.service_rate_tps


def measure() -> dict:
    """Run the gate workloads and compute all baseline metrics.

    The batched and unbatched runs are interleaved in pairs and the
    gate metric is the *median* of the per-pair ratios: slow phases on
    a shared host hit both runs of a pair about equally, so pairing
    cancels drift that best-of-N over separate phases cannot.
    """
    _service_tps(1)  # discarded warm-up (imports, allocator, caches)
    pairs = [
        (_service_tps(1), _service_tps(64)) for _ in range(REPEATS)
    ]
    ratios = sorted(
        batched / unbatched for unbatched, batched in pairs if unbatched
    )
    median_ratio = ratios[len(ratios) // 2] if ratios else 0.0
    best_unbatched = max(unbatched for unbatched, _ in pairs)
    best_batched = max(batched for _, batched in pairs)
    return {
        "batched_speedup_sc1_agg": median_ratio,
        "batched_service_tps_sc1_agg": best_batched,
        "unbatched_service_tps_sc1_agg": best_unbatched,
    }


def measure_observe_overhead() -> dict:
    """Median observe-on / observe-off service-throughput ratio.

    Pairs are interleaved for the same drift-cancelling reason as
    :func:`measure`; telemetry runs use the default sampling cadence
    (every 32nd push), which is what ``runner --observe`` ships.
    """
    _service_tps(64)  # discarded warm-up
    pairs = [
        (_service_tps(64), _service_tps(64, observe=True))
        for _ in range(REPEATS)
    ]
    ratios = sorted(observed / plain for plain, observed in pairs if plain)
    median_ratio = ratios[len(ratios) // 2] if ratios else 0.0
    return {
        "observe_overhead_ratio_sc1_agg": median_ratio,
        "observe_on_service_tps_sc1_agg": max(on for _, on in pairs),
        "observe_off_service_tps_sc1_agg": max(off for off, _ in pairs),
    }


def measure_serve() -> dict:
    """The serving-layer gate metrics (ISSUE 5 satellite 2)."""
    try:
        from bench_serve_throughput import measure_gate_metrics
    except ImportError:  # imported as a package (pytest, tooling)
        from benchmarks.bench_serve_throughput import measure_gate_metrics
    return measure_gate_metrics()


def measure_latency() -> dict:
    """The wire-latency gate metrics (ISSUE 9)."""
    try:
        from bench_serve_throughput import measure_latency_metrics
    except ImportError:  # imported as a package (pytest, tooling)
        from benchmarks.bench_serve_throughput import measure_latency_metrics
    return measure_latency_metrics()


def measure_resize() -> dict:
    """The elasticity gate metrics (ISSUE 6 satellite 6)."""
    try:
        from bench_resize_latency import measure_gate_metrics
    except ImportError:  # imported as a package (pytest, tooling)
        from benchmarks.bench_resize_latency import measure_gate_metrics
    return measure_gate_metrics()


def measure_fused() -> dict:
    """The operator-fusion gate metrics (ISSUE 7)."""
    try:
        from bench_micro_minispe import measure_fused_speedup
    except ImportError:  # imported as a package (pytest, tooling)
        from benchmarks.bench_micro_minispe import measure_fused_speedup
    return measure_fused_speedup()


def measure_state() -> dict:
    """The keyed-state backend gate metrics (ISSUE 10)."""
    try:
        from bench_ablation_storage import (
            measure_attach_latency,
            measure_cow_snapshot,
            measure_spill_ratio,
        )
    except ImportError:  # imported as a package (pytest, tooling)
        from benchmarks.bench_ablation_storage import (
            measure_attach_latency,
            measure_cow_snapshot,
            measure_spill_ratio,
        )
    spill = measure_spill_ratio()
    attach = measure_attach_latency()
    cow = measure_cow_snapshot()
    return {
        "state_spill_tps_ratio_sc1_agg": spill["ratio"],
        "state_spilled_bytes": spill["spilled_bytes"],
        "state_warm_attach_lag_ms": attach["warm_first_lag_ms"],
        "state_cold_deploy_lag_ms": attach["cold_first_lag_ms"],
        "state_backfilled_windows": attach["backfilled_windows"],
        "state_cow_snapshot_speedup": cow["speedup"],
    }


def measure_sharing() -> dict:
    """The semantic-overlap optimizer gate metrics (ISSUE 8)."""
    try:
        from bench_ablation_predicate_dedup import measure_sharing_metrics
    except ImportError:  # imported as a package (pytest, tooling)
        from benchmarks.bench_ablation_predicate_dedup import (
            measure_sharing_metrics,
        )
    return measure_sharing_metrics()


def load_baseline(path: Path = BASELINE_PATH) -> dict:
    """Read the committed baseline metrics CSV."""
    with path.open(newline="") as handle:
        return {
            row["metric"]: float(row["value"])
            for row in csv.DictReader(handle)
        }


def write_baseline(metrics: dict, path: Path = BASELINE_PATH) -> None:
    """Persist measured metrics as the new committed baseline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("metric", "value"))
        for metric, value in metrics.items():
            writer.writerow((metric, f"{value:.4f}"))


def merge_baseline(metrics: dict, path: Path) -> None:
    """Update ``metrics`` in a baseline CSV, keeping its other rows.

    The serve baseline holds metrics from two gate modes (``--serve``
    throughput ratios and ``--latency`` percentiles); re-baselining one
    mode must not drop the other's rows.
    """
    existing = load_baseline(path) if path.exists() else {}
    existing.update(metrics)
    write_baseline(existing, path)


def check(measured: dict, baseline: dict, gated=GATED_METRICS) -> list:
    """Return failure strings for gated metrics below tolerance.

    A gated metric absent from the committed baseline is reported as
    its own actionable failure (re-run with ``--update`` after a codec
    or workload change adds a metric) instead of surfacing as a bare
    ``KeyError`` half-way through the gate.
    """
    failures = []
    for metric in gated:
        base = baseline.get(metric)
        if base is None:
            failures.append(
                f"{metric}: missing from committed baseline — re-run "
                f"check_perf_regression.py with --update to record it"
            )
            continue
        if metric not in measured:
            failures.append(
                f"{metric}: gated but not measured — the bench no "
                f"longer reports it"
            )
            continue
        floor = base * (1.0 - TOLERANCE)
        if measured[metric] < floor:
            failures.append(
                f"{metric}: measured {measured[metric]:.3f} < floor "
                f"{floor:.3f} (baseline {base:.3f} "
                f"- {TOLERANCE:.0%})"
            )
    return failures


def check_ceiling(
    measured: dict,
    baseline: dict,
    gated=RESIZE_GATED_METRICS,
    tolerance: float = RESIZE_TOLERANCE,
) -> list:
    """Inverted gate: fail when a latency metric *exceeds* baseline."""
    failures = []
    for metric in gated:
        base = baseline.get(metric)
        if base is None:
            failures.append(
                f"{metric}: missing from committed baseline — re-run "
                f"check_perf_regression.py with --update to record it"
            )
            continue
        ceiling = base * (1.0 + tolerance)
        if measured[metric] > ceiling:
            failures.append(
                f"{metric}: measured {measured[metric]:.3f} > ceiling "
                f"{ceiling:.3f} (baseline {base:.3f} "
                f"+ {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    """Gate (default) or re-baseline (``--update``) the perf metrics."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="write the measured metrics as the new "
                             "committed baseline instead of gating")
    parser.add_argument("--serve", action="store_true",
                        help="gate the serving layer's loopback ingest "
                             "ratio and control-plane rate instead of "
                             "the core baseline metrics")
    parser.add_argument("--observe-overhead", action="store_true",
                        help="gate the telemetry overhead (observe-on "
                             "service throughput must stay within 10%% "
                             "of observe-off) instead of the baseline "
                             "metrics")
    parser.add_argument("--resize", action="store_true",
                        help="gate the live-migration ingest pause (p95 "
                             "must not exceed its committed baseline) "
                             "instead of the baseline metrics")
    parser.add_argument("--latency", action="store_true",
                        help="gate the wire-to-delivery p95 of traced "
                             "pushes (ceiling gate vs the committed "
                             "serve baseline) instead of the baseline "
                             "metrics")
    parser.add_argument("--fused", action="store_true",
                        help="gate operator-chain fusion: the fused "
                             "stateless chain must move records at "
                             "least 1.3x faster than the unfused one")
    parser.add_argument("--sharing", action="store_true",
                        help="gate the semantic-overlap optimizer: "
                             "sharing-on service TPS must be at least "
                             "1.3x sharing-off on the 500-query "
                             "~30%%-overlap workload, and within "
                             "tolerance of its committed baseline")
    parser.add_argument("--state", action="store_true",
                        help="gate the keyed-state backends: the "
                             "spilling lsm run must hold >=0.7x "
                             "in-memory service TPS, and warm attach "
                             "must beat a cold deploy to first result")
    args = parser.parse_args(argv)

    if args.state:
        measured = measure_state()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        failures = []
        ratio = measured["state_spill_tps_ratio_sc1_agg"]
        if ratio < STATE_SPILL_RATIO_FLOOR:
            failures.append(
                f"spilling lsm run holds only {ratio:.3f}x in-memory "
                f"service TPS (absolute floor "
                f"{STATE_SPILL_RATIO_FLOOR:.1f}x)"
            )
        if measured["state_spilled_bytes"] <= 0:
            failures.append(
                "the lsm gate run wrote no segments — the workload no "
                "longer spills, so the ratio is meaningless"
            )
        if (
            measured["state_warm_attach_lag_ms"]
            >= measured["state_cold_deploy_lag_ms"]
        ):
            failures.append(
                f"warm attach lag "
                f"{measured['state_warm_attach_lag_ms']:.0f}ms is not "
                f"below the cold deploy lag "
                f"{measured['state_cold_deploy_lag_ms']:.0f}ms"
            )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        if args.update:
            write_baseline(measured, STATE_BASELINE_PATH)
            print(f"state baseline updated: {STATE_BASELINE_PATH}")
            return 0
        baseline = load_baseline(STATE_BASELINE_PATH)
        failures = check(measured, baseline, gated=STATE_GATED_METRICS)
        failures += check_ceiling(
            measured,
            baseline,
            gated=STATE_CEILING_METRICS,
            tolerance=STATE_ATTACH_TOLERANCE,
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(
                f"state gate OK (spill ratio {ratio:.3f} vs baseline "
                f"{baseline['state_spill_tps_ratio_sc1_agg']:.3f}, "
                f"floor {STATE_SPILL_RATIO_FLOOR:.1f}; warm attach "
                f"{measured['state_warm_attach_lag_ms']:.0f}ms < cold "
                f"{measured['state_cold_deploy_lag_ms']:.0f}ms; cow "
                f"snapshot "
                f"{measured['state_cow_snapshot_speedup']:.1f}x)"
            )
        return 1 if failures else 0

    if args.sharing:
        measured = measure_sharing()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        ratio = measured["sharing_tps_ratio_500q_overlap"]
        if ratio < SHARING_RATIO_FLOOR:
            print(
                f"REGRESSION: sharing-on service TPS is only "
                f"{ratio:.3f}x sharing-off "
                f"(absolute floor {SHARING_RATIO_FLOOR:.1f}x)",
                file=sys.stderr,
            )
            return 1
        if args.update:
            write_baseline(measured, SHARING_BASELINE_PATH)
            print(f"sharing baseline updated: {SHARING_BASELINE_PATH}")
            return 0
        baseline = load_baseline(SHARING_BASELINE_PATH)
        failures = check(measured, baseline, gated=SHARING_GATED_METRICS)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(
                "sharing gate OK ("
                + ", ".join(
                    f"{metric} {measured[metric]:.3f} vs baseline "
                    f"{baseline[metric]:.3f}"
                    for metric in SHARING_GATED_METRICS
                )
                + f"; overlap fraction "
                f"{measured['sharing_overlap_fraction']:.2f})"
            )
        return 1 if failures else 0

    if args.fused:
        measured = measure_fused()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        speedup = measured["fused_pipeline_speedup"]
        if speedup < FUSED_SPEEDUP_FLOOR:
            print(
                f"REGRESSION: fused chain is only {speedup:.3f}x the "
                f"unfused chain (floor {FUSED_SPEEDUP_FLOOR:.1f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"fusion gate OK ({speedup:.3f}x >= "
            f"{FUSED_SPEEDUP_FLOOR:.1f}x unfused throughput)"
        )
        return 0

    if args.latency:
        measured = measure_latency()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        if args.update:
            merge_baseline(measured, SERVE_BASELINE_PATH)
            print(f"latency baseline updated: {SERVE_BASELINE_PATH}")
            return 0
        baseline = load_baseline(SERVE_BASELINE_PATH)
        failures = check_ceiling(
            measured,
            baseline,
            gated=LATENCY_GATED_METRICS,
            tolerance=LATENCY_TOLERANCE,
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(
                "wire latency gate OK ("
                + ", ".join(
                    f"{metric} {measured[metric]:.3f}ms vs baseline "
                    f"{baseline[metric]:.3f}ms"
                    for metric in LATENCY_GATED_METRICS
                )
                + ")"
            )
        return 1 if failures else 0

    if args.resize:
        measured = measure_resize()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        if args.update:
            write_baseline(measured, RESIZE_BASELINE_PATH)
            print(f"resize baseline updated: {RESIZE_BASELINE_PATH}")
            return 0
        baseline = load_baseline(RESIZE_BASELINE_PATH)
        failures = check_ceiling(measured, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(
                "resize latency gate OK ("
                + ", ".join(
                    f"{metric} {measured[metric]:.3f}ms vs baseline "
                    f"{baseline[metric]:.3f}ms"
                    for metric in RESIZE_GATED_METRICS
                )
                + ")"
            )
        return 1 if failures else 0

    if args.serve:
        measured = measure_serve()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        control_rate = measured["serve_control_ops_per_sec_inline"]
        if control_rate < SERVE_CONTROL_FLOOR_OPS:
            print(
                f"REGRESSION: wire control plane sustained only "
                f"{control_rate:.0f} ops/s "
                f"(floor {SERVE_CONTROL_FLOOR_OPS:.0f})",
                file=sys.stderr,
            )
            return 1
        binary_ratio = measured["serve_ingest_ratio_binary_inline"]
        if binary_ratio < SERVE_BINARY_RATIO_FLOOR:
            print(
                f"REGRESSION: binary pipelined wire ingest is only "
                f"{binary_ratio:.3f}x direct push_many "
                f"(absolute floor {SERVE_BINARY_RATIO_FLOOR:.1f})",
                file=sys.stderr,
            )
            return 1
        if args.update:
            merge_baseline(measured, SERVE_BASELINE_PATH)
            print(f"serve baseline updated: {SERVE_BASELINE_PATH}")
            return 0
        baseline = load_baseline(SERVE_BASELINE_PATH)
        failures = check(measured, baseline, gated=SERVE_GATED_METRICS)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(
                "serve perf gate OK ("
                + ", ".join(
                    f"{metric} {measured[metric]:.3f} vs baseline "
                    f"{baseline[metric]:.3f}"
                    for metric in SERVE_GATED_METRICS
                )
                + f"; control {control_rate:,.0f} ops/s)"
            )
        return 1 if failures else 0

    if args.observe_overhead:
        measured = measure_observe_overhead()
        for metric, value in measured.items():
            print(f"{metric} = {value:,.3f}")
        ratio = measured["observe_overhead_ratio_sc1_agg"]
        if ratio < OBSERVE_FLOOR:
            print(
                f"REGRESSION: observe-on service throughput is "
                f"{ratio:.3f}x observe-off (floor {OBSERVE_FLOOR:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"observe overhead gate OK ({ratio:.3f}x >= "
            f"{OBSERVE_FLOOR:.2f}x of observe-off throughput)"
        )
        return 0

    measured = measure()
    for metric, value in measured.items():
        print(f"{metric} = {value:,.3f}")

    if args.update:
        write_baseline(measured)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    baseline = load_baseline()
    failures = check(measured, baseline)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        gated = ", ".join(
            f"{metric} {measured[metric]:.2f} vs baseline "
            f"{baseline[metric]:.2f}"
            for metric in GATED_METRICS
        )
        print(f"perf gate OK ({gated})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
