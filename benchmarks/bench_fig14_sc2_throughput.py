"""Figure 14: SC2 slowest and overall data throughput.

Paper shape: the slowest per-query throughput under churn stays above
SC1's at comparable query counts, and the overall throughput grows with
the batch size; 8 nodes scale ≈ √2 over 4.
"""

from repro.harness.figures import fig14_sc2_throughput


def bench_fig14(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig14_sc2_throughput, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    assert all(row["slowest_tps"] > 0 for row in result.rows)
    for kind in ("join", "agg"):
        four = [r for r in result.rows if r["nodes"] == 4 and r["kind"] == kind]
        eight = [r for r in result.rows if r["nodes"] == 8 and r["kind"] == kind]
        # Aggregate node-scaling shape: 8 nodes beat 4 on average.
        assert sum(r["slowest_tps"] for r in eight) > sum(
            r["slowest_tps"] for r in four
        ) * 1.1
        # Overall throughput exceeds slowest throughput (multi-query).
        for row in four + eight:
            assert row["overall_tps"] >= row["slowest_tps"]
