"""Micro-benchmarks of AStream's core primitives.

These isolate the per-operation costs behind Figure 18's component
breakdown: query-set generation (predicate evaluation + bit assembly),
changelog-set lookup (the Equation 1 DP), dynamic slice-bounds
computation, and a slice-pair join.
"""

import random

from repro.core.changelog import (
    Changelog,
    ChangelogTable,
    QueryActivation,
    QueryDeactivation,
)
from repro.core.query import Comparison, FieldPredicate, SelectionQuery, WindowSpec
from repro.core.selection import SharedSelectionOperator
from repro.core.slicing import SliceManager
from repro.core.storage import GroupedStore, ListStore
from repro.minispe.record import ChangelogMarker, Record
from repro.workloads.datagen import DataGenerator


def bench_queryset_generation_64_queries(benchmark):
    """Tagging one tuple against 64 active selection predicates."""
    operator = SharedSelectionOperator("A")
    rng = random.Random(1)
    created = tuple(
        QueryActivation(
            SelectionQuery(
                stream="A",
                predicate=FieldPredicate(
                    rng.randrange(5), Comparison.GE, rng.randrange(100)
                ),
                query_id=f"q{slot}",
            ),
            slot,
            0,
        )
        for slot in range(64)
    )
    changelog = Changelog(
        sequence=1, timestamp_ms=0, created=created, width_after=64
    )
    operator.set_collector(lambda element: None)
    operator.on_marker(ChangelogMarker(timestamp=0, changelog=changelog))
    generator = DataGenerator(seed=2)
    records = [
        Record(timestamp=100 + index, value=generator.next_tuple(), key=index)
        for index in range(256)
    ]

    def tag_batch():
        for record in records:
            operator.process(record)

    benchmark(tag_batch)


def _deep_table(epochs: int = 64) -> ChangelogTable:
    table = ChangelogTable()
    for sequence in range(1, epochs + 1):
        slot = sequence % 8
        table.append(
            Changelog(
                sequence=sequence,
                timestamp_ms=sequence,
                created=(
                    QueryActivation(
                        SelectionQuery(
                            stream="A",
                            predicate=FieldPredicate(0, Comparison.GE, 1),
                            query_id=f"c{sequence}",
                        ),
                        slot,
                        sequence,
                    ),
                ),
                deleted=(QueryDeactivation(f"d{sequence}", slot),),
                width_after=8,
            )
        )
    return table


def bench_changelog_dp_cold(benchmark):
    """Equation 1 over 64 epochs, uncached (fresh table per round)."""

    def query_all():
        table = _deep_table()
        return table.cl_set(table.current_epoch, 0)

    benchmark(query_all)


def bench_changelog_dp_memoised(benchmark):
    """Equation 1 lookups after warm-up (the operator hot path)."""
    table = _deep_table()
    table.cl_set(table.current_epoch, 0)  # warm the memo

    def query_range():
        total = 0
        for j in range(0, table.current_epoch):
            total += table.cl_set(table.current_epoch, j)
        return total

    benchmark(query_range)


def bench_slice_bounds_32_queries(benchmark):
    """Dynamic slice-bounds lookup with 32 active windowed queries."""
    manager = SliceManager()
    rng = random.Random(3)
    for slot in range(32):
        length = rng.randint(1, 5) * 1_000
        slide = rng.randint(1, length // 1_000) * 1_000
        manager.register_query(
            slot, WindowSpec.sliding(length, slide), rng.randint(0, 4) * 500
        )
    manager.on_epoch(1, 0)
    timestamps = [rng.randrange(60_000) for _ in range(512)]

    def lookup_all():
        total = 0
        for ts in timestamps:
            total += manager.slice_bounds(ts)[0]
        return total

    benchmark(lookup_all)


def _filled(store, tuples=256, queries=8):
    rng = random.Random(4)
    for index in range(tuples):
        store.add(
            index % 16,
            (f"v{index}", index),
            rng.randrange(1, 1 << queries),
        )
    return store


def bench_store_probe_grouped(benchmark):
    """Per-key probes against a grouped slice store."""
    store = _filled(GroupedStore())

    def probe():
        hits = 0
        for key in range(16):
            hits += len(store.items_for_key(key))
        return hits

    benchmark(probe)


def bench_store_probe_list(benchmark):
    """Per-key probes against a flat-list slice store."""
    store = _filled(ListStore())

    def probe():
        hits = 0
        for key in range(16):
            hits += len(store.items_for_key(key))
        return hits

    benchmark(probe)
