"""Figure 15: SC2 query deployment latency.

Paper shape: continuous creation/deletion keeps generating changelogs,
so SC2's per-query deployment latency exceeds SC1's steady state, while
remaining bounded (unlike the baseline's unbounded queueing).
"""

from repro.harness.figures import fig15_sc2_deployment


def bench_fig15(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig15_sc2_deployment, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    for row in result.rows:
        # Bounded: mean within the cold start + batching envelope.
        assert row["mean_deploy_s"] < 10
        assert row["max_deploy_s"] < 12
        # Churn keeps generating changelogs: deployments are never free.
        assert row["mean_deploy_s"] > 0
