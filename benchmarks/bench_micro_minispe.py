"""Micro-benchmarks of the substrate's hot paths.

Performance-regression guards for the primitives every experiment sits
on: record allocation, hash routing through a deployed graph, window
assignment, and operator snapshotting.
"""

import time

from repro.minispe.fuse import fuse_chains
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import FilterOperator, KeyByOperator, MapOperator
from repro.minispe.record import Record, Watermark
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CountingSink
from repro.minispe.window_operators import WindowedAggregateOperator
from repro.minispe.windows import SlidingWindows, TumblingWindows


def bench_record_allocation(benchmark):
    """Create 1k records (the engine's hottest allocation)."""

    def allocate():
        return [
            Record(index, index, index % 7, {"qs": 1}) for index in range(1_000)
        ]

    benchmark(allocate)


def bench_hash_routing_pipeline(benchmark):
    """Push 1k records through source -> map -> filter -> sink (p=4)."""
    sink_holder = []

    def make_sink():
        sink = CountingSink()
        sink_holder.append(sink)
        return sink

    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("map", lambda: MapOperator(lambda v: v + 1), 4)
        .add_operator("filter", lambda: FilterOperator(lambda v: v % 2), 4)
        .add_operator("sink", make_sink, 4)
        .connect("src", "map", Partitioning.HASH)
        .connect("map", "filter", Partitioning.FORWARD)
        .connect("filter", "sink", Partitioning.FORWARD)
    )
    runtime = JobRuntime(graph)
    records = [Record(index, index, index % 16) for index in range(1_000)]

    def push_all():
        for record in records:
            runtime.push("src", record)

    benchmark(push_all)


def bench_hash_routing_pipeline_batched(benchmark):
    """The same 1k-record pipeline pushed as batch_size=64 micro-batches.

    Compare against :func:`bench_hash_routing_pipeline`: the vectorized
    path must move records at least 2x faster (ISSUE acceptance).
    """
    sink_holder = []

    def make_sink():
        sink = CountingSink()
        sink_holder.append(sink)
        return sink

    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("map", lambda: MapOperator(lambda v: v + 1), 4)
        .add_operator("filter", lambda: FilterOperator(lambda v: v % 2), 4)
        .add_operator("sink", make_sink, 4)
        .connect("src", "map", Partitioning.HASH)
        .connect("map", "filter", Partitioning.FORWARD)
        .connect("filter", "sink", Partitioning.FORWARD)
    )
    runtime = JobRuntime(graph)
    records = [Record(index, index, index % 16) for index in range(1_000)]

    def push_all():
        runtime.push_many("src", records, batch_size=64)

    benchmark(push_all)


def _stateless_chain_graph(fused: bool) -> JobGraph:
    """source -> map -> filter -> map -> key_by -> sink, all FORWARD
    until the keyed shuffle; the four stateless operators form one
    fusible chain."""
    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("map1", lambda: MapOperator(lambda v: v + 1, "map1"), fusible=True)
        .add_operator(
            "filter1",
            lambda: FilterOperator(lambda v: v % 3, "filter1"),
            fusible=True,
        )
        .add_operator("map2", lambda: MapOperator(lambda v: v * 2, "map2"), fusible=True)
        .add_operator(
            "key_by", lambda: KeyByOperator(lambda v: v & 7, "key_by"), fusible=True
        )
        .add_operator("sink", CountingSink)
        .connect("src", "map1")
        .connect("map1", "filter1")
        .connect("filter1", "map2")
        .connect("map2", "key_by")
        .connect("key_by", "sink", Partitioning.HASH)
    )
    return fuse_chains(graph) if fused else graph


def _chain_tps(fused: bool, records, reps: int = 6) -> float:
    runtime = JobRuntime(_stateless_chain_graph(fused))
    best = 0.0
    for _ in range(reps):
        started = time.perf_counter()
        runtime.push_many("src", records, batch_size=64)
        elapsed = time.perf_counter() - started
        if elapsed:
            best = max(best, len(records) / elapsed)
    return best


def measure_fused_speedup(record_count: int = 2_000) -> dict:
    """The fusion gate metrics (``check_perf_regression.py --fused``).

    Interleaved unfused/fused pairs, median per-pair ratio — the same
    drift-cancelling shape as the other machine-normalised gates.
    """
    records = [Record(index, index, index % 16) for index in range(record_count)]
    _chain_tps(True, records, reps=2)  # warm-up, discarded
    pairs = [(_chain_tps(False, records), _chain_tps(True, records)) for _ in range(3)]
    ratios = sorted(fused / unfused for unfused, fused in pairs if unfused)
    return {
        "fused_pipeline_speedup": ratios[len(ratios) // 2] if ratios else 0.0,
        "fused_pipeline_tps": max(fused for _, fused in pairs),
        "unfused_pipeline_tps": max(unfused for unfused, _ in pairs),
    }


def bench_fused_stateless_chain(benchmark):
    """1k records through the fused map->filter->map->key_by chain.

    Compare against :func:`bench_unfused_stateless_chain`: fusion must
    move records >= 1.3x faster (gated by ``check_perf_regression.py
    --fused`` via :func:`measure_fused_speedup`).
    """
    runtime = JobRuntime(_stateless_chain_graph(fused=True))
    records = [Record(index, index, index % 16) for index in range(1_000)]
    benchmark(lambda: runtime.push_many("src", records, batch_size=64))


def bench_unfused_stateless_chain(benchmark):
    """The same chain with each operator as its own runtime stage."""
    runtime = JobRuntime(_stateless_chain_graph(fused=False))
    records = [Record(index, index, index % 16) for index in range(1_000)]
    benchmark(lambda: runtime.push_many("src", records, batch_size=64))


def bench_sliding_window_assignment(benchmark):
    """Assign 1k timestamps to overlapping sliding windows."""
    assigner = SlidingWindows(5_000, 1_000)

    def assign_all():
        total = 0
        for ts in range(0, 100_000, 100):
            total += len(assigner.assign(ts))
        return total

    benchmark(assign_all)


def bench_window_aggregate_fold_and_fire(benchmark):
    """Fold 1k records into tumbling windows and fire them."""

    def run():
        operator = WindowedAggregateOperator(
            TumblingWindows(1_000),
            init=lambda: 0,
            add=lambda acc, value: acc + value,
            merge=lambda a, b: a + b,
        )
        operator.set_collector(lambda element: None)
        for index in range(1_000):
            operator.process(Record(index * 10, 1, index % 8))
        operator.on_watermark(Watermark(timestamp=100_000))
        return operator.pending_windows()

    benchmark(run)


def bench_operator_snapshot(benchmark):
    """Snapshot a window operator holding 1k accumulators."""
    operator = WindowedAggregateOperator(
        TumblingWindows(1_000),
        init=lambda: 0,
        add=lambda acc, value: acc + value,
        merge=lambda a, b: a + b,
    )
    operator.set_collector(lambda element: None)
    for index in range(1_000):
        operator.process(Record(index * 997, 1, index))

    benchmark(operator.snapshot)
