"""Micro-benchmarks of the substrate's hot paths.

Performance-regression guards for the primitives every experiment sits
on: record allocation, hash routing through a deployed graph, window
assignment, and operator snapshotting.
"""

from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import FilterOperator, MapOperator
from repro.minispe.record import Record, Watermark
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CountingSink
from repro.minispe.window_operators import WindowedAggregateOperator
from repro.minispe.windows import SlidingWindows, TumblingWindows


def bench_record_allocation(benchmark):
    """Create 1k records (the engine's hottest allocation)."""

    def allocate():
        return [
            Record(index, index, index % 7, {"qs": 1}) for index in range(1_000)
        ]

    benchmark(allocate)


def bench_hash_routing_pipeline(benchmark):
    """Push 1k records through source -> map -> filter -> sink (p=4)."""
    sink_holder = []

    def make_sink():
        sink = CountingSink()
        sink_holder.append(sink)
        return sink

    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("map", lambda: MapOperator(lambda v: v + 1), 4)
        .add_operator("filter", lambda: FilterOperator(lambda v: v % 2), 4)
        .add_operator("sink", make_sink, 4)
        .connect("src", "map", Partitioning.HASH)
        .connect("map", "filter", Partitioning.FORWARD)
        .connect("filter", "sink", Partitioning.FORWARD)
    )
    runtime = JobRuntime(graph)
    records = [Record(index, index, index % 16) for index in range(1_000)]

    def push_all():
        for record in records:
            runtime.push("src", record)

    benchmark(push_all)


def bench_hash_routing_pipeline_batched(benchmark):
    """The same 1k-record pipeline pushed as batch_size=64 micro-batches.

    Compare against :func:`bench_hash_routing_pipeline`: the vectorized
    path must move records at least 2x faster (ISSUE acceptance).
    """
    sink_holder = []

    def make_sink():
        sink = CountingSink()
        sink_holder.append(sink)
        return sink

    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("map", lambda: MapOperator(lambda v: v + 1), 4)
        .add_operator("filter", lambda: FilterOperator(lambda v: v % 2), 4)
        .add_operator("sink", make_sink, 4)
        .connect("src", "map", Partitioning.HASH)
        .connect("map", "filter", Partitioning.FORWARD)
        .connect("filter", "sink", Partitioning.FORWARD)
    )
    runtime = JobRuntime(graph)
    records = [Record(index, index, index % 16) for index in range(1_000)]

    def push_all():
        runtime.push_many("src", records, batch_size=64)

    benchmark(push_all)


def bench_sliding_window_assignment(benchmark):
    """Assign 1k timestamps to overlapping sliding windows."""
    assigner = SlidingWindows(5_000, 1_000)

    def assign_all():
        total = 0
        for ts in range(0, 100_000, 100):
            total += len(assigner.assign(ts))
        return total

    benchmark(assign_all)


def bench_window_aggregate_fold_and_fire(benchmark):
    """Fold 1k records into tumbling windows and fire them."""

    def run():
        operator = WindowedAggregateOperator(
            TumblingWindows(1_000),
            init=lambda: 0,
            add=lambda acc, value: acc + value,
            merge=lambda a, b: a + b,
        )
        operator.set_collector(lambda element: None)
        for index in range(1_000):
            operator.process(Record(index * 10, 1, index % 8))
        operator.on_watermark(Watermark(timestamp=100_000))
        return operator.pending_windows()

    benchmark(run)


def bench_operator_snapshot(benchmark):
    """Snapshot a window operator holding 1k accumulators."""
    operator = WindowedAggregateOperator(
        TumblingWindows(1_000),
        init=lambda: 0,
        add=lambda acc, value: acc + value,
        merge=lambda a, b: a + b,
    )
    operator.set_collector(lambda element: None)
    for index in range(1_000):
        operator.process(Record(index * 997, 1, index))

    benchmark(operator.snapshot)
