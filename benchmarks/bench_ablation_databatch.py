"""Ablation: data-path micro-batch size vs measured throughput.

The vectorized micro-batch path (ISSUE tentpole) amortises per-record
dispatch — partitioning, router fan-out, operator call overhead — across
``batch_size`` records.  This sweep drives the Figure 9 SC1 scenario at
increasing batch sizes and reports the measured service rate: throughput
should rise with batch size and the per-query outputs stay identical
(asserted by tests/integration/test_batch_equivalence.py; counts are
re-checked here).
"""

from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario

BATCH_SIZES = (1, 4, 16, 64)


def _ordered_counts(per_query_results):
    """Result counts in query-creation order.

    Query ids carry a process-global counter, so two runs of the same
    schedule label identical queries differently — align them by the
    numeric suffix (creation order) instead of by id.
    """
    return [
        count
        for _, count in sorted(
            per_query_results.items(),
            key=lambda item: int(item[0].rsplit("-", 1)[-1]),
        )
    ]


def _run(batch_size: int, quick: bool):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=500.0 if quick else 2_000.0,
            duration_s=8.0 if quick else 20.0,
            batch_size=batch_size,
        ),
        scenario="sc1",
        queries_per_second=4.0,
        query_parallelism=16 if quick else 64,
        kind="join",
    )


def bench_ablation_databatch(benchmark, record_figure, quick):
    result = FigureResult(
        figure_id="Ablation data-batch",
        title="Data-path micro-batch size (SC1 join workload)",
        columns=(
            "batch_size", "service_tps", "speedup", "tuples", "results"
        ),
        paper_expectation=(
            "Batching the data path amortises per-record dispatch: the "
            "measured service rate grows with batch size while every "
            "query's output stays byte-identical."
        ),
    )

    def run_all():
        return {size: _run(size, quick) for size in BATCH_SIZES}

    metrics = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = metrics[BATCH_SIZES[0]].report.service_rate_tps
    result_counts = {}
    for size, run in metrics.items():
        report = run.report
        result_counts[size] = _ordered_counts(report.per_query_results)
        result.add(
            batch_size=size,
            service_tps=report.service_rate_tps,
            speedup=report.service_rate_tps / base if base else 0.0,
            tuples=report.tuples_pushed,
            results=sum(report.per_query_results.values()),
        )
    record_figure(result)
    # Batching must not change what any query computed.
    for size in BATCH_SIZES[1:]:
        assert result_counts[size] == result_counts[BATCH_SIZES[0]], size
    # The batched data path beats per-record pushes on the same workload.
    best = max(run.report.service_rate_tps for run in metrics.values())
    assert best > base
