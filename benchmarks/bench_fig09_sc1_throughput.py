"""Figure 9: SC1 slowest and overall data throughput.

Paper series: Flink vs AStream single-query; AStream at 1 q/s → 20 qp,
10 q/s → 60 qp, 100 q/s → 1000 qp; 4- and 8-node clusters; join and
aggregation workloads.  Expected shape: Flink slightly ahead for one
query, slowest throughput falling (flattening) and overall throughput
rising with query parallelism, ~√2 from 4 to 8 nodes, and Flink unable
to sustain the ad-hoc configurations.
"""

from repro.harness.figures import fig09_sc1_throughput


def bench_fig09(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig09_sc1_throughput, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)

    def rows(**filters):
        return [
            row
            for row in result.rows
            if all(row[key] == value for key, value in filters.items())
        ]

    for nodes in (4, 8):
        for kind in ("join", "agg"):
            single_flink = rows(
                nodes=nodes, kind=kind, sut="flink", config="single query"
            )[0]
            single_astream = rows(
                nodes=nodes, kind=kind, sut="astream", config="single query"
            )[0]
            # Single-query sharing overhead stays within ~2x (paper: ~9%).
            assert (
                single_astream["slowest_tps"]
                > 0.5 * single_flink["slowest_tps"]
            )
            astream_multi = [
                row
                for row in rows(nodes=nodes, kind=kind, sut="astream")
                if row["config"] != "single query"
            ]
            # Slowest throughput decreases with query parallelism...
            slowest = [row["slowest_tps"] for row in astream_multi]
            assert slowest == sorted(slowest, reverse=True)
            # ...while all configurations stay sustainable.  At paper
            # scale (1000 queries) the single Python process genuinely
            # cannot serve the configured input rate — a scale artifact,
            # not a sharing regression — so the sustainability claim is
            # asserted at quick scale only.
            if quick:
                assert all(row["sustained"] for row in astream_multi)
            # Overall throughput at the largest parallelism beats single.
            assert (
                astream_multi[-1]["overall_tps"]
                > single_astream["overall_tps"]
            )
    # Flink cannot sustain the ad-hoc workload.
    flink_adhoc = [
        row
        for row in result.rows
        if row["sut"] == "flink" and row["config"] != "single query"
    ]
    assert flink_adhoc and not flink_adhoc[0]["sustained"]
