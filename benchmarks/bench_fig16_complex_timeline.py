"""Figure 16: complex ad-hoc query timeline.

Paper shape: sharp increases in query count leave event-time latency
roughly stable (no execution-plan change); the slowest throughput drops
as the query population grows and recovers as it drains.
"""

from repro.harness.figures import fig16_complex_timeline


def bench_fig16(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig16_complex_timeline, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    counts = result.column("query_count")
    rates = [r for r in result.column("throughput_tps") if r]
    assert max(counts) >= 10  # the fluctuation phases actually happened
    assert min(counts) == 0   # and started from an empty population
    # Throughput responds to load but never collapses to zero.
    assert min(rates) > 0
    # Latency reflects cascade residence (join + aggregation windows,
    # seconds — the paper's range) and stays bounded through the sharp
    # query-count jumps: no unbounded growth.
    assert all(row["latency_ms"] < 12_000 for row in result.rows)
