"""Ablation: slot reuse (Figure 3c) vs append-only indices (Figure 3b).

Under SC2-style churn the append-only policy grows the query-set width
without bound, making every bitset operation and changelog-set wider;
slot reuse keeps the width at the live population size.
"""

from repro.core.registry import SlotPolicy
from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario


def _run(policy: SlotPolicy):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=300.0,
            duration_s=10.0,
            engine_overrides={"slot_policy": policy},
        ),
        scenario="sc2",
        queries_per_batch=8,
        batch_interval_s=2,
        batches=5,
        kind="join",
    )


def bench_ablation_registry(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation registry",
        title="Slot reuse vs append-only query indices under SC2 churn",
        columns=("policy", "final_width", "active_queries", "service_tps"),
        paper_expectation=(
            "Figure 3: append-only indices leave big, sparse query-sets; "
            "AStream reuses deleted queries' bits to stay compact."
        ),
    )

    def run_both():
        return {policy: _run(policy) for policy in SlotPolicy}

    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    widths = {}
    for policy, run in metrics.items():
        width = run.engine.session.registry.width
        widths[policy] = width
        result.add(
            policy=policy.value,
            final_width=width,
            active_queries=run.report.active_queries_final,
            service_tps=run.report.service_rate_tps,
        )
    record_figure(result)
    # 5 batches x 8 queries: append-only burns 40 positions, reuse ~8.
    assert widths[SlotPolicy.APPEND_ONLY] == 40
    assert widths[SlotPolicy.REUSE] <= 10
