"""Figure 19: effect of ad-hoc join queries on standing queries.

Paper shape: with many standing queries, an ad-hoc burst barely moves
the slowest throughput; small standing populations feel it more, and
SC1 more than SC2.
"""

from repro.harness.figures import fig19_adhoc_impact


def bench_fig19(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig19_adhoc_impact, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)

    def relative_drop(scenario, standing):
        rows = sorted(
            (
                row
                for row in result.rows
                if row["scenario"] == scenario and row["standing"] == standing
            ),
            key=lambda row: row["adhoc"],
        )
        baseline = rows[0]["slowest_tps"]
        worst = min(row["slowest_tps"] for row in rows)
        return (baseline - worst) / baseline

    standing_counts = sorted({row["standing"] for row in result.rows})
    # Large standing populations are less affected than tiny ones in
    # relative terms (sharing probability already high).
    small_drop = relative_drop("SC1", standing_counts[0])
    large_drop = relative_drop("SC1", standing_counts[-1])
    assert large_drop <= small_drop + 0.25  # allow measurement noise
    # No configuration collapses: ad-hoc bursts never starve standing
    # queries outright.
    assert all(row["slowest_tps"] > 0 for row in result.rows)
