"""Figure 17: slowest data throughput vs query parallelism (log-log).

Paper shape: monotone decline whose slope flattens as the probability
of sharing a tuple rises with the query count.
"""

import math

from repro.harness.figures import fig17_parallelism_sweep


def bench_fig17(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig17_parallelism_sweep, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    for nodes in (4, 8):
        for kind in ("join", "agg"):
            rows = [
                row
                for row in result.rows
                if row["nodes"] == nodes and row["kind"] == kind
            ]
            rates = [row["slowest_tps"] for row in rows]
            parallelisms = [row["query_parallelism"] for row in rows]
            # Monotone decline with query count.
            assert rates == sorted(rates, reverse=True)
            # Sub-linear decline: doubling queries costs less than 2x.
            # (log-log slope magnitude < 1 = sharing amortises work)
            slope = (math.log(rates[-1]) - math.log(rates[0])) / (
                math.log(parallelisms[-1]) - math.log(parallelisms[0])
            )
            assert -1.0 < slope < 0.0, (nodes, kind, slope)
