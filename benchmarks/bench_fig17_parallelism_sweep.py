"""Figure 17: slowest data throughput vs query parallelism (log-log).

Paper shape: monotone decline whose slope flattens as the probability
of sharing a tuple rises with the query count.

Run as a script for the *measured* process-backend scaling companion::

    python benchmarks/bench_fig17_parallelism_sweep.py --backend process \
        --workers 1,2,4

which sweeps the worker count on the real process-sharded backend and
checks the scaling target (see ``main``).
"""

import math

from repro.harness.figures import fig17_measured_scaling, fig17_parallelism_sweep

SCALING_TARGET = 2.5
"""Required scaling factor at 4 workers over 1 worker."""


def bench_fig17(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig17_parallelism_sweep, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    for nodes in (4, 8):
        for kind in ("join", "agg"):
            rows = [
                row
                for row in result.rows
                if row["nodes"] == nodes and row["kind"] == kind
            ]
            rates = [row["slowest_tps"] for row in rows]
            parallelisms = [row["query_parallelism"] for row in rows]
            # Monotone decline with query count.
            assert rates == sorted(rates, reverse=True)
            # Sub-linear decline: doubling queries costs less than 2x.
            # (log-log slope magnitude < 1 = sharing amortises work)
            slope = (math.log(rates[-1]) - math.log(rates[0])) / (
                math.log(parallelisms[-1]) - math.log(parallelisms[0])
            )
            assert -1.0 < slope < 0.0, (nodes, kind, slope)


def check_process_scaling(rows, target: float = SCALING_TARGET) -> str:
    """Validate the measured scaling rows against ``target``.

    Two acceptable signals, because wall-clock speed-up needs real
    cores: on a host with at least as many cores as the largest worker
    count, wall-clock ``speedup_vs_1`` must reach the target; on
    smaller hosts (e.g. single-core CI containers, where concurrent
    processes time-slice one core) the per-worker CPU division
    ``cpu_scaling_vs_1`` must reach it instead — that measures the same
    sharding effectiveness without requiring the cores to exist.
    Returns a human-readable verdict line; raises AssertionError when
    the applicable signal misses the target.
    """
    last = max(rows, key=lambda row: row["workers"])
    workers, cores = last["workers"], last["cores"]
    if cores >= workers:
        measured = last["speedup_vs_1"]
        label = f"wall-clock speedup ({cores} cores)"
    else:
        measured = last["cpu_scaling_vs_1"]
        label = (
            f"per-worker CPU scaling (host has {cores} core(s) for "
            f"{workers} workers; wall-clock cannot improve)"
        )
    assert measured >= target, (
        f"{label} at {workers} workers is {measured:.2f}x, "
        f"below the {target}x target"
    )
    return f"scaling OK: {measured:.2f}x >= {target}x via {label}"


def main(argv=None) -> int:
    """Script entry: sweep worker counts on the chosen backend.

    ``--backend model`` reruns the paper's modelled Figure 17 sweep;
    ``--backend process`` measures real process-parallel scaling and
    enforces the >=2.5x target at the largest worker count
    (``--smoke`` shrinks the workload and skips the target check, for
    CI smoke runs).
    """
    import argparse

    from conftest import RESULTS_DIR, is_full_scale
    from repro.harness.report import render_csv, render_table

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--backend", default="model",
                        choices=("model", "process"))
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts "
                             "(process backend)")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, no scaling assertion")
    args = parser.parse_args(argv)

    quick = args.smoke or not is_full_scale()
    if args.backend == "model":
        result = fig17_parallelism_sweep(quick=quick)
    else:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part
        )
        result = fig17_measured_scaling(
            quick=quick, worker_counts=worker_counts
        )
    table = render_table(result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = result.figure_id.lower().replace(" ", "").replace("(", "_").replace(")", "")
    (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")
    (RESULTS_DIR / f"{slug}.csv").write_text(render_csv(result))
    if args.backend == "process" and not args.smoke:
        print(check_process_scaling(result.rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
