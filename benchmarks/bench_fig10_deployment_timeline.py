"""Figure 10: query deployment latency timeline at 1 q/s.

Paper series: per-query deployment latency for Flink (climbing to ~80 s,
910 s summed over 20 queries) and AStream (~7 s first deployment, then
within the 1 s changelog timeout).
"""

from repro.harness.figures import fig10_deployment_timeline


def bench_fig10(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig10_deployment_timeline, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    flink = [row["latency_s"] for row in result.rows if row["sut"] == "flink"]
    astream = [row["latency_s"] for row in result.rows if row["sut"] == "astream"]
    # Flink queues deployments: latency strictly climbs, far past 10 s.
    assert flink == sorted(flink)
    assert flink[-1] > 20
    assert sum(flink) > 10 * sum(astream[1:])
    # AStream: one-off topology deployment, then bounded by the timeout.
    assert astream[0] > 5
    assert max(astream[2:]) <= 1.5
    # Arrangements axis (ISSUE 10): a warm attach answers strictly
    # earlier than the cold deploy for every late query — backfilled
    # pre-creation windows vs waiting out a window of fresh data.
    cold = [row["latency_s"] for row in result.rows
            if row["sut"] == "astream-cold-attach"]
    warm = [row["latency_s"] for row in result.rows
            if row["sut"] == "astream-warm-attach"]
    assert cold and len(cold) == len(warm)
    assert all(w < c for w, c in zip(warm, cold))
