"""Ablation: changelog batch size vs deployment latency and changelogs.

§3.1.1/§4.4: the shared session emits a changelog per `batch_size`
requests or per timeout.  Small batches mean many changelogs (each a
marker every operator must process); large batches amortise them — the
paper's 100 q/s → 1000 qp beating 1 q/s → 20 qp per query (Figure 11)
is this effect.
"""

from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario


def _run(batch_size: int):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=200.0,
            duration_s=8.0,
            engine_overrides={
                "changelog_batch_size": batch_size,
                "changelog_timeout_ms": 2_000,
            },
        ),
        scenario="sc1",
        queries_per_second=16.0,
        query_parallelism=64,
        kind="agg",
    )


def bench_ablation_batchsize(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation batch-size",
        title="Changelog batch size under 16 q/s (64 queries)",
        columns=("batch_size", "changelogs", "mean_deploy_s", "service_tps"),
        paper_expectation=(
            "Fewer changelog generations per query lower the per-query "
            "deployment cost (Figure 11's 100q/s < 1q/s effect)."
        ),
    )

    def run_all():
        return {size: _run(size) for size in (1, 8, 64)}

    metrics = benchmark.pedantic(run_all, rounds=1, iterations=1)
    changelog_counts = {}
    for size, run in metrics.items():
        count = len(run.engine.session.flushed_changelogs)
        changelog_counts[size] = count
        result.add(
            batch_size=size,
            changelogs=count,
            mean_deploy_s=run.mean_deployment_latency_ms / 1000.0,
            service_tps=run.report.service_rate_tps,
        )
    record_figure(result)
    # Bigger batches generate strictly fewer changelogs.
    assert changelog_counts[1] > changelog_counts[8] > changelog_counts[64]
