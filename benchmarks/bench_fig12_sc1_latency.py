"""Figure 12: SC1 average event-time latency.

Paper shape: join latency exceeds aggregation latency (joins are the
more expensive operator); AStream's ad-hoc configurations remain
sustainable while Flink's ad-hoc latency grows without bound (covered by
Figure 9/10 benches).
"""

from repro.harness.figures import fig12_sc1_latency


def bench_fig12(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig12_sc1_latency, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)

    def mean_latency(kind):
        rows = [
            row
            for row in result.rows
            if row["kind"] == kind and row["sut"] == "astream"
            and row["config"] != "single query"
        ]
        return sum(row["latency_ms"] for row in rows) / len(rows)

    # Join windows hold tuples until they close: join latency dominates.
    assert mean_latency("join") > mean_latency("agg")
    # Latencies are bounded (sustainable), in the paper's second range.
    assert all(row["latency_ms"] < 10_000 for row in result.rows)
