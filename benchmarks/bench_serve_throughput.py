"""Serving-layer throughput over loopback: control ops and ingest TPS.

ISSUE 5 satellite 2: measure the networked control plane's
create/delete rate and the data plane's framed ingest throughput
against both hosted backends, and compare the wire ingest path to
direct in-process ``push_many`` on the same workload.  The
``serve_ingest_ratio_inline`` ratio (wire / direct) is machine
normalised — framing, JSON, and loopback all slow down together with
the host — and is gated by ``check_perf_regression.py --serve``.

The binary columnar codec adds a second gated ratio,
``serve_ingest_ratio_binary_inline``: the pipelined coalescing client
over binary frames vs the same direct workload.  Columnar decode plus
ack pipelining makes the wire path competitive with (on most hosts,
faster than) direct ``push_many`` — the acceptance bar is an absolute
floor of 0.5 on top of the usual baseline-ratio gate.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.engine import AStreamEngine, EngineConfig
from repro.harness.report import FigureResult
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator

STREAMS = ("A", "B")
BATCH_TUPLES = 64
GATE_PAIRS = 3


def _ingest_workload(batches: int):
    """Deterministic (timestamp, tuple) micro-batches for stream A."""
    generator = DataGenerator(seed=17)
    return [
        [
            (batch * BATCH_TUPLES + i, generator.next_tuple())
            for i in range(BATCH_TUPLES)
        ]
        for batch in range(batches)
    ]


def measure_control_rate(backend: str, pairs: int, workers: int = 2) -> float:
    """Create/delete pairs per second through the wire control plane."""
    with ServerThread(
        ServeConfig(backend=backend, workers=workers, clock="manual")
    ) as host:
        client = ServeClient("127.0.0.1", host.port, client_id="bench-ctl")
        generator = QueryGenerator(streams=STREAMS, seed=23)
        queries = [generator.selection_query() for _ in range(pairs)]
        started = time.perf_counter()
        for query in queries:
            created = client.create_query(query=query)
            assert created.status == "admit"
            client.delete_query(created.query_id)
        elapsed = time.perf_counter() - started
        client.close()
    return (pairs * 2) / elapsed if elapsed else 0.0


def measure_wire_ingest(
    backend: str,
    batches: int,
    workers: int = 2,
    codec: str = "json",
    pipelined: bool = False,
) -> float:
    """Framed loopback ingest TPS (push frames against one live query).

    ``codec`` picks the wire encoding the client negotiates; with
    ``pipelined=True`` the client coalesces pushes and streams them
    without per-frame ack round-trips (``push_nowait``/``flush_ingest``)
    — the binary hot path the codec gate measures.
    """
    workload = _ingest_workload(batches)
    with ServerThread(
        ServeConfig(backend=backend, workers=workers, clock="manual")
    ) as host:
        client = ServeClient(
            "127.0.0.1", host.port, client_id="bench-ingest", codec=codec
        )
        created = client.create_query(
            sql="SELECT * FROM A WHERE A.F0 > 500", at_ms=0
        )
        assert created.status == "admit"
        started = time.perf_counter()
        if pipelined:
            for events in workload:
                client.push_nowait("A", events)
            client.flush_ingest()
        else:
            for events in workload:
                client.push("A", events)
        client.drain()
        elapsed = time.perf_counter() - started
        client.close()
    return (batches * BATCH_TUPLES) / elapsed if elapsed else 0.0


def _percentile(values, p: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    ranked = sorted(values)
    if not ranked:
        return 0.0
    rank = max(1, int(round(p / 100.0 * len(ranked))))
    return ranked[min(rank, len(ranked)) - 1]


def measure_wire_latency(
    backend: str,
    pushes: int,
    workers: int = 2,
    codec: str = "json",
) -> Dict[str, float]:
    """Wire-to-delivery latency percentiles from traced push frames.

    Every push carries a trace context (``trace_sample_every=1``); the
    server closes each span after force-flushing the subscription, so
    the client-side ``wire_latencies_ms`` samples measure the full
    client→server→engine→subscriber path, and the ack's span breakdown
    telescopes to the same number exactly.
    """
    generator = DataGenerator(seed=29)
    with ServerThread(
        ServeConfig(
            backend=backend,
            workers=workers,
            clock="manual",
            codecs=("binary", "json") if codec == "binary" else ("json",),
        )
    ) as host:
        client = ServeClient(
            "127.0.0.1",
            host.port,
            client_id="bench-lat",
            codec=codec,
            trace_sample_every=1,
        )
        created = client.create_query(
            sql="SELECT * FROM A WHERE A.F0 > 0", at_ms=0
        )
        assert created.status == "admit"
        client.subscribe(created.query_id)
        for i in range(pushes):
            client.push("A", [(i, generator.next_tuple())])
        latencies = list(client.wire_latencies_ms)
        client.close()
    assert len(latencies) == pushes
    return {
        "e2e_p50_ms": _percentile(latencies, 50),
        "e2e_p95_ms": _percentile(latencies, 95),
        "e2e_p99_ms": _percentile(latencies, 99),
    }


def measure_latency_metrics(pushes: int = 300) -> Dict[str, float]:
    """The metrics ``check_perf_regression.py --latency`` gates/reports.

    The gated numbers are the inline-backend p95s per codec — absolute
    loopback milliseconds, so the gate tolerance is wide (it catches a
    path that turned from microseconds into milliseconds, not jitter);
    the p50/p99 columns ride along as ungated context.
    """
    measure_wire_latency("inline", pushes // 4)  # warm-up, discarded
    out: Dict[str, float] = {}
    for codec in ("json", "binary"):
        stats = measure_wire_latency("inline", pushes, codec=codec)
        for name, value in stats.items():
            out[f"serve_{name}_{codec}_inline"] = value
    return out


def measure_direct_ingest(batches: int) -> float:
    """The same ingest workload via direct in-process ``push_many``."""
    workload = _ingest_workload(batches)
    engine = AStreamEngine(EngineConfig(streams=STREAMS))
    from repro.core.sql import parse_query

    engine.submit(parse_query("SELECT * FROM A WHERE A.F0 > 500"), 0)
    engine.flush_session(0)
    started = time.perf_counter()
    for events in workload:
        engine.push_many("A", events)
    engine.drain()
    elapsed = time.perf_counter() - started
    engine.shutdown()
    return (batches * BATCH_TUPLES) / elapsed if elapsed else 0.0


def measure_gate_metrics(
    batches: int = 400, pairs: int = 200
) -> Dict[str, float]:
    """The metrics ``check_perf_regression.py --serve`` gates/reports.

    Direct and wire ingest runs are interleaved in pairs and the gated
    metric is the median per-pair ratio, so shared-host drift hits both
    sides of a pair about equally.
    """
    measure_wire_ingest("inline", batches // 4)  # warm-up, discarded
    ratio_pairs = [
        (measure_direct_ingest(batches), measure_wire_ingest("inline", batches))
        for _ in range(GATE_PAIRS)
    ]
    ratios = sorted(wire / direct for direct, wire in ratio_pairs if direct)
    median_ratio = ratios[len(ratios) // 2] if ratios else 0.0
    # The binary hot path: columnar codec + pipelined coalescing client
    # vs the same direct push_many workload.
    binary_pairs = [
        (
            measure_direct_ingest(batches),
            measure_wire_ingest(
                "inline", batches, codec="binary", pipelined=True
            ),
        )
        for _ in range(GATE_PAIRS)
    ]
    binary_ratios = sorted(
        wire / direct for direct, wire in binary_pairs if direct
    )
    binary_median = binary_ratios[len(binary_ratios) // 2] if binary_ratios else 0.0
    return {
        "serve_ingest_ratio_inline": median_ratio,
        "serve_ingest_tps_inline": max(wire for _, wire in ratio_pairs),
        "direct_ingest_tps_inline": max(direct for direct, _ in ratio_pairs),
        "serve_ingest_ratio_binary_inline": binary_median,
        "serve_ingest_tps_binary_inline": max(wire for _, wire in binary_pairs),
        "serve_control_ops_per_sec_inline": measure_control_rate(
            "inline", pairs
        ),
    }


def bench_serve_throughput(benchmark, quick, record_figure):
    batches = 200 if quick else 1_000
    pairs = 150 if quick else 600

    def run_all():
        rows = {}
        for backend in ("inline", "process"):
            latency = measure_wire_latency(backend, max(50, batches // 4))
            rows[backend] = {
                "control_ops_per_sec": measure_control_rate(backend, pairs),
                "ingest_tps": measure_wire_ingest(backend, batches),
                "ingest_tps_binary": measure_wire_ingest(
                    backend, batches, codec="binary", pipelined=True
                ),
                **latency,
            }
        rows["in-process"] = {
            "control_ops_per_sec": None,
            "ingest_tps": measure_direct_ingest(batches),
            "ingest_tps_binary": None,
            "e2e_p50_ms": None,
            "e2e_p95_ms": None,
            "e2e_p99_ms": None,
        }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    result = FigureResult(
        figure_id="ServeTP",
        title="Serving-layer throughput over loopback",
        columns=(
            "backend",
            "control_ops_per_sec",
            "ingest_tps",
            "ingest_tps_binary",
            "e2e_p50_ms",
            "e2e_p95_ms",
            "e2e_p99_ms",
        ),
        paper_expectation=(
            "The shared control plane sustains hundreds of ad-hoc "
            "create/delete ops per second (§1's serving setting); the "
            "JSON wire ingest path trades a constant per-tuple "
            "encode/decode cost against network reach, while the "
            "pipelined binary columnar path closes most of that gap. "
            "Traced pushes put exact wire-to-delivery percentiles "
            "alongside the throughput numbers."
        ),
    )
    for backend, metrics in rows.items():
        result.add(
            backend=backend,
            control_ops_per_sec=(
                round(metrics["control_ops_per_sec"], 1)
                if metrics["control_ops_per_sec"] is not None
                else "-"
            ),
            ingest_tps=round(metrics["ingest_tps"], 1),
            ingest_tps_binary=(
                round(metrics["ingest_tps_binary"], 1)
                if metrics["ingest_tps_binary"] is not None
                else "-"
            ),
            e2e_p50_ms=(
                round(metrics["e2e_p50_ms"], 3)
                if metrics["e2e_p50_ms"] is not None
                else "-"
            ),
            e2e_p95_ms=(
                round(metrics["e2e_p95_ms"], 3)
                if metrics["e2e_p95_ms"] is not None
                else "-"
            ),
            e2e_p99_ms=(
                round(metrics["e2e_p99_ms"], 3)
                if metrics["e2e_p99_ms"] is not None
                else "-"
            ),
        )
    record_figure(result)

    # The acceptance bar: >= 200 control ops/sec over loopback.
    assert rows["inline"]["control_ops_per_sec"] >= 200
    assert rows["inline"]["ingest_tps"] > 0
    assert rows["process"]["ingest_tps"] > 0
    # The binary pipelined path must beat sync JSON framing outright.
    assert rows["inline"]["ingest_tps_binary"] > rows["inline"]["ingest_tps"]
