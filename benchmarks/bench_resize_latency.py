"""Resize-latency microbenchmark: how long does a live migration pause?

A resize pauses ingest twice per migration phase: once while the old
shards export their aligned state (``begin_resize``) and once per shard
restore (``migration_step``); everything in between overlaps live
ingest through the migration buffers.  This benchmark drives a standing
SC1 aggregation population on the process backend, bounces the pool
between 2 and 4 workers, and reports the distribution of those pauses
from the engine's ``migration_pauses_ms`` window — the p95 is the gate
metric for ``check_perf_regression.py --resize``.

Usage::

    python benchmarks/bench_resize_latency.py
"""

from __future__ import annotations

from repro.core.engine import EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule

STREAMS = ("A", "B")
ROUNDS = 6
"""Resize bounces (2→4→2→...); each contributes export+restore pauses."""
RECORDS_PER_ROUND = 400
"""Per-stream records pushed between resizes (standing state to ship)."""


def _percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[int(fraction * (len(ordered) - 1))]


def measure_gate_metrics(rounds: int = ROUNDS) -> dict:
    """Bounce a loaded pool between 2 and 4 workers; pause stats in ms."""
    engine = ProcessAStreamEngine(
        EngineConfig(streams=STREAMS, parallelism=1, log_inputs=True),
        workers=2,
    )
    try:
        schedule = sc1_schedule(
            QueryGenerator(streams=STREAMS, seed=83), 1, 6, kind="agg"
        )
        for request in schedule.sorted():
            if request.kind == "create":
                engine.submit(request.query, now_ms=0)
        data = DataGenerator(seed=5)
        now = 0
        # Warm-up round: first-touch costs (imports in workers, fork
        # warmup) should not pollute the gated distribution.
        for _ in range(2):
            _push_round(engine, data, now)
            now += 10_000
        engine.resize(4)
        engine.resize(2)
        engine.migration_pauses_ms.clear()
        for round_index in range(rounds):
            _push_round(engine, data, now)
            now += 10_000
            engine.resize(4 if round_index % 2 == 0 else 2)
        pauses = list(engine.migration_pauses_ms)
        engine.drain()
        counters = engine.migration_counters()
        return {
            "resize_pause_p95_ms": _percentile(pauses, 0.95),
            "resize_pause_p50_ms": _percentile(pauses, 0.50),
            "resize_pause_max_ms": max(pauses) if pauses else 0.0,
            "resize_pause_samples": float(len(pauses)),
            "resize_migrations": float(counters["migrations"]),
        }
    finally:
        engine.shutdown()


def _push_round(engine, data, start_ms: int) -> None:
    for stream in STREAMS:
        for offset in range(RECORDS_PER_ROUND):
            engine.push(stream, start_ms + offset * 10, data.next_tuple())
    engine.watermark(start_ms + RECORDS_PER_ROUND * 10)


def main() -> int:
    metrics = measure_gate_metrics()
    for metric, value in metrics.items():
        print(f"{metric} = {value:,.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
