"""Figure 18: AStream overhead — component shares and total.

Paper shape (18a): roughly balanced components at low query counts, the
router's per-query data copy growing dominant with many queries.
Paper shape (18b): total sharing overhead vs unshared execution is
single-digit percent for one query and vanishes (sharing *wins*) with
more queries.
"""

from repro.harness.figures import fig18_overhead


def bench_fig18(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig18_overhead, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    assert result.rows
    first, last = result.rows[0], result.rows[-1]
    for row in result.rows:
        share_sum = (
            row["queryset_gen_pct"]
            + row["bitset_ops_pct"]
            + row["router_copy_pct"]
        )
        assert abs(share_sum - 100.0) < 0.1
    # Sharing pays off at scale: the overhead vs unshared execution hits
    # zero once several queries share the pipeline.
    assert last["total_overhead_pct"] <= first["total_overhead_pct"] + 1e-9
    assert last["total_overhead_pct"] < 5.0
