"""Ablation: grouped vs list slice storage and the adaptive switch.

§3.1.4: grouping tuples by query-set lets slice joins skip whole group
pairs, but beyond ~10 concurrent queries most groups hold one tuple and
the flat list wins.  The engine's threshold switches layouts; this bench
pins all three settings against the same workload.
"""

from repro.core.storage import StoreKind
from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario


def _run(threshold: int, parallelism: int):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=400.0,
            duration_s=8.0,
            engine_overrides={"storage_query_threshold": threshold},
        ),
        scenario="sc1",
        queries_per_second=float(parallelism),
        query_parallelism=parallelism,
        kind="join",
    )


def bench_ablation_storage(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation storage",
        title="Grouped vs list slice storage (16 concurrent join queries)",
        columns=("setting", "store_kind", "service_tps", "results"),
        paper_expectation=(
            "Beyond about ten concurrent queries, storing tuples as a "
            "list is more efficient than query-set groups (§3.1.4)."
        ),
    )

    def run_all():
        return {
            "always grouped": _run(threshold=10_000, parallelism=16),
            "always list": _run(threshold=0, parallelism=16),
            "adaptive (10)": _run(threshold=10, parallelism=16),
        }

    metrics = benchmark.pedantic(run_all, rounds=1, iterations=1)
    outputs = {}
    for setting, run in metrics.items():
        join_op = run.engine.join_operators("join:A~B")[0]
        outputs[setting] = sum(run.report.per_query_results.values())
        result.add(
            setting=setting,
            store_kind=join_op.store_kind.value,
            service_tps=run.report.service_rate_tps,
            results=outputs[setting],
        )
    record_figure(result)
    # Correctness is layout-independent: identical output counts.
    assert len(set(outputs.values())) == 1
    # The adaptive engine is in list mode at 16 concurrent queries.
    adaptive = metrics["adaptive (10)"].engine.join_operators("join:A~B")[0]
    assert adaptive.store_kind is StoreKind.LIST
