"""Ablation: slice storage layouts and the keyed-state backend.

§3.1.4: grouping tuples by query-set lets slice joins skip whole group
pairs, but beyond ~10 concurrent queries most groups hold one tuple and
the flat list wins.  The engine's threshold switches layouts; this bench
pins all three settings against the same workload.

ISSUE 10 adds the physical state axis: the same SC1 aggregation run on
``state_backend={memory,lsm}`` (spill throughput ratio), copy-on-write
vs deepcopy operator snapshots, and warm attach against shared
arrangements vs a cold deploy.  The ``measure_*`` helpers are imported
by ``check_perf_regression.py --state``; running this module directly
with ``--keys N`` drives the out-of-core capacity check (the acceptance
run is ``--keys 1000000``).
"""

import copy
import shutil
import statistics
import tempfile
import time

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import AggregationQuery, TruePredicate, WindowSpec
from repro.core.storage import StoreKind
from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario
from repro.minispe.state import KeyedState
from repro.store.lsm import LSMStateStore
from repro.workloads.datagen import DataGenerator

# The gate workload spills for real (memtable/write-buffer cap well
# below the per-slot key cardinality) while staying representative:
# SC1 aggregations at 8-way ad-hoc parallelism.
STATE_MEMTABLE_ENTRIES = 512
SPILL_PAIRS = 3


def _run(threshold: int, parallelism: int):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=400.0,
            duration_s=8.0,
            engine_overrides={"storage_query_threshold": threshold},
        ),
        scenario="sc1",
        queries_per_second=float(parallelism),
        query_parallelism=parallelism,
        kind="join",
    )


def bench_ablation_storage(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation storage",
        title="Grouped vs list slice storage (16 concurrent join queries)",
        columns=("setting", "store_kind", "service_tps", "results"),
        paper_expectation=(
            "Beyond about ten concurrent queries, storing tuples as a "
            "list is more efficient than query-set groups (§3.1.4)."
        ),
    )

    def run_all():
        return {
            "always grouped": _run(threshold=10_000, parallelism=16),
            "always list": _run(threshold=0, parallelism=16),
            "adaptive (10)": _run(threshold=10, parallelism=16),
        }

    metrics = benchmark.pedantic(run_all, rounds=1, iterations=1)
    outputs = {}
    for setting, run in metrics.items():
        join_op = run.engine.join_operators("join:A~B")[0]
        outputs[setting] = sum(run.report.per_query_results.values())
        result.add(
            setting=setting,
            store_kind=join_op.store_kind.value,
            service_tps=run.report.service_rate_tps,
            results=outputs[setting],
        )
    record_figure(result)
    # Correctness is layout-independent: identical output counts.
    assert len(set(outputs.values())) == 1
    # The adaptive engine is in list mode at 16 concurrent queries.
    adaptive = metrics["adaptive (10)"].engine.join_operators("join:A~B")[0]
    assert adaptive.store_kind is StoreKind.LIST


# -- ISSUE 10: keyed-state backend metrics -----------------------------------


def _state_run(backend: str):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=1000.0,
            duration_s=6.0,
            engine_overrides={
                "state_backend": backend,
                "state_memtable_entries": STATE_MEMTABLE_ENTRIES,
            },
        ),
        scenario="sc1",
        queries_per_second=2.0,
        query_parallelism=8,
        kind="agg",
    )


def measure_spill_ratio(pairs: int = SPILL_PAIRS) -> dict:
    """Median lsm/memory service-rate ratio on a genuinely spilling run.

    Backends are interleaved pair-wise so host drift cancels; the lsm
    run must actually write segments (``spilled_bytes > 0``) or the
    ratio would flatter an in-memory-only configuration.
    """
    ratios = []
    memory_tps = lsm_tps = spilled = 0.0
    for _ in range(pairs):
        memory = _state_run("memory")
        lsm = _state_run("lsm")
        memory_tps = memory.report.service_rate_tps
        lsm_tps = lsm.report.service_rate_tps
        ratios.append(lsm_tps / memory_tps)
        spilled = lsm.engine.state_summary()["spilled_bytes"]
    return {
        "ratio": statistics.median(ratios),
        "memory_tps": memory_tps,
        "lsm_tps": lsm_tps,
        "spilled_bytes": spilled,
    }


def _drive_attach(arrangements: bool):
    """One base query arranges 3s of history; a twin attaches late."""
    engine = AStreamEngine(
        EngineConfig(
            streams=("A",),
            parallelism=1,
            shared_arrangements=arrangements,
        )
    )
    base = AggregationQuery(
        stream="A",
        predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000),
    )
    late = AggregationQuery(
        stream="A",
        predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000),
    )
    data = DataGenerator(seed=11)
    engine.submit(base, now_ms=0)
    created_ms = 3_000
    submit_wall_ms = None
    for step in range(20):
        now = step * 250
        engine.watermark(now)
        if now == created_ms:
            started = time.perf_counter()
            engine.submit(late, now_ms=now)
            submit_wall_ms = (time.perf_counter() - started) * 1_000.0
        engine.tick(now)
        for offset in range(20):
            engine.push("A", now + offset * 12, data.next_tuple())
    engine.watermark(20_000)
    results = engine.canonical_results(late.query_id)
    assert results, "late query produced no results"
    first_event_ms = results[0].timestamp
    backfilled = engine.state_summary()["backfilled_windows"]
    engine.shutdown()
    return {
        "first_event_ms": first_event_ms,
        "lag_ms": first_event_ms - created_ms,
        "submit_wall_ms": submit_wall_ms,
        "backfilled_windows": backfilled,
    }


def measure_attach_latency() -> dict:
    """Warm attach vs cold deploy for a query submitted 3s late.

    The headline metric is deterministic event time: the end timestamp
    of the late query's *first* result, relative to its creation.  A
    cold deploy waits for the first post-creation window to close
    (+1000ms); a warm attach serves backfilled pre-creation windows at
    submit time, so its first result predates creation.
    """
    cold = _drive_attach(arrangements=False)
    warm = _drive_attach(arrangements=True)
    return {
        "cold_first_lag_ms": cold["lag_ms"],
        "warm_first_lag_ms": warm["lag_ms"],
        "warm_advantage_ms": cold["lag_ms"] - warm["lag_ms"],
        "warm_submit_wall_ms": warm["submit_wall_ms"],
        "cold_submit_wall_ms": cold["submit_wall_ms"],
        "backfilled_windows": warm["backfilled_windows"],
    }


def measure_cow_snapshot(keys: int = 20_000) -> dict:
    """Copy-on-write snapshot vs the deepcopy it replaced.

    Window accumulators are overwhelmingly immutable (tuples of
    scalars), which the COW snapshot shares by reference instead of
    pickling; only the mutable minority is deep-copied.
    """
    state = KeyedState()
    for i in range(keys):
        state.put(("user", i), (i, i * 2, float(i)))
    for i in range(0, keys, 20):
        state.put(("hot", i), [i, i + 1])
    reference = dict(state.items())
    started = time.perf_counter()
    snapshot = state.snapshot()
    cow_ms = (time.perf_counter() - started) * 1_000.0
    started = time.perf_counter()
    deep = copy.deepcopy(reference)
    deepcopy_ms = (time.perf_counter() - started) * 1_000.0
    assert snapshot == deep == reference
    return {
        "keys": len(reference),
        "cow_ms": cow_ms,
        "deepcopy_ms": deepcopy_ms,
        "speedup": deepcopy_ms / cow_ms,
    }


def run_capacity(keys: int, memtable_entries: int = 4_096) -> dict:
    """Spill ``keys`` distinct keys through a capped memtable and probe.

    The ISSUE 10 acceptance run is ``--keys 1000000``: far beyond RAM
    budgets the memtable cap implies, every key must stay readable and
    a full compaction must still complete.
    """
    directory = tempfile.mkdtemp(prefix="lsm-capacity-")
    store = LSMStateStore(directory, memtable_entries=memtable_entries)
    try:
        started = time.perf_counter()
        for i in range(keys):
            store.put(i, (i, i % 7))
        put_s = time.perf_counter() - started
        assert len(store) == keys
        started = time.perf_counter()
        step = max(1, keys // 1_000)
        for probe in range(0, keys, step):
            assert store.get(probe) == (probe, probe % 7)
        probe_s = time.perf_counter() - started
        stats = store.stats()
        assert stats["memtable_entries"] <= memtable_entries
        assert stats["spilled_bytes"] > 0
        return {
            "keys": keys,
            "puts_per_s": keys / put_s,
            "probe_gets_per_s": (keys // step) / probe_s,
            "segments": stats["segments"],
            "spilled_mb": stats["spilled_bytes"] / 1e6,
        }
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


def bench_state_backend_spill(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation state backend",
        title="Keyed state: in-memory vs spill-to-disk LSM (SC1 agg)",
        columns=("metric", "value"),
        paper_expectation=(
            "Out-of-core keyed state keeps the shared engine within "
            "30% of in-memory throughput while windows spill to disk, "
            "and warm attach serves a late query from arranged history "
            "instead of waiting out a cold warm-up."
        ),
    )
    metrics = benchmark.pedantic(
        lambda: (measure_spill_ratio(pairs=1), measure_attach_latency()),
        rounds=1,
        iterations=1,
    )
    spill, attach = metrics
    result.add(metric="lsm/memory service-rate ratio", value=round(spill["ratio"], 3))
    result.add(metric="lsm spilled bytes", value=int(spill["spilled_bytes"]))
    result.add(metric="cold first-result lag (event ms)", value=attach["cold_first_lag_ms"])
    result.add(metric="warm first-result lag (event ms)", value=attach["warm_first_lag_ms"])
    result.add(metric="warm backfilled windows", value=attach["backfilled_windows"])
    record_figure(result)
    assert spill["spilled_bytes"] > 0
    assert attach["warm_first_lag_ms"] < attach["cold_first_lag_ms"]
    assert attach["backfilled_windows"] >= 1


def bench_cow_snapshot(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation snapshot cow",
        title="Operator snapshots: copy-on-write vs deepcopy",
        columns=("keys", "cow_ms", "deepcopy_ms", "speedup"),
        paper_expectation=(
            "Sharing immutable accumulators makes checkpoint snapshots "
            "several times cheaper than wholesale deepcopy."
        ),
    )
    metrics = benchmark.pedantic(measure_cow_snapshot, rounds=1, iterations=1)
    result.add(
        keys=metrics["keys"],
        cow_ms=round(metrics["cow_ms"], 2),
        deepcopy_ms=round(metrics["deepcopy_ms"], 2),
        speedup=round(metrics["speedup"], 2),
    )
    record_figure(result)
    assert metrics["speedup"] > 1.5


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Out-of-core capacity run for the LSM state store."
    )
    parser.add_argument("--keys", type=int, default=1_000_000)
    parser.add_argument("--memtable-entries", type=int, default=4_096)
    cli = parser.parse_args()
    report = run_capacity(cli.keys, cli.memtable_entries)
    for name, value in report.items():
        print(f"{name}: {value:,.1f}" if isinstance(value, float) else f"{name}: {value}")
