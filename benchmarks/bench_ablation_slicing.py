"""Ablation: incremental slice computation history on vs off.

§3.2.1: AStream joins overlapping slices once and reuses the result for
every query window covering them.  With the history disabled every
window fire recomputes its slice pairs — the sliding-window workload
here makes that difference visible in pair counts and throughput.
"""

from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario


def _run(enable_slicing: bool):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=400.0,
            duration_s=8.0,
            window_max_seconds=4,
            engine_overrides={"enable_slicing": enable_slicing},
        ),
        scenario="sc1",
        queries_per_second=8.0,
        query_parallelism=8,
        kind="join",
    )


def bench_ablation_slicing(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation slicing",
        title="Slice-join computation history on vs off (8 sliding joins)",
        columns=(
            "setting", "pairs_computed", "pairs_reused", "service_tps",
            "results",
        ),
        paper_expectation=(
            "Incremental computation: overlapping windows reuse slice "
            "joins instead of recomputing them (Figure 4f)."
        ),
    )

    def run_both():
        return {"history on": _run(True), "history off": _run(False)}

    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    stats = {}
    for setting, run in metrics.items():
        join_op = run.engine.join_operators("join:A~B")[0]
        stats[setting] = (join_op.pairs_computed, join_op.pairs_reused)
        result.add(
            setting=setting,
            pairs_computed=join_op.pairs_computed,
            pairs_reused=join_op.pairs_reused,
            service_tps=run.report.service_rate_tps,
            results=sum(run.report.per_query_results.values()),
        )
    record_figure(result)
    on_computed, on_reused = stats["history on"]
    off_computed, off_reused = stats["history off"]
    # The history must actually kick in and save recomputation.
    assert on_reused > 0
    assert off_reused == 0
    assert off_computed > on_computed
    # Same results either way (it is purely a performance feature).
    outputs = {row["results"] for row in result.rows}
    assert len(outputs) == 1
