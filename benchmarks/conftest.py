"""Benchmark harness plumbing.

Each ``bench_figXX_*.py`` module regenerates one evaluation figure of the
paper at simulation scale, prints the rows the paper's figure reports,
and saves them under ``benchmarks/results/`` for EXPERIMENTS.md.

Set ``REPRO_FULL=1`` to run paper-scale query counts (minutes per
figure) instead of the quick defaults.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.report import FigureResult, render_csv, render_table

RESULTS_DIR = Path(__file__).parent / "results"


def is_full_scale() -> bool:
    """True when paper-scale runs are requested via REPRO_FULL=1."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def quick() -> bool:
    """Quick-scale unless REPRO_FULL=1."""
    return not is_full_scale()


@pytest.fixture
def record_figure():
    """Print a figure's table and persist it under benchmarks/results/."""

    def _record(result: FigureResult) -> FigureResult:
        table = render_table(result)
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = result.figure_id.lower().replace(" ", "")
        (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")
        (RESULTS_DIR / f"{slug}.csv").write_text(render_csv(result))
        return result

    return _record
