"""Ablation: selection-level predicate sharing (paper future work, §7).

The paper's conclusion sketches a cost-based optimizer that groups
similar queries using runtime sharing statistics.  The engine implements
two stages of that idea at the selection:

* **identical dedup** — queries whose predicates are value-identical
  share a single evaluation per tuple (``dedup_predicates``);
* **semantic overlap** (ISSUE 8) — queries whose predicates merely
  *overlap* share a covering scan + stabbing-index group with per-query
  residual filters (``share_overlapping``).

The first bench runs the classic 32-queries-over-4-predicates population
and compares evaluation counts with dedup on and off.  The second runs
the ROADMAP success-metric workload — 500 queries with ~30 % pairwise-
overlapping (non-identical) interval predicates — and compares service
throughput with the overlap optimizer on and off; its metrics feed the
``check_perf_regression.py --sharing`` gate.
"""

import random
from statistics import median

from repro.core.query import AggregationQuery, Comparison, FieldPredicate, WindowSpec
from repro.core.sql import ConjunctionPredicate
from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario
from repro.workloads.scenarios import ScheduledRequest, WorkloadSchedule


def _overlapping_schedule(queries: int, tag: str) -> WorkloadSchedule:
    """4 distinct predicates shared by ``queries`` queries.

    ``tag`` namespaces the query ids and schedule name so repeated or
    parallel invocations never collide.
    """
    requests = [
        ScheduledRequest(
            at_ms=0,
            kind="create",
            query=AggregationQuery(
                stream="A",
                predicate=FieldPredicate(index % 2, Comparison.GE, 25 * (index % 4)),
                window_spec=WindowSpec.tumbling(1_000),
                query_id=f"dup-{tag}-{index}",
            ),
        )
        for index in range(queries)
    ]
    return WorkloadSchedule(name=f"overlap-{tag}", requests=requests)


def _run(dedup: bool, tag: str, queries: int = 32):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=600.0,
            duration_s=8.0,
            engine_overrides={"dedup_predicates": dedup},
        ),
        schedule=_overlapping_schedule(queries, tag),
    )


def bench_ablation_predicate_dedup(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation predicate-dedup",
        title="Selection predicate sharing, 32 queries over 4 predicates",
        columns=("setting", "predicate_evaluations", "service_tps", "results"),
        paper_expectation=(
            "Future work (§7): grouping similar queries via sharing "
            "statistics — here, identical predicates evaluated once."
        ),
    )

    def run_both():
        return {
            "dedup on": _run(True, tag="on"),
            "dedup off": _run(False, tag="off"),
        }

    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    evaluations = {}
    outputs = {}
    for setting, run in metrics.items():
        stats = run.engine.component_stats()
        evaluations[setting] = stats["predicate_evaluations"]
        outputs[setting] = sum(run.report.per_query_results.values())
        result.add(
            setting=setting,
            predicate_evaluations=evaluations[setting],
            service_tps=run.report.service_rate_tps,
            results=outputs[setting],
        )
    record_figure(result)
    # 32 queries / 4 distinct predicates: ~8x fewer evaluations.
    assert evaluations["dedup on"] * 4 < evaluations["dedup off"]
    # Purely an optimisation: identical outputs.
    assert outputs["dedup on"] == outputs["dedup off"]


# ---------------------------------------------------------------------------
# Semantic-overlap axis (ISSUE 8): 500 queries, ~30% pairwise overlap
# ---------------------------------------------------------------------------

SHARING_QUERIES = 500
SHARING_INTERVAL_WIDTH = 15.0
SHARING_CONSTANT_SPAN = 85.0
"""Interval low bounds are uniform in [0, 85); with width 15 over the
field domain [0, 100) two intervals overlap iff their low bounds are
within 15 of each other — a ~32 % pairwise-overlap fraction, matching
the ROADMAP's "~30 % pairwise-overlapping (not identical)" workload."""
SHARING_SEED = 2019
SHARING_REPEATS = 3
SHARING_TPS_FLOOR = 1.3
"""Absolute floor on the sharing-on / sharing-off service-TPS ratio
(the ISSUE 8 acceptance bar)."""


def _sharing_constants(queries: int = SHARING_QUERIES, seed: int = SHARING_SEED):
    """The deterministic interval low bounds of the overlap workload."""
    rng = random.Random(seed)
    return [
        round(rng.uniform(0.0, SHARING_CONSTANT_SPAN), 2) for _ in range(queries)
    ]


def sharing_overlap_fraction(constants=None) -> float:
    """Fraction of query pairs whose intervals overlap (sanity metric)."""
    lows = _sharing_constants() if constants is None else constants
    overlapping = 0
    pairs = 0
    for i in range(len(lows)):
        for j in range(i + 1, len(lows)):
            pairs += 1
            if abs(lows[i] - lows[j]) <= SHARING_INTERVAL_WIDTH:
                overlapping += 1
    return overlapping / pairs if pairs else 0.0


def _sharing_schedule(tag: str, queries: int = SHARING_QUERIES) -> WorkloadSchedule:
    """500 non-identical interval predicates ``low <= f0 <= low+15``.

    Expressed as flattened conjunctions (``GE AND LE``) so the planner's
    normalization — not predicate identity — is what enables sharing.
    """
    requests = [
        ScheduledRequest(
            at_ms=0,
            kind="create",
            query=AggregationQuery(
                stream="A",
                predicate=ConjunctionPredicate(
                    (
                        FieldPredicate(0, Comparison.GE, low),
                        FieldPredicate(0, Comparison.LE, low + SHARING_INTERVAL_WIDTH),
                    )
                ),
                window_spec=WindowSpec.tumbling(1_000),
                query_id=f"ovl-{tag}-{index}",
            ),
        )
        for index, low in enumerate(_sharing_constants(queries))
    ]
    return WorkloadSchedule(name=f"sharing-{tag}", requests=requests)


def _sharing_run(share: bool, tag: str, queries: int = SHARING_QUERIES):
    return run_scenario(
        RunnerConfig(
            input_rate_tps=1_000.0,
            duration_s=6.0,
            batch_size=32,
            engine_overrides={"share_overlapping": share},
        ),
        schedule=_sharing_schedule(tag, queries),
    )


def measure_sharing_metrics(queries: int = SHARING_QUERIES) -> dict:
    """The ``--sharing`` gate metrics (ISSUE 8).

    Sharing-on and sharing-off runs are interleaved in pairs and the
    gated metric is the *median* per-pair TPS ratio, cancelling host
    drift the same way the batched-speedup gate does.  Output counts
    must match exactly — the optimizer is a pure rewrite.
    """
    _sharing_run(True, tag="warmup", queries=queries)  # discarded warm-up
    ratios = []
    best_on = best_off = 0.0
    eval_on = eval_off = 0
    for index in range(SHARING_REPEATS):
        off = _sharing_run(False, tag=f"off{index}", queries=queries)
        on = _sharing_run(True, tag=f"on{index}", queries=queries)
        outputs_off = sum(off.report.per_query_results.values())
        outputs_on = sum(on.report.per_query_results.values())
        if outputs_on != outputs_off:
            raise AssertionError(
                f"sharing changed outputs: {outputs_on} != {outputs_off}"
            )
        tps_off = off.report.service_rate_tps
        tps_on = on.report.service_rate_tps
        if tps_off:
            ratios.append(tps_on / tps_off)
        best_on = max(best_on, tps_on)
        best_off = max(best_off, tps_off)
        eval_on = on.engine.component_stats()["predicate_evaluations"]
        eval_off = off.engine.component_stats()["predicate_evaluations"]
    return {
        "sharing_tps_ratio_500q_overlap": median(ratios) if ratios else 0.0,
        "sharing_on_service_tps_500q": best_on,
        "sharing_off_service_tps_500q": best_off,
        "sharing_overlap_fraction": sharing_overlap_fraction(
            _sharing_constants(queries)
        ),
        "sharing_eval_reduction_500q": (
            eval_off / eval_on if eval_on else 0.0
        ),
    }


def bench_ablation_overlap_sharing(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation overlap-sharing",
        title=(
            "Semantic-overlap optimizer, 500 queries with ~30% "
            "pairwise-overlapping interval predicates"
        ),
        columns=("setting", "predicate_evaluations", "service_tps", "results"),
        paper_expectation=(
            "Future work (§7): grouping *similar* (overlapping, "
            "non-identical) queries — covering scan + residual filters."
        ),
    )

    def run_both():
        return {
            "sharing on": _sharing_run(True, tag="fig-on"),
            "sharing off": _sharing_run(False, tag="fig-off"),
        }

    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    evaluations = {}
    outputs = {}
    for setting, run in metrics.items():
        stats = run.engine.component_stats()
        evaluations[setting] = stats["predicate_evaluations"]
        outputs[setting] = sum(run.report.per_query_results.values())
        result.add(
            setting=setting,
            predicate_evaluations=evaluations[setting],
            service_tps=run.report.service_rate_tps,
            results=outputs[setting],
        )
    record_figure(result)
    # One covering probe resolves hundreds of members: orders fewer
    # evaluation units than per-predicate scanning.
    assert evaluations["sharing on"] * 10 < evaluations["sharing off"]
    # Purely an optimisation: identical outputs.
    assert outputs["sharing on"] == outputs["sharing off"]
