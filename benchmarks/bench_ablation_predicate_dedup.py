"""Ablation: selection-level predicate sharing (paper future work, §7).

The paper's conclusion sketches a cost-based optimizer that groups
similar queries using runtime sharing statistics.  The engine implements
the selection-stage instance of that idea: queries whose predicates are
value-identical share a single evaluation per tuple.  This bench runs a
population with heavy predicate overlap and compares evaluation counts
and throughput with the optimisation on and off.
"""

from repro.core.query import AggregationQuery, Comparison, FieldPredicate, WindowSpec
from repro.harness.report import FigureResult
from repro.harness.runner import RunnerConfig, run_scenario
from repro.workloads.scenarios import ScheduledRequest, WorkloadSchedule


def _overlapping_schedule(queries: int) -> WorkloadSchedule:
    # 4 distinct predicates shared by `queries` queries.
    requests = [
        ScheduledRequest(
            at_ms=0,
            kind="create",
            query=AggregationQuery(
                stream="A",
                predicate=FieldPredicate(index % 2, Comparison.GE, 25 * (index % 4)),
                window_spec=WindowSpec.tumbling(1_000),
                query_id=f"dup-{dedup_tag}-{index}",
            ),
        )
        for index in range(queries)
    ]
    return WorkloadSchedule(name=f"overlap-{dedup_tag}", requests=requests)


dedup_tag = 0


def _run(dedup: bool, queries: int = 32):
    global dedup_tag
    dedup_tag += 1
    return run_scenario(
        RunnerConfig(
            input_rate_tps=600.0,
            duration_s=8.0,
            engine_overrides={"dedup_predicates": dedup},
        ),
        schedule=_overlapping_schedule(queries),
    )


def bench_ablation_predicate_dedup(benchmark, record_figure):
    result = FigureResult(
        figure_id="Ablation predicate-dedup",
        title="Selection predicate sharing, 32 queries over 4 predicates",
        columns=("setting", "predicate_evaluations", "service_tps", "results"),
        paper_expectation=(
            "Future work (§7): grouping similar queries via sharing "
            "statistics — here, identical predicates evaluated once."
        ),
    )

    def run_both():
        return {"dedup on": _run(True), "dedup off": _run(False)}

    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    evaluations = {}
    outputs = {}
    for setting, run in metrics.items():
        stats = run.engine.component_stats()
        evaluations[setting] = stats["predicate_evaluations"]
        outputs[setting] = sum(run.report.per_query_results.values())
        result.add(
            setting=setting,
            predicate_evaluations=evaluations[setting],
            service_tps=run.report.service_rate_tps,
            results=outputs[setting],
        )
    record_figure(result)
    # 32 queries / 4 distinct predicates: ~8x fewer evaluations.
    assert evaluations["dedup on"] * 4 < evaluations["dedup off"]
    # Purely an optimisation: identical outputs.
    assert outputs["dedup on"] == outputs["dedup off"]
