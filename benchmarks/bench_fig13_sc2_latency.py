"""Figure 13: SC2 average event-time latency.

Paper shape: SC2's churn keeps latency below SC1's — the query
population doesn't accumulate, so the engine carries less window state;
all configurations stay under about a second.
"""

from repro.harness.figures import fig13_sc2_latency


def bench_fig13(benchmark, quick, record_figure):
    result = benchmark.pedantic(
        fig13_sc2_latency, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    record_figure(result)
    join_rows = [row for row in result.rows if row["kind"] == "join"]
    agg_rows = [row for row in result.rows if row["kind"] == "agg"]
    assert all(row["latency_ms"] < 5_000 for row in result.rows)
    # Join latency exceeds aggregation latency here too.
    assert min(row["latency_ms"] for row in join_rows) >= max(
        row["latency_ms"] for row in agg_rows
    )
