"""Recovery overhead vs checkpoint interval (fault-injection subsystem).

§3.3: recovery restores the latest checkpoint and replays the input
log's suffix.  The checkpoint interval trades steady-state cost (barrier
rounds, snapshots) against recovery cost (replay length): frequent
checkpoints bound the replayed suffix near one interval of input, rare
checkpoints replay long histories.  This sweep drives SC1 under a fixed
seeded fault plan (two node crashes, one channel drop) at four
checkpoint intervals and reports checkpoints taken, recoveries, mean
MTTR, and the replayed-elements overhead.
"""

from repro.core.engine import AStreamEngine, EngineConfig
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Supervisor,
    SupervisorPolicy,
)
from repro.harness.report import FigureResult
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.driver import AStreamAdapter, Driver, DriverConfig, RetryPolicy
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule

STREAMS = ("A", "B")


def _fault_plan(duration_ms: int) -> FaultPlan:
    plan = FaultPlan(name="bench-recovery")
    for node, fraction in ((0, 0.25), (1, 0.55)):
        crash_ms = int(duration_ms * fraction)
        plan.add(FaultEvent(at_ms=crash_ms, kind=FaultKind.NODE_CRASH, node=node))
        plan.add(
            FaultEvent(
                at_ms=crash_ms + 1_000, kind=FaultKind.NODE_RESTORE, node=node
            )
        )
    plan.add(
        FaultEvent(
            at_ms=int(duration_ms * 0.75),
            kind=FaultKind.CHANNEL_DROP,
            edge="select:A->join:A~B",
            count=2,
        )
    )
    return plan


def _run(schedule, interval_ms: int, duration_s: float):
    cluster = SimulatedCluster(ClusterSpec(nodes=4))
    engine = AStreamEngine(
        EngineConfig(streams=STREAMS, parallelism=1, log_inputs=True),
        cluster=cluster,
    )
    injector = FaultInjector(_fault_plan(int(duration_s * 1_000)), cluster=cluster)
    injector.attach(engine.runtime)
    supervisor = Supervisor(
        engine,
        injector=injector,
        policy=SupervisorPolicy(checkpoint_interval_ms=interval_ms),
    )
    driver = Driver(
        AStreamAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(input_rate_tps=100.0, duration_s=duration_s, step_ms=250),
        retry=RetryPolicy(),
        supervisor=supervisor,
    )
    report = driver.run()
    return report, supervisor


def bench_fault_recovery(benchmark, quick, record_figure):
    duration_s = 8.0 if quick else 30.0
    intervals = (500, 1_000, 2_000, 4_000)
    # One schedule shared by every interval: query ids are process-global.
    schedule = sc1_schedule(
        QueryGenerator(streams=STREAMS, seed=5), 1, 4, kind="join"
    )

    def run_all():
        return {
            interval: _run(schedule, interval, duration_s)
            for interval in intervals
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    result = FigureResult(
        figure_id="Ablation fault-recovery",
        title="Recovery overhead vs checkpoint interval (SC1, seeded faults)",
        columns=(
            "interval_ms",
            "checkpoints",
            "recoveries",
            "mean_mttr_s",
            "mean_replay",
            "replay_overhead_pct",
        ),
        paper_expectation=(
            "Frequent checkpoints bound the replayed suffix near one "
            "interval of input; rare checkpoints replay long histories "
            "(§3.3 replay-based recovery)."
        ),
    )
    stats = {}
    for interval, (report, supervisor) in runs.items():
        recoveries = supervisor.recovery_count
        mean_replay = (
            supervisor.total_replayed_elements / recoveries if recoveries else 0.0
        )
        stats[interval] = (supervisor.checkpoints_taken, mean_replay)
        result.add(
            interval_ms=interval,
            checkpoints=supervisor.checkpoints_taken,
            recoveries=recoveries,
            mean_mttr_s=supervisor.mean_mttr_ms / 1000.0,
            mean_replay=round(mean_replay, 1),
            replay_overhead_pct=round(
                100.0
                * supervisor.total_replayed_elements
                / max(report.tuples_pushed, 1),
                1,
            ),
        )
    record_figure(result)

    # Shorter intervals take more checkpoints and replay less per recovery.
    assert stats[500][0] > stats[4_000][0]
    assert stats[500][1] <= stats[4_000][1]
    # The fault plan fired identically across the sweep.
    counts = {supervisor.recovery_count for _, supervisor in runs.values()}
    assert len(counts) == 1 and counts.pop() >= 3
