"""Streaming result subscriptions: fan-out, bounded buffers, shedding.

A subscription attaches one client session to one query's output
channel.  Two delivery modes cover the two execution backends:

* **tap** (inline backend) — a :meth:`QueryChannels.add_tap` hook fires
  synchronously on every router delivery, so results stream with no
  polling and no re-reads;
* **poll** (process backend) — deliveries happen inside shard worker
  processes, so the coordinator only sees results at merge points; the
  hub diffs the merged channel against what each subscription has
  already been handed (a multiset cursor keyed by the result's
  canonical identity) and forwards exactly the new results.  The diff
  is order-insensitive, which matters because the deterministic
  cross-shard merge re-sorts the full channel on every refresh.

Each subscription owns a bounded buffer.  When a consumer is slower
than its query produces, the oldest buffered results are shed and
counted; the next ``result`` frame reports the shed count, so clients
know their view has gaps instead of silently missing data (the
slow-consumer contract: shedding is visible, never fatal).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.engine import AStreamEngine
from repro.core.router import QueryOutput
from repro.serve.state import SessionState

DEFAULT_BUFFER_OUTPUTS = 65_536
"""Per-subscription buffered-result cap before shedding kicks in."""


def output_key(output: QueryOutput) -> Tuple[int, str]:
    """A result's canonical identity for multiset cursors.

    ``(timestamp, repr(value))`` — the same key the deterministic merge
    sorts by, injective for the engine's result payloads.
    """
    return (output.timestamp, repr(output.value))


class Subscription:
    """One session's live attachment to one query's results."""

    def __init__(
        self,
        session: SessionState,
        query_id: str,
        capacity: int = DEFAULT_BUFFER_OUTPUTS,
    ) -> None:
        self.session = session
        self.query_id = query_id
        self.capacity = capacity
        self.buffer: deque = deque()
        self.dropped_total = 0
        self._dropped_unreported = 0
        self.delivered_total = 0
        self.pressure = False
        """SLO-burn shedding: while set, the effective buffer capacity
        is halved so backlog (and thus tail latency) stops compounding
        for a query already burning its error budget."""
        self.sent: Dict[Tuple[int, str], int] = {}
        """Poll-mode multiset cursor: canonical key → count handed over."""

    def offer(self, output: QueryOutput) -> None:
        """Buffer one result, shedding the oldest when full."""
        capacity = self.capacity // 2 if self.pressure else self.capacity
        while len(self.buffer) >= max(1, capacity):
            self.buffer.popleft()
            self.dropped_total += 1
            self._dropped_unreported += 1
        self.buffer.append(output)

    def take(self, limit: int) -> Tuple[List[QueryOutput], int]:
        """Pop up to ``limit`` buffered results + the unreported shed count."""
        batch: List[QueryOutput] = []
        while self.buffer and len(batch) < limit:
            batch.append(self.buffer.popleft())
        dropped = self._dropped_unreported
        self._dropped_unreported = 0
        self.delivered_total += len(batch)
        return batch, dropped

    @property
    def pending(self) -> int:
        """Results buffered and not yet taken."""
        return len(self.buffer)


class SubscriptionHub:
    """All live subscriptions against one engine."""

    def __init__(
        self,
        engine: AStreamEngine,
        tap_mode: bool,
        buffer_capacity: int = DEFAULT_BUFFER_OUTPUTS,
    ) -> None:
        self.engine = engine
        self.tap_mode = tap_mode
        self.buffer_capacity = buffer_capacity
        self._by_query: Dict[str, List[Subscription]] = {}
        self._taps: Dict[str, object] = {}

    # -- lifecycle ---------------------------------------------------------

    def subscribe(
        self,
        session: SessionState,
        query_id: str,
        from_start: bool = True,
    ) -> Subscription:
        """Attach ``session`` to ``query_id``; returns the subscription.

        ``from_start`` seeds the buffer with everything the query has
        already produced; otherwise only results delivered after this
        call flow.  Re-subscribing an already-subscribed query returns
        the existing attachment (the SDK's post-reconnect resubscribe
        must not double-deliver).
        """
        existing = session.subscriptions.get(query_id)
        if existing is not None:
            return existing
        subscription = Subscription(
            session, query_id, capacity=self.buffer_capacity
        )
        backlog = self.engine.results(query_id)
        if from_start:
            for output in backlog:
                subscription.offer(output)
                key = output_key(output)
                subscription.sent[key] = subscription.sent.get(key, 0) + 1
        else:
            for output in backlog:
                key = output_key(output)
                subscription.sent[key] = subscription.sent.get(key, 0) + 1
        session.subscriptions[query_id] = subscription
        peers = self._by_query.setdefault(query_id, [])
        peers.append(subscription)
        if self.tap_mode and query_id not in self._taps:
            tap = self._make_tap()
            self._taps[query_id] = tap
            self.engine.channels.add_tap(query_id, tap)
        return subscription

    def unsubscribe(self, session: SessionState, query_id: str) -> bool:
        """Detach ``session`` from ``query_id``; True when it existed."""
        subscription = session.subscriptions.pop(query_id, None)
        if subscription is None:
            return False
        peers = self._by_query.get(query_id, [])
        if subscription in peers:
            peers.remove(subscription)
        if not peers:
            self._by_query.pop(query_id, None)
            tap = self._taps.pop(query_id, None)
            if tap is not None:
                self.engine.channels.remove_tap(query_id, tap)
        return True

    def drop_session(self, session: SessionState) -> None:
        """Tear down every subscription a session holds."""
        for query_id in list(session.subscriptions):
            self.unsubscribe(session, query_id)

    # -- delivery ----------------------------------------------------------

    def _make_tap(self):
        """Build the per-query channel tap fanning into subscriptions."""

        def tap(query_id: str, timestamp: int, value) -> None:
            output = QueryOutput(timestamp=timestamp, value=value)
            key = (timestamp, repr(value))
            for subscription in self._by_query.get(query_id, ()):
                subscription.offer(output)
                subscription.sent[key] = subscription.sent.get(key, 0) + 1

        return tap

    def poll(self, query_ids: Optional[List[str]] = None) -> int:
        """Poll-mode refresh: diff channels into buffers; returns new count.

        For each subscribed query the merged channel is compared against
        each subscription's multiset cursor; results beyond the cursor
        are buffered.  Safe to call in tap mode (the cursors make it a
        no-op), which is how the server's flusher stays backend-agnostic.
        """
        fanned = 0
        targets = query_ids if query_ids is not None else list(self._by_query)
        for query_id in targets:
            subscriptions = self._by_query.get(query_id)
            if not subscriptions:
                continue
            outputs = self.engine.results(query_id)
            if not outputs:
                continue
            for subscription in subscriptions:
                fanned += self._advance(subscription, outputs)
        return fanned

    def _advance(
        self, subscription: Subscription, outputs: List[QueryOutput]
    ) -> int:
        """Hand one subscription everything beyond its multiset cursor."""
        sent = subscription.sent
        tally: Dict[Tuple[int, str], int] = {}
        new = 0
        for output in outputs:
            key = output_key(output)
            seen = tally.get(key, 0) + 1
            tally[key] = seen
            if seen > sent.get(key, 0):
                subscription.offer(output)
                sent[key] = seen
                new += 1
        return new

    # -- shedding ----------------------------------------------------------

    def set_pressure(self, query_id: str, active: bool) -> int:
        """Apply/lift SLO-burn pressure on a query's subscriptions.

        Returns how many subscriptions changed state."""
        changed = 0
        for subscription in self._by_query.get(query_id, ()):
            if subscription.pressure != active:
                subscription.pressure = active
                changed += 1
        return changed

    # -- introspection -----------------------------------------------------

    @property
    def subscription_count(self) -> int:
        """Live subscriptions across all sessions."""
        return sum(len(peers) for peers in self._by_query.values())

    @property
    def pending_outputs(self) -> int:
        """Results buffered across all subscriptions, not yet shipped."""
        return sum(
            subscription.pending
            for peers in self._by_query.values()
            for subscription in peers
        )

    @property
    def dropped_total(self) -> int:
        """Results shed across all subscriptions since start."""
        return sum(
            subscription.dropped_total
            for peers in self._by_query.values()
            for subscription in peers
        )
