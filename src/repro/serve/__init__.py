"""``repro.serve``: the networked multi-tenant stream service layer.

Puts the shared-stream engine behind a TCP frame protocol so many
independent clients can create/delete ad-hoc queries, push events, and
stream results concurrently — the paper's serving setting exercised
over a real wire.  See :mod:`repro.serve.server` for the architecture
tour and ``docs/ARCHITECTURE.md`` for the frame protocol spec.

Start a server with ``python -m repro serve`` or in-process::

    server = AStreamServer(ServeConfig(backend="process", workers=4))
    await server.start()

and talk to it with :class:`ServeClient` (blocking) or
:class:`AsyncServeClient` (asyncio).
"""

from repro.serve.autoscale import (
    AutoscaleDecision,
    AutoscalePolicy,
    Autoscaler,
)
from repro.serve.client import (
    AsyncServeClient,
    ConnectionLost,
    ControlResult,
    ServeClient,
    ServeError,
)
from repro.serve.gate import EngineGate
from repro.serve.hosting import ServerThread
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_events,
    decode_frame,
    encode_events,
    encode_frame,
)
from repro.serve.server import AStreamServer, ServeConfig, build_engine
from repro.serve.state import SessionRegistry, SessionState
from repro.serve.subscriptions import Subscription, SubscriptionHub

__all__ = [
    "AStreamServer",
    "AsyncServeClient",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "Autoscaler",
    "ConnectionLost",
    "ControlResult",
    "EngineGate",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "SessionRegistry",
    "SessionState",
    "Subscription",
    "SubscriptionHub",
    "build_engine",
    "decode_events",
    "decode_frame",
    "encode_events",
    "encode_frame",
]
