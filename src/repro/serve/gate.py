"""The engine gate: a thread-safe, supervised seam around one engine.

Every serving-layer touch of the engine — control plane, data plane,
the metrics endpoint, a background flusher — goes through one
:class:`EngineGate`.  It provides the two guarantees the library engine
does not:

* **serialisation** — an RLock makes engine access safe from the
  asyncio loop *and* foreign threads (the sync client example runs the
  server on a side thread; the HTTP metrics handler snapshots while
  control frames apply);
* **supervision** — a shard worker dying under the process backend
  (chaos ``kill_worker``, OOM, a real crash) surfaces as
  :class:`~repro.minispe.parallel.ShardWorkerError` on the next engine
  call.  The gate catches it, drives the engine's checkpoint-restore +
  input-log-replay recovery (:meth:`AStreamEngine.recover`), and
  retries the failed call once — so live client sessions see a latency
  blip, not an error, mirroring the fault supervisor's recovery loop
  (:class:`repro.faults.supervisor.Supervisor`) inside the server.
"""

from __future__ import annotations

import logging
import threading
from typing import Any, Callable, List, Optional

from repro.core.engine import AStreamEngine, RecoveryInfo
from repro.minispe.parallel import ShardWorkerError

logger = logging.getLogger("repro.serve.gate")


class EngineGate:
    """Serialised, recovery-supervised access to one engine."""

    def __init__(
        self,
        engine: AStreamEngine,
        max_recoveries: int = 8,
        on_recovery: Optional[Callable[[RecoveryInfo], None]] = None,
    ) -> None:
        self.engine = engine
        self.max_recoveries = max_recoveries
        self.on_recovery = on_recovery
        self.recoveries: List[RecoveryInfo] = []
        self._lock = threading.RLock()

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run one engine operation under the gate.

        On :class:`ShardWorkerError` the engine is recovered (checkpoint
        restore + input-log replay rebuilds the worker pool) and the
        operation retried once; a second failure — or exhausting the
        recovery budget — propagates.
        """
        with self._lock:
            try:
                return fn(*args, **kwargs)
            except ShardWorkerError as error:
                self._recover(error)
                return fn(*args, **kwargs)

    def locked(self):
        """The gate's lock, for multi-call atomic sections."""
        return self._lock

    def _recover(self, error: ShardWorkerError) -> None:
        if len(self.recoveries) >= self.max_recoveries:
            raise error
        logger.warning("engine call failed (%s); recovering", error)
        info = self.engine.recover()
        self.recoveries.append(info)
        if self.on_recovery is not None:
            self.on_recovery(info)
        logger.info(
            "engine recovered: checkpoint %s, %d elements replayed",
            info.checkpoint_id,
            info.replayed_elements,
        )
