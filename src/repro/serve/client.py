"""Client SDKs for the stream service: sync sockets and asyncio.

Both clients speak the frame protocol of :mod:`repro.serve.protocol`
and wrap the driver's :class:`~repro.workloads.driver.RetryPolicy` into
a transport-level resilience loop:

* **reconnect** — a dropped connection (or an ack timeout) triggers a
  fresh dial with seeded exponential backoff;
* **resubscribe** — subscriptions the client holds are re-issued after
  every reconnect (the server's re-subscribe is idempotent, so nothing
  double-delivers);
* **idempotent resubmission** — every control request carries a client
  sequence number; after a reconnect the unacknowledged request is
  re-sent verbatim and the server either applies it or replays the
  cached reply, so a create/delete lands exactly once no matter how
  many times the wire fails under it.

:class:`ServeClient` is the blocking flavour (tests, benchmarks, simple
scripts); :class:`AsyncServeClient` is the asyncio flavour with a
background reader task that routes streamed ``result`` frames into
per-query queues while request/reply traffic proceeds.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.query import Query
from repro.core.router import QueryOutput
from repro.core.serde import output_from_dict, query_to_dict
from repro.obs.tracing import new_trace_id
from repro.serve.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_events,
    encode_frame,
    encode_push_binary,
    read_frame,
    read_frame_sock,
    write_frame,
    write_frame_sock,
)
from repro.workloads.driver import RetryPolicy


class ServeError(RuntimeError):
    """A server-side error reply (carries the protocol error code)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        """The protocol error code (e.g. ``unknown_query``)."""


class ConnectionLost(ConnectionError):
    """The transport died mid-exchange (the retry loop's signal)."""


@dataclass
class ControlResult:
    """Outcome of one acknowledged control request."""

    status: str
    """``admit`` / ``defer`` / ``reject`` / ``ok`` / ``not_subscribed``."""
    query_id: Optional[str] = None
    sequence: Optional[int] = None
    """Changelog sequence at which the request took effect (None while
    the server's batched flush has not applied it yet)."""
    raw: Optional[Dict[str, Any]] = None
    """The full reply frame, for fields the dataclass does not lift."""


def _decode_reply(frame: Dict[str, Any]) -> ControlResult:
    """Lift an ack frame into a :class:`ControlResult`."""
    return ControlResult(
        status=str(frame.get("status", "ok")),
        query_id=frame.get("query_id"),
        sequence=frame.get("sequence"),
        raw=frame,
    )


class _SessionCore:
    """Client state shared by both SDK flavours."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        token: Optional[str],
        retry: Optional[RetryPolicy],
        codec: str = CODEC_BINARY,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.token = token
        self.retry = retry or RetryPolicy()
        self.rng = random.Random(self.retry.seed)
        if codec not in (CODEC_BINARY, CODEC_JSON):
            raise ValueError(f"unknown codec {codec!r}")
        self.codec_preference = codec
        self.codec = CODEC_JSON
        """The codec the *server* granted at the last handshake; stays
        JSON against servers that never heard of codec negotiation."""
        self.seq = 0
        self.credits = 0
        self.server_info: Dict[str, Any] = {}
        self.subscriptions: Dict[str, bool] = {}
        """query_id → from_start flag, replayed after reconnects."""
        self.results: Dict[str, Deque[Tuple[QueryOutput, int]]] = {}
        """query_id → queued ``(output, dropped_before_it)`` pairs."""
        self.events: Deque[Dict[str, Any]] = deque()
        """Out-of-band ``query_event`` frames, oldest first."""
        self.reconnects = 0

    def next_seq(self) -> int:
        """Allocate the next client sequence number."""
        self.seq += 1
        return self.seq

    def hello_frame(self) -> Dict[str, Any]:
        """The handshake frame for a (re)connect."""
        frame: Dict[str, Any] = {
            "t": "hello",
            "protocol": PROTOCOL_VERSION,
            "client_id": self.client_id,
            "codecs": (
                [CODEC_BINARY, CODEC_JSON]
                if self.codec_preference == CODEC_BINARY
                else [CODEC_JSON]
            ),
        }
        if self.token is not None:
            frame["token"] = self.token
        return frame

    def adopt_codec(self, reply: Dict[str, Any]) -> None:
        """Record the codec the server granted in its ``hello_ack``."""
        granted = reply.get("codec", CODEC_JSON)
        self.codec = (
            granted if granted in (CODEC_BINARY, CODEC_JSON) else CODEC_JSON
        )

    def absorb(self, frame: Dict[str, Any]) -> None:
        """File one streamed (non-reply) frame into client-side queues."""
        kind = frame.get("t")
        if kind == "result":
            queue = self.results.setdefault(frame["query_id"], deque())
            dropped = int(frame.get("dropped", 0))
            outputs = frame["outputs"]
            decoded = frame.get("_decoded", False)
            for index, document in enumerate(outputs):
                queue.append(
                    (document if decoded else output_from_dict(document),
                     dropped if index == 0 else 0)
                )
            if dropped and not outputs:
                # Shedding with nothing left to deliver still must
                # surface: file a gap-only marker.
                queue.append((None, dropped))  # type: ignore[arg-type]
        elif kind == "query_event":
            self.events.append(frame)
        # pong and stray acks are dropped silently.

    def take_results(self, query_id: str) -> Tuple[List[QueryOutput], int]:
        """Drain queued streamed results for a query; ``(outputs, shed)``."""
        queue = self.results.get(query_id)
        if not queue:
            return [], 0
        outputs: List[QueryOutput] = []
        shed = 0
        while queue:
            output, dropped = queue.popleft()
            shed += dropped
            if output is not None:
                outputs.append(output)
        return outputs, shed


def _control_frame(
    kind: str, seq: int, **fields: Any
) -> Dict[str, Any]:
    """Assemble one sequenced control frame (Nones omitted)."""
    frame: Dict[str, Any] = {"t": kind, "seq": seq}
    for key, value in fields.items():
        if value is not None:
            frame[key] = value
    return frame


class ServeClient:
    """Blocking client for the stream service (sockets + retries)."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str = "client",
        token: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        connect_timeout_s: float = 5.0,
        codec: str = CODEC_BINARY,
        coalesce_tuples: int = 512,
        trace_sample_every: int = 0,
    ) -> None:
        self._core = _SessionCore(host, port, client_id, token, retry,
                                  codec=codec)
        self._connect_timeout_s = connect_timeout_s
        self._sock: Optional[socket.socket] = None
        self._coalesce = max(1, coalesce_tuples)
        """Tuples buffered by :meth:`push_nowait` before a frame ships."""
        self._ingest_buffer: List[Tuple[int, Any]] = []
        self._ingest_stream: Optional[str] = None
        self._in_flight = 0
        """Pipelined push frames sent but not yet acknowledged."""
        self._ingest_accepted = 0
        self._trace_every = max(0, trace_sample_every)
        """Stamp every Nth :meth:`push` with a wire trace context
        (0 disables tracing; 1 traces every push).  The server closes
        each trace at subscriber delivery and piggybacks the span
        breakdown on the push ack — harvested into
        :attr:`trace_summaries` / :attr:`wire_latencies_ms`."""
        self._push_seq = 0
        self.trace_summaries: deque = deque(maxlen=256)
        """Closed wire traces returned on push acks, newest last."""
        self.wire_latencies_ms: List[float] = []
        """End-to-end latency (ms) of every closed wire trace."""
        self.connect()

    # -- connection management ---------------------------------------------

    @property
    def reconnects(self) -> int:
        """Times the transport was re-dialled after the first connect."""
        return self._core.reconnects

    @property
    def server_info(self) -> Dict[str, Any]:
        """The server's handshake self-description."""
        return self._core.server_info

    @property
    def codec(self) -> str:
        """The wire codec the server granted (``json``/``binary``)."""
        return self._core.codec

    def connect(self) -> None:
        """Dial, handshake, and resubscribe (used for reconnects too)."""
        self.close_transport()
        sock = socket.create_connection(
            (self._core.host, self._core.port),
            timeout=self._connect_timeout_s,
        )
        sock.settimeout(self._core.retry.ack_timeout_ms / 1_000.0)
        write_frame_sock(sock, self._core.hello_frame())
        reply = read_frame_sock(sock)
        if reply is None:
            sock.close()
            raise ConnectionLost("server closed during handshake")
        if reply.get("t") == "error":
            sock.close()
            raise ServeError(reply["code"], reply["message"])
        self._core.server_info = reply.get("server", {})
        self._core.credits = int(reply.get("credits", 0))
        self._core.adopt_codec(reply)
        self._sock = sock
        # Pipelined frames in flight died with the old connection; the
        # coalescing buffer (never sent) survives and flushes later.
        self._in_flight = 0
        for query_id, from_start in list(self._core.subscriptions.items()):
            self._request(
                _control_frame(
                    "subscribe",
                    self._core.next_seq(),
                    query_id=query_id,
                    from_start=from_start,
                )
            )

    def close_transport(self) -> None:
        """Drop the socket without touching session state."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the client for good."""
        self.close_transport()

    def __enter__(self) -> "ServeClient":
        """Context-manager entry (the constructor already connected)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the transport."""
        self.close()

    def _reconnect(self, attempt: int) -> None:
        delay_ms = self._core.retry.backoff_ms(attempt, self._core.rng)
        time.sleep(delay_ms / 1_000.0)
        self._core.reconnects += 1
        self.connect()

    # -- the retry loop ----------------------------------------------------

    def _exchange_once(
        self, frame: Dict[str, Any], raw: Optional[bytes] = None
    ) -> Dict[str, Any]:
        """One send + read-until-reply exchange on the live socket.

        ``raw`` carries a pre-encoded wire image (the binary push path);
        ``frame`` is still used for reply matching.
        """
        if self._in_flight or self._ingest_buffer:
            # Order barrier: pipelined ingest fully lands before any
            # other frame leaves the client.
            self._drain_ingest()
        if self._sock is None:
            raise ConnectionLost("not connected")
        try:
            if raw is not None:
                self._sock.sendall(raw)
            else:
                write_frame_sock(self._sock, frame)
            while True:
                reply = read_frame_sock(self._sock)
                if reply is None:
                    raise ConnectionLost("server closed the connection")
                kind = reply.get("t")
                if kind == "error":
                    if reply.get("seq") in (None, frame.get("seq")):
                        raise ServeError(reply["code"], reply["message"])
                    continue
                if kind in ("ack", "results") and (
                    "seq" not in frame or reply.get("seq") == frame["seq"]
                ):
                    return reply
                if kind == "push_ack" and frame.get("t") == "push":
                    return reply
                if kind == "pong" and frame.get("t") == "ping":
                    return reply
                self._core.absorb(reply)
        except (OSError, socket.timeout) as error:
            raise ConnectionLost(str(error)) from error

    def _request(
        self, frame: Dict[str, Any], raw: Optional[bytes] = None
    ) -> Dict[str, Any]:
        """Send one frame and return its reply, retrying per policy.

        The same frame — same client ``seq`` — is re-sent verbatim after
        every reconnect, so the server's idempotency cache guarantees a
        control request applies exactly once.
        """
        policy = self._core.retry
        last: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self._exchange_once(frame, raw)
            except ConnectionLost as error:
                last = error
                if attempt >= policy.max_attempts:
                    break
                try:
                    self._reconnect(attempt)
                except (OSError, ConnectionLost) as redial_error:
                    last = redial_error
        raise ConnectionLost(
            f"request {frame.get('t')} failed after "
            f"{policy.max_attempts} attempts: {last}"
        )

    # -- control plane -----------------------------------------------------

    def create_query(
        self,
        query: Optional[Query] = None,
        sql: Optional[str] = None,
        at_ms: Optional[int] = None,
        slo_ms: Optional[float] = None,
    ) -> ControlResult:
        """Create one ad-hoc query (a :class:`Query` or SQL text).

        ``slo_ms`` declares a wire-to-delivery latency SLO target for
        the query; the server tracks its burn rate and feeds it to the
        autoscaler and QoS shedding.
        """
        if (query is None) == (sql is None):
            raise ValueError("pass exactly one of query= or sql=")
        frame = _control_frame(
            "create_query",
            self._core.next_seq(),
            query=query_to_dict(query) if query is not None else None,
            sql=sql,
            at_ms=at_ms,
            slo_ms=slo_ms,
        )
        return _decode_reply(self._request(frame))

    def delete_query(
        self, query_id: str, at_ms: Optional[int] = None
    ) -> ControlResult:
        """Delete one live query."""
        frame = _control_frame(
            "delete_query",
            self._core.next_seq(),
            query_id=query_id,
            at_ms=at_ms,
        )
        return _decode_reply(self._request(frame))

    # -- data plane --------------------------------------------------------

    def push(self, stream: str, events: List[Tuple[int, Any]]) -> int:
        """Push one event micro-batch; returns the accepted count.

        On a binary-negotiated session the batch ships as columnar
        int64 arrays; events the columns cannot carry (a non-standard
        payload type, an int64 overflow) fall back to the JSON form.
        With ``trace_sample_every`` set, every Nth push is stamped with
        a wire trace context; the closed trace comes back on the ack.
        """
        trace = None
        if self._trace_every:
            self._push_seq += 1
            if self._push_seq % self._trace_every == 0:
                trace = (new_trace_id(), time.monotonic_ns())
        raw = self._encode_push_wire(stream, events, trace)
        reply = self._request({"t": "push"}, raw)
        self._core.credits = int(reply.get("credits", self._core.credits))
        summary = reply.get("trace")
        if summary:
            self.trace_summaries.append(summary)
            e2e_ns = summary.get("e2e_ns")
            if e2e_ns is not None:
                self.wire_latencies_ms.append(e2e_ns / 1e6)
        return int(reply.get("accepted", 0))

    def _encode_push_wire(
        self,
        stream: str,
        events: List[Tuple[int, Any]],
        trace: Optional[Tuple[int, int]] = None,
    ) -> bytes:
        """The wire image of one push frame in the session codec."""
        if self._core.codec == CODEC_BINARY:
            try:
                return encode_push_binary(stream, events, trace=trace)
            except (ProtocolError, struct.error, TypeError,
                    AttributeError, ValueError):
                pass
        frame = {"t": "push", "stream": stream,
                 "events": encode_events(events)}
        if trace is not None:
            frame["trace"] = {"id": trace[0], "ingest_ns": trace[1]}
        return encode_frame(frame)

    def push_nowait(self, stream: str, events: List[Tuple[int, Any]]) -> None:
        """Buffer events for pipelined ingest (the high-throughput path).

        Events coalesce into frames of ``coalesce_tuples`` tuples that
        ship without waiting for their acks — up to the server's credit
        grant may be in flight at once, so frame encode, server-side
        ingest, and ack reads overlap instead of alternating.  A stream
        switch flushes the buffer (per-stream order is preserved); call
        :meth:`flush_ingest` to force everything out and collect the
        accepted count.  Unlike :meth:`push`, delivery is at-most-once:
        frames in flight when the transport dies are **not** replayed
        after the reconnect.
        """
        if self._ingest_stream is not None and stream != self._ingest_stream:
            self._flush_ingest_frame()
        self._ingest_stream = stream
        self._ingest_buffer.extend(events)
        if len(self._ingest_buffer) >= self._coalesce:
            self._flush_ingest_frame()

    def flush_ingest(self) -> int:
        """Flush buffered events and drain every outstanding ack.

        Returns the tuple count the server accepted since the previous
        flush (acks harvested opportunistically along the way included).
        """
        self._drain_ingest()
        accepted = self._ingest_accepted
        self._ingest_accepted = 0
        return accepted

    def _drain_ingest(self) -> None:
        self._flush_ingest_frame()
        while self._in_flight:
            self._read_ingest_ack()

    def _flush_ingest_frame(self) -> None:
        if not self._ingest_buffer:
            return
        stream, events = self._ingest_stream, self._ingest_buffer
        self._ingest_buffer = []
        self._ingest_stream = None
        raw = self._encode_push_wire(stream, events)
        if self._sock is None:
            raise ConnectionLost("not connected")
        try:
            self._sock.sendall(raw)
        except OSError as error:
            self._in_flight = 0
            raise ConnectionLost(str(error)) from error
        self._in_flight += 1
        window = max(1, self._core.credits)
        while self._in_flight >= window:
            self._read_ingest_ack()

    def _read_ingest_ack(self) -> None:
        if self._sock is None:
            self._in_flight = 0
            raise ConnectionLost("not connected")
        try:
            reply = read_frame_sock(self._sock)
        except (OSError, socket.timeout) as error:
            self._in_flight = 0
            raise ConnectionLost(str(error)) from error
        if reply is None:
            self._in_flight = 0
            raise ConnectionLost("server closed the connection")
        kind = reply.get("t")
        if kind == "push_ack":
            self._in_flight -= 1
            self._ingest_accepted += int(reply.get("accepted", 0))
            self._core.credits = int(
                reply.get("credits", self._core.credits)
            )
        elif kind == "error":
            self._in_flight = max(0, self._in_flight - 1)
            raise ServeError(reply["code"], reply["message"])
        else:
            self._core.absorb(reply)

    def watermark(
        self, timestamp: int, stream: Optional[str] = None
    ) -> None:
        """Advance the server's event time (fires due windows)."""
        if self._in_flight or self._ingest_buffer:
            self._drain_ingest()
        frame: Dict[str, Any] = {"t": "watermark", "timestamp": timestamp}
        if stream is not None:
            frame["stream"] = stream
        if self._sock is None:
            raise ConnectionLost("not connected")
        try:
            write_frame_sock(self._sock, frame)
        except OSError as error:
            raise ConnectionLost(str(error)) from error

    # -- results -----------------------------------------------------------

    def subscribe(
        self, query_id: str, from_start: bool = True
    ) -> ControlResult:
        """Start streaming a query's results to this client."""
        self._core.subscriptions[query_id] = from_start
        frame = _control_frame(
            "subscribe",
            self._core.next_seq(),
            query_id=query_id,
            from_start=from_start,
        )
        return _decode_reply(self._request(frame))

    def unsubscribe(self, query_id: str) -> ControlResult:
        """Stop streaming a query's results."""
        self._core.subscriptions.pop(query_id, None)
        frame = _control_frame(
            "unsubscribe", self._core.next_seq(), query_id=query_id
        )
        return _decode_reply(self._request(frame))

    def take_results(
        self, query_id: str, wait_ms: int = 0
    ) -> Tuple[List[QueryOutput], int]:
        """Drain streamed results received so far: ``(outputs, shed)``.

        ``wait_ms`` > 0 keeps reading the socket until at least one
        result for ``query_id`` is queued or the wait elapses.
        """
        deadline = time.monotonic() + wait_ms / 1_000.0
        while wait_ms > 0 and not self._core.results.get(query_id):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or self._sock is None:
                break
            self._sock.settimeout(max(remaining, 0.01))
            try:
                frame = read_frame_sock(self._sock)
            except socket.timeout:
                break
            except OSError as error:
                raise ConnectionLost(str(error)) from error
            finally:
                self._sock.settimeout(
                    self._core.retry.ack_timeout_ms / 1_000.0
                )
            if frame is None:
                raise ConnectionLost("server closed the connection")
            self._core.absorb(frame)
        return self._core.take_results(query_id)

    def fetch_results(self, query_id: str) -> List[QueryOutput]:
        """Pull a query's full retained result set (canonical order)."""
        frame = _control_frame(
            "fetch_results", self._core.next_seq(), query_id=query_id
        )
        reply = self._request(frame)
        return [output_from_dict(doc) for doc in reply.get("outputs", [])]

    def take_events(self) -> List[Dict[str, Any]]:
        """Drain out-of-band ``query_event`` notifications."""
        events = list(self._core.events)
        self._core.events.clear()
        return events

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        return self._request({"t": "ping"}).get("t") == "pong"

    def stats(self) -> Dict[str, Any]:
        """The server's live stats block."""
        reply = self._request(_control_frame("stats", self._core.next_seq()))
        return reply.get("stats", {})

    def obs_snapshot(self) -> Dict[str, Any]:
        """The server's telemetry snapshot + recent events."""
        reply = self._request(
            _control_frame("obs_snapshot", self._core.next_seq())
        )
        return {
            "snapshot": reply.get("snapshot", {}),
            "events": reply.get("events", []),
        }

    def chaos_kill_worker(self, shard: int = 0) -> ControlResult:
        """SIGKILL one shard worker (process backend chaos hook)."""
        frame = _control_frame(
            "chaos", self._core.next_seq(), op="kill_worker", shard=shard
        )
        return _decode_reply(self._request(frame))

    def resize(self, workers: int) -> ControlResult:
        """Start a live worker-pool resize (process backend).

        Returns once the migration has begun; the server's ticker
        completes the per-shard restores while ingest keeps flowing.
        The reply's ``raw["migration_active"]`` reports whether shards
        are still pending.
        """
        frame = _control_frame(
            "resize", self._core.next_seq(), workers=workers
        )
        return _decode_reply(self._request(frame))

    def drain(self, checkpoint: Optional[bool] = None) -> ControlResult:
        """Settle all in-flight work server-side (optionally checkpoint)."""
        frame = _control_frame(
            "drain", self._core.next_seq(), checkpoint=checkpoint
        )
        return _decode_reply(self._request(frame))

    def shutdown(self) -> ControlResult:
        """Ask the server to drain, checkpoint, and exit."""
        frame = _control_frame("shutdown", self._core.next_seq())
        return _decode_reply(self._request(frame))


class AsyncServeClient:
    """Asyncio client: background reader + per-query result queues."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str = "client",
        token: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        codec: str = CODEC_BINARY,
        trace_sample_every: int = 0,
    ) -> None:
        self._core = _SessionCore(host, port, client_id, token, retry,
                                  codec=codec)
        self._trace_every = max(0, trace_sample_every)
        self._push_seq = 0
        self.trace_summaries: deque = deque(maxlen=256)
        """Closed wire traces returned on push acks, newest last."""
        self.wire_latencies_ms: List[float] = []
        """End-to-end latency (ms) of every closed wire trace."""
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._replies: Dict[int, asyncio.Future] = {}
        self._untagged: Deque[asyncio.Future] = deque()
        """Futures for un-sequenced exchanges (push_ack/pong), FIFO."""
        self._queues: Dict[str, asyncio.Queue] = {}
        self.shed: Dict[str, int] = {}
        """query_id → results the server reported shedding."""
        self._closed = False

    # -- connection management ---------------------------------------------

    @property
    def reconnects(self) -> int:
        """Times the transport was re-dialled after the first connect."""
        return self._core.reconnects

    @property
    def server_info(self) -> Dict[str, Any]:
        """The server's handshake self-description."""
        return self._core.server_info

    @property
    def codec(self) -> str:
        """The wire codec the server granted (``json``/``binary``)."""
        return self._core.codec

    async def connect(self) -> "AsyncServeClient":
        """Dial, handshake, start the reader, resubscribe."""
        await self._teardown_transport()
        reader, writer = await asyncio.open_connection(
            self._core.host, self._core.port
        )
        write_frame(writer, self._core.hello_frame())
        await writer.drain()
        reply = await read_frame(reader)
        if reply is None:
            writer.close()
            raise ConnectionLost("server closed during handshake")
        if reply.get("t") == "error":
            writer.close()
            raise ServeError(reply["code"], reply["message"])
        self._core.server_info = reply.get("server", {})
        self._core.credits = int(reply.get("credits", 0))
        self._core.adopt_codec(reply)
        self._reader, self._writer = reader, writer
        self._reader_task = asyncio.create_task(self._read_loop(reader))
        for query_id, from_start in list(self._core.subscriptions.items()):
            await self._request(
                _control_frame(
                    "subscribe",
                    self._core.next_seq(),
                    query_id=query_id,
                    from_start=from_start,
                )
            )
        return self

    async def close(self) -> None:
        """Close the client for good."""
        self._closed = True
        await self._teardown_transport()

    async def __aenter__(self) -> "AsyncServeClient":
        """Async context-manager entry: connect."""
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        """Async context-manager exit: close."""
        await self.close()

    async def _teardown_transport(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(ConnectionLost("transport closed"))

    def _fail_waiters(self, error: Exception) -> None:
        for future in list(self._replies.values()):
            if not future.done():
                future.set_exception(error)
        self._replies.clear()
        while self._untagged:
            future = self._untagged.popleft()
            if not future.done():
                future.set_exception(error)

    # -- reader ------------------------------------------------------------

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    raise ConnectionLost("server closed the connection")
                self._route(frame)
        except asyncio.CancelledError:
            raise
        except (ProtocolError, ConnectionError, OSError) as error:
            self._fail_waiters(ConnectionLost(str(error)))

    def _route(self, frame: Dict[str, Any]) -> None:
        kind = frame.get("t")
        if kind in ("ack", "results"):
            future = self._replies.pop(frame.get("seq"), None)
            if future is not None and not future.done():
                future.set_result(frame)
            return
        if kind == "error":
            seq = frame.get("seq")
            future = self._replies.pop(seq, None) if seq is not None else None
            if future is None and self._untagged:
                future = self._untagged.popleft()
            if future is not None and not future.done():
                future.set_exception(
                    ServeError(frame["code"], frame["message"])
                )
            return
        if kind in ("push_ack", "pong"):
            if self._untagged:
                future = self._untagged.popleft()
                if not future.done():
                    future.set_result(frame)
            return
        if kind == "result":
            queue = self._queues.setdefault(
                frame["query_id"], asyncio.Queue()
            )
            decoded = frame.get("_decoded", False)
            for document in frame["outputs"]:
                queue.put_nowait(
                    document if decoded else output_from_dict(document)
                )
            dropped = int(frame.get("dropped", 0))
            if dropped:
                self.shed[frame["query_id"]] = (
                    self.shed.get(frame["query_id"], 0) + dropped
                )
            return
        if kind == "query_event":
            self._core.events.append(frame)

    # -- the retry loop ----------------------------------------------------

    async def _send(
        self, frame: Dict[str, Any], raw: Optional[bytes] = None
    ) -> None:
        if self._writer is None:
            raise ConnectionLost("not connected")
        try:
            if raw is not None:
                self._writer.write(raw)
            else:
                write_frame(self._writer, frame)
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            raise ConnectionLost(str(error)) from error

    async def _exchange_once(
        self, frame: Dict[str, Any], raw: Optional[bytes] = None
    ) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        seq = frame.get("seq")
        if seq is not None:
            self._replies[seq] = future
        else:
            self._untagged.append(future)
        try:
            await self._send(frame, raw)
            return await asyncio.wait_for(
                future, timeout=self._core.retry.ack_timeout_ms / 1_000.0
            )
        except asyncio.TimeoutError as error:
            raise ConnectionLost("ack timeout") from error
        finally:
            if seq is not None:
                self._replies.pop(seq, None)
            elif future in self._untagged:
                self._untagged.remove(future)

    async def _request(
        self, frame: Dict[str, Any], raw: Optional[bytes] = None
    ) -> Dict[str, Any]:
        """Send + await reply with reconnect/backoff/resubmit per policy."""
        policy = self._core.retry
        last: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return await self._exchange_once(frame, raw)
            except ConnectionLost as error:
                last = error
                if self._closed or attempt >= policy.max_attempts:
                    break
                delay_ms = policy.backoff_ms(attempt, self._core.rng)
                await asyncio.sleep(delay_ms / 1_000.0)
                try:
                    self._core.reconnects += 1
                    await self.connect()
                except (OSError, ConnectionLost, ServeError) as redial:
                    last = redial
        raise ConnectionLost(
            f"request {frame.get('t')} failed after "
            f"{policy.max_attempts} attempts: {last}"
        )

    # -- API (mirrors ServeClient) -----------------------------------------

    async def create_query(
        self,
        query: Optional[Query] = None,
        sql: Optional[str] = None,
        at_ms: Optional[int] = None,
        slo_ms: Optional[float] = None,
    ) -> ControlResult:
        """Create one ad-hoc query (a :class:`Query` or SQL text)."""
        if (query is None) == (sql is None):
            raise ValueError("pass exactly one of query= or sql=")
        frame = _control_frame(
            "create_query",
            self._core.next_seq(),
            query=query_to_dict(query) if query is not None else None,
            sql=sql,
            at_ms=at_ms,
            slo_ms=slo_ms,
        )
        return _decode_reply(await self._request(frame))

    async def delete_query(
        self, query_id: str, at_ms: Optional[int] = None
    ) -> ControlResult:
        """Delete one live query."""
        frame = _control_frame(
            "delete_query",
            self._core.next_seq(),
            query_id=query_id,
            at_ms=at_ms,
        )
        return _decode_reply(await self._request(frame))

    async def push(self, stream: str, events: List[Tuple[int, Any]]) -> int:
        """Push one event micro-batch; returns the accepted count.

        Columnar-encoded on binary sessions, with the same JSON
        fallback as :meth:`ServeClient.push`.  ``trace_sample_every``
        stamps every Nth push with a wire trace context, exactly as the
        blocking client does.
        """
        trace: Optional[Tuple[int, int]] = None
        if self._trace_every:
            self._push_seq += 1
            if self._push_seq % self._trace_every == 0:
                trace = (new_trace_id(), time.monotonic_ns())
        raw: Optional[bytes] = None
        if self._core.codec == CODEC_BINARY:
            try:
                raw = encode_push_binary(stream, events, trace=trace)
            except (ProtocolError, struct.error, TypeError,
                    AttributeError, ValueError):
                raw = None
        if raw is not None:
            frame: Dict[str, Any] = {"t": "push"}
        else:
            frame = {
                "t": "push",
                "stream": stream,
                "events": encode_events(events),
            }
            if trace is not None:
                frame["trace"] = {"id": trace[0], "ingest_ns": trace[1]}
        reply = await self._request(frame, raw)
        self._core.credits = int(reply.get("credits", self._core.credits))
        summary = reply.get("trace")
        if summary:
            self.trace_summaries.append(summary)
            e2e_ns = summary.get("e2e_ns")
            if e2e_ns is not None:
                self.wire_latencies_ms.append(e2e_ns / 1e6)
        return int(reply.get("accepted", 0))

    async def watermark(
        self, timestamp: int, stream: Optional[str] = None
    ) -> None:
        """Advance the server's event time (fires due windows)."""
        frame: Dict[str, Any] = {"t": "watermark", "timestamp": timestamp}
        if stream is not None:
            frame["stream"] = stream
        await self._send(frame)

    async def subscribe(
        self, query_id: str, from_start: bool = True
    ) -> ControlResult:
        """Start streaming a query's results to this client."""
        self._core.subscriptions[query_id] = from_start
        self._queues.setdefault(query_id, asyncio.Queue())
        frame = _control_frame(
            "subscribe",
            self._core.next_seq(),
            query_id=query_id,
            from_start=from_start,
        )
        return _decode_reply(await self._request(frame))

    async def unsubscribe(self, query_id: str) -> ControlResult:
        """Stop streaming a query's results."""
        self._core.subscriptions.pop(query_id, None)
        frame = _control_frame(
            "unsubscribe", self._core.next_seq(), query_id=query_id
        )
        return _decode_reply(await self._request(frame))

    async def next_result(
        self, query_id: str, timeout_s: Optional[float] = None
    ) -> Optional[QueryOutput]:
        """The next streamed result for a query (None on timeout)."""
        queue = self._queues.setdefault(query_id, asyncio.Queue())
        try:
            if timeout_s is None:
                return await queue.get()
            return await asyncio.wait_for(queue.get(), timeout=timeout_s)
        except asyncio.TimeoutError:
            return None

    def pending_results(self, query_id: str) -> int:
        """Streamed results queued locally for a query."""
        queue = self._queues.get(query_id)
        return queue.qsize() if queue is not None else 0

    async def fetch_results(self, query_id: str) -> List[QueryOutput]:
        """Pull a query's full retained result set (canonical order)."""
        frame = _control_frame(
            "fetch_results", self._core.next_seq(), query_id=query_id
        )
        reply = await self._request(frame)
        return [output_from_dict(doc) for doc in reply.get("outputs", [])]

    def take_events(self) -> List[Dict[str, Any]]:
        """Drain out-of-band ``query_event`` notifications."""
        events = list(self._core.events)
        self._core.events.clear()
        return events

    async def ping(self) -> bool:
        """Round-trip liveness probe."""
        return (await self._request({"t": "ping"})).get("t") == "pong"

    async def stats(self) -> Dict[str, Any]:
        """The server's live stats block."""
        reply = await self._request(
            _control_frame("stats", self._core.next_seq())
        )
        return reply.get("stats", {})

    async def obs_snapshot(self) -> Dict[str, Any]:
        """The server's telemetry snapshot + recent events."""
        reply = await self._request(
            _control_frame("obs_snapshot", self._core.next_seq())
        )
        return {
            "snapshot": reply.get("snapshot", {}),
            "events": reply.get("events", []),
        }

    async def chaos_kill_worker(self, shard: int = 0) -> ControlResult:
        """SIGKILL one shard worker (process backend chaos hook)."""
        frame = _control_frame(
            "chaos", self._core.next_seq(), op="kill_worker", shard=shard
        )
        return _decode_reply(await self._request(frame))

    async def resize(self, workers: int) -> ControlResult:
        """Start a live worker-pool resize (process backend)."""
        frame = _control_frame(
            "resize", self._core.next_seq(), workers=workers
        )
        return _decode_reply(await self._request(frame))

    async def drain(self, checkpoint: Optional[bool] = None) -> ControlResult:
        """Settle all in-flight work server-side (optionally checkpoint)."""
        frame = _control_frame(
            "drain", self._core.next_seq(), checkpoint=checkpoint
        )
        return _decode_reply(await self._request(frame))

    async def shutdown(self) -> ControlResult:
        """Ask the server to drain, checkpoint, and exit."""
        frame = _control_frame("shutdown", self._core.next_seq())
        return _decode_reply(await self._request(frame))
