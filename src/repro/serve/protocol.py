"""The wire protocol of the serving layer: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object with a ``t`` (type) field.
JSON keeps the protocol debuggable with ``nc``/``jq`` and — because
Python's ``json`` roundtrips ints and floats exactly — preserves the
byte-equality guarantees the integration tests assert; the codec seam
(:func:`encode_frame` / :func:`decode_frame`) is the single place a
binary encoding (msgpack) would plug in.

Frame catalogue (client → server unless noted)::

    hello         {t, client_id, token?, protocol}
    hello_ack     {t, session_id, credits, server{...}}          (reply)
    create_query  {t, seq, query? | sql?, at_ms?}
    delete_query  {t, seq, query_id, at_ms?}
    ack           {t, seq, status, ...}                          (reply)
    push          {t, stream, events: [[ts, key, [f0..f4]], ..]}
    push_ack      {t, credits, accepted}                         (reply)
    watermark     {t, timestamp, stream?}
    subscribe     {t, seq, query_id, from_start?}
    unsubscribe   {t, seq, query_id}
    result        {t, query_id, outputs, dropped}               (pushed)
    query_event   {t, event, query_id, sequence}                (pushed)
    fetch_results {t, seq, query_id}
    results       {t, seq, query_id, outputs}                    (reply)
    stats         {t, seq}
    obs_snapshot  {t, seq}
    chaos         {t, seq, op, shard?}
    resize        {t, seq, workers}
    drain         {t, seq, checkpoint?}
    shutdown      {t, seq}
    ping          {t} / pong {t}                            (both ways)
    error         {t, seq?, code, message}                       (reply)

Control frames carry a client-chosen ``seq`` that the server echoes in
its reply and uses for idempotent deduplication: re-sending a frame
with an already-applied ``seq`` (after a reconnect) replays the cached
response instead of re-applying the command.

Malformed input — oversized length prefixes, undecodable bytes, frames
missing required fields — raises :class:`ProtocolError`, which servers
answer with an ``error`` frame on the *same* connection; a framing
error never kills the session (the length prefix keeps the stream in
sync even when a payload is garbage).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

PROTOCOL_VERSION = 1
MAX_FRAME_BYTES = 8 * 1024 * 1024
"""Upper bound on one frame's JSON payload (8 MiB)."""

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


class ProtocolError(Exception):
    """A malformed or invalid frame (answered, never fatal)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


# Required fields per frame type (value = field must be present).
FRAME_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "hello": ("client_id",),
    "hello_ack": ("session_id", "credits"),
    "create_query": ("seq",),
    "delete_query": ("seq", "query_id"),
    "ack": ("seq", "status"),
    "push": ("stream", "events"),
    "push_ack": ("credits", "accepted"),
    "watermark": ("timestamp",),
    "subscribe": ("seq", "query_id"),
    "unsubscribe": ("seq", "query_id"),
    "result": ("query_id", "outputs"),
    "query_event": ("event", "query_id"),
    "fetch_results": ("seq", "query_id"),
    "results": ("seq", "query_id", "outputs"),
    "stats": ("seq",),
    "obs_snapshot": ("seq",),
    "chaos": ("seq", "op"),
    "resize": ("seq", "workers"),
    "drain": ("seq",),
    "shutdown": ("seq",),
    "ping": (),
    "pong": (),
    "error": ("code", "message"),
}


def validate_frame(frame: Any) -> Dict[str, Any]:
    """Check the decoded object is a known frame with required fields."""
    if not isinstance(frame, dict):
        raise ProtocolError("bad_frame", "frame payload is not an object")
    kind = frame.get("t")
    required = FRAME_SCHEMAS.get(kind)
    if required is None:
        raise ProtocolError("unknown_frame", f"unknown frame type {kind!r}")
    missing = [name for name in required if name not in frame]
    if missing:
        raise ProtocolError(
            "missing_field",
            f"frame {kind!r} is missing field(s): {', '.join(missing)}",
        )
    return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise one frame: length prefix + compact JSON payload."""
    payload = json.dumps(
        frame, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame_too_large",
            f"encoded frame is {len(payload)} bytes "
            f"(limit {MAX_FRAME_BYTES})",
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse and validate one frame payload (without the prefix)."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad_json", f"undecodable frame: {error}") from None
    return validate_frame(frame)


def error_frame(
    code: str, message: str, seq: Optional[int] = None
) -> Dict[str, Any]:
    """Build the standard ``error`` reply for a protocol violation."""
    frame: Dict[str, Any] = {"t": "error", "code": code, "message": message}
    if seq is not None:
        frame["seq"] = seq
    return frame


# -- asyncio transport ---------------------------------------------------------------

async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF.

    An oversized declared length is drained (the prefix keeps the
    stream in sync) and reported as a :class:`ProtocolError`, so the
    caller can answer with an ``error`` frame and keep the connection.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        remaining = length
        while remaining:
            chunk = await reader.read(min(remaining, 1 << 16))
            if not chunk:
                return None
            remaining -= len(chunk)
        raise ProtocolError(
            "frame_too_large",
            f"declared frame length {length} exceeds limit {max_bytes}",
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return decode_frame(payload)


def write_frame(writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
    """Queue one frame on an asyncio stream (caller drains)."""
    writer.write(encode_frame(frame))


# -- blocking-socket transport (sync client) -----------------------------------------

def recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes from a blocking socket.

    Raises :class:`ConnectionError` on EOF mid-read so callers share
    one reconnect path for every flavour of dropped connection.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Blocking-socket counterpart of :func:`read_frame`."""
    (length,) = _HEADER.unpack(recv_exactly(sock, HEADER_BYTES))
    if length > max_bytes:
        recv_exactly(sock, length)
        raise ProtocolError(
            "frame_too_large",
            f"declared frame length {length} exceeds limit {max_bytes}",
        )
    return decode_frame(recv_exactly(sock, length))


def write_frame_sock(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Blocking-socket counterpart of :func:`write_frame`."""
    sock.sendall(encode_frame(frame))


# -- data-plane payload helpers ------------------------------------------------------

def encode_events(events: List[Tuple[int, Any]]) -> List[list]:
    """Pack ``(timestamp, DataTuple)`` pairs into the push-frame form.

    The wire shape is ``[timestamp, key, [f0..f4]]`` per event — flat
    lists rather than tagged objects, because ingestion is the
    high-volume path and the five-field workload tuple is the only
    payload the engine accepts.
    """
    return [
        [timestamp, value.key, list(value.fields)]
        for timestamp, value in events
    ]


def decode_events(rows: List[list]) -> List[Tuple[int, Any]]:
    """Inverse of :func:`encode_events`; validates row shape."""
    from repro.workloads.datagen import DataTuple

    events: List[Tuple[int, Any]] = []
    try:
        for row in rows:
            timestamp, key, fields = row
            events.append(
                (int(timestamp), DataTuple(key=key, fields=tuple(fields)))
            )
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            "bad_event", f"malformed push event row: {error}"
        ) from None
    return events
