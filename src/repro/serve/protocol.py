"""The wire protocol of the serving layer: length-prefixed frames.

One frame is a 4-byte big-endian header followed by the payload.  The
header's low 31 bits are the payload length; the high bit selects the
payload codec:

* **clear** — UTF-8 JSON encoding a single object with a ``t`` (type)
  field.  JSON keeps the protocol debuggable with ``nc``/``jq`` and —
  because Python's ``json`` roundtrips ints and floats exactly —
  preserves the byte-equality guarantees the integration tests assert.
* **set** — a struct-packed *binary columnar* payload, used only for
  the two high-volume data-plane frames (``push`` and ``result``).
  Events travel as parallel little-endian int64 columns (``ts``,
  ``key``, ``f0..f4``) rather than per-event JSON lists, and are
  decoded zero-copy via ``memoryview.cast`` on little-endian hosts.
  See :func:`encode_push_binary` / :func:`encode_result_binary` for
  the exact layouts.

Because ``MAX_FRAME_BYTES`` is far below 2**31, a JSON frame can never
set the high bit, so both codecs interleave safely on one connection.
Which codec a peer *sends* is negotiated in the handshake: the client
offers ``codecs`` in its ``hello`` and the server picks one, echoing
``codec`` in the ``hello_ack``.  Old peers simply omit the fields and
everything stays JSON.  Decoding is negotiation-independent — a binary
frame is identified by its header bit alone.

Frame catalogue (client → server unless noted)::

    hello         {t, client_id, token?, protocol}
    hello_ack     {t, session_id, credits, server{...}}          (reply)
    create_query  {t, seq, query? | sql?, at_ms?}
    delete_query  {t, seq, query_id, at_ms?}
    ack           {t, seq, status, ...}                          (reply)
    push          {t, stream, events: [[ts, key, [f0..f4]], ..]}
    push_ack      {t, credits, accepted}                         (reply)
    watermark     {t, timestamp, stream?}
    subscribe     {t, seq, query_id, from_start?}
    unsubscribe   {t, seq, query_id}
    result        {t, query_id, outputs, dropped}               (pushed)
    query_event   {t, event, query_id, sequence}                (pushed)
    fetch_results {t, seq, query_id}
    results       {t, seq, query_id, outputs}                    (reply)
    stats         {t, seq}
    obs_snapshot  {t, seq}
    chaos         {t, seq, op, shard?}
    resize        {t, seq, workers}
    drain         {t, seq, checkpoint?}
    shutdown      {t, seq}
    ping          {t} / pong {t}                            (both ways)
    error         {t, seq?, code, message}                       (reply)

Control frames carry a client-chosen ``seq`` that the server echoes in
its reply and uses for idempotent deduplication: re-sending a frame
with an already-applied ``seq`` (after a reconnect) replays the cached
response instead of re-applying the command.

Malformed input — oversized length prefixes, undecodable bytes, frames
missing required fields — raises :class:`ProtocolError`, which servers
answer with an ``error`` frame on the *same* connection; a framing
error never kills the session (the length prefix keeps the stream in
sync even when a payload is garbage).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import sys
from typing import Any, Dict, List, Optional, Tuple

PROTOCOL_VERSION = 1
MAX_FRAME_BYTES = 8 * 1024 * 1024
"""Upper bound on one frame's payload (8 MiB, either codec)."""

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

CODEC_JSON = "json"
CODEC_BINARY = "binary"
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)
"""Codecs this build speaks, in server preference order."""

BINARY_FLAG = 0x8000_0000
"""High header bit: the payload is binary columnar, not JSON."""
_LENGTH_MASK = 0x7FFF_FFFF


class ProtocolError(Exception):
    """A malformed or invalid frame (answered, never fatal)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


# Required fields per frame type (value = field must be present).
FRAME_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "hello": ("client_id",),
    "hello_ack": ("session_id", "credits"),
    "create_query": ("seq",),
    "delete_query": ("seq", "query_id"),
    "ack": ("seq", "status"),
    "push": ("stream", "events"),
    "push_ack": ("credits", "accepted"),
    "watermark": ("timestamp",),
    "subscribe": ("seq", "query_id"),
    "unsubscribe": ("seq", "query_id"),
    "result": ("query_id", "outputs"),
    "query_event": ("event", "query_id"),
    "fetch_results": ("seq", "query_id"),
    "results": ("seq", "query_id", "outputs"),
    "stats": ("seq",),
    "obs_snapshot": ("seq",),
    "chaos": ("seq", "op"),
    "resize": ("seq", "workers"),
    "drain": ("seq",),
    "shutdown": ("seq",),
    "ping": (),
    "pong": (),
    "error": ("code", "message"),
}


def validate_frame(frame: Any) -> Dict[str, Any]:
    """Check the decoded object is a known frame with required fields."""
    if not isinstance(frame, dict):
        raise ProtocolError("bad_frame", "frame payload is not an object")
    kind = frame.get("t")
    required = FRAME_SCHEMAS.get(kind)
    if required is None:
        raise ProtocolError("unknown_frame", f"unknown frame type {kind!r}")
    missing = [name for name in required if name not in frame]
    if missing:
        raise ProtocolError(
            "missing_field",
            f"frame {kind!r} is missing field(s): {', '.join(missing)}",
        )
    return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise one frame: length prefix + compact JSON payload."""
    payload = json.dumps(
        frame, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame_too_large",
            f"encoded frame is {len(payload)} bytes "
            f"(limit {MAX_FRAME_BYTES})",
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse and validate one frame payload (without the prefix)."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad_json", f"undecodable frame: {error}") from None
    return validate_frame(frame)


def error_frame(
    code: str, message: str, seq: Optional[int] = None
) -> Dict[str, Any]:
    """Build the standard ``error`` reply for a protocol violation."""
    frame: Dict[str, Any] = {"t": "error", "code": code, "message": message}
    if seq is not None:
        frame["seq"] = seq
    return frame


# -- asyncio transport ---------------------------------------------------------------

async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF.

    An oversized declared length is drained (the prefix keeps the
    stream in sync) and reported as a :class:`ProtocolError`, so the
    caller can answer with an ``error`` frame and keep the connection.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (raw,) = _HEADER.unpack(header)
    binary = bool(raw & BINARY_FLAG)
    length = raw & _LENGTH_MASK
    if length > max_bytes:
        remaining = length
        while remaining:
            chunk = await reader.read(min(remaining, 1 << 16))
            if not chunk:
                return None
            remaining -= len(chunk)
        raise ProtocolError(
            "frame_too_large",
            f"declared frame length {length} exceeds limit {max_bytes}",
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    if binary:
        return decode_binary_payload(payload)
    return decode_frame(payload)


def write_frame(writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
    """Queue one frame on an asyncio stream (caller drains)."""
    writer.write(encode_frame(frame))


# -- blocking-socket transport (sync client) -----------------------------------------

def recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes from a blocking socket.

    Raises :class:`ConnectionError` on EOF mid-read so callers share
    one reconnect path for every flavour of dropped connection.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Blocking-socket counterpart of :func:`read_frame`."""
    (raw,) = _HEADER.unpack(recv_exactly(sock, HEADER_BYTES))
    binary = bool(raw & BINARY_FLAG)
    length = raw & _LENGTH_MASK
    if length > max_bytes:
        recv_exactly(sock, length)
        raise ProtocolError(
            "frame_too_large",
            f"declared frame length {length} exceeds limit {max_bytes}",
        )
    payload = recv_exactly(sock, length)
    if binary:
        return decode_binary_payload(payload)
    return decode_frame(payload)


def write_frame_sock(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Blocking-socket counterpart of :func:`write_frame`."""
    sock.sendall(encode_frame(frame))


# -- data-plane payload helpers ------------------------------------------------------

def encode_events(events: List[Tuple[int, Any]]) -> List[list]:
    """Pack ``(timestamp, DataTuple)`` pairs into the push-frame form.

    The wire shape is ``[timestamp, key, [f0..f4]]`` per event — flat
    lists rather than tagged objects, because ingestion is the
    high-volume path and the five-field workload tuple is the only
    payload the engine accepts.
    """
    return [
        [timestamp, value.key, list(value.fields)]
        for timestamp, value in events
    ]


def decode_events(rows: List[list]) -> List[Tuple[int, Any]]:
    """Inverse of :func:`encode_events`; validates row shape."""
    from repro.workloads.datagen import DataTuple

    events: List[Tuple[int, Any]] = []
    try:
        for row in rows:
            timestamp, key, fields = row
            events.append(
                (int(timestamp), DataTuple(key=key, fields=tuple(fields)))
            )
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            "bad_event", f"malformed push event row: {error}"
        ) from None
    return events


# -- binary columnar codec -----------------------------------------------------------
#
# Binary payload layouts (all multi-byte header fields big-endian, all
# column data little-endian int64):
#
#   push:    u8 kind=1 | u16 stream_len | stream utf-8
#            | u32 n | ts[n] | key[n] | f0[n] .. f4[n]
#   result:  u8 kind=2 | u16 query_id_len | query_id utf-8
#            | u32 dropped | u8 value_kind | u8 arity | u32 n | columns
#   push (traced):
#            u8 kind=3 | u64 trace_id | u64 ingest_ns
#            | <same body as kind 1 after the kind byte>
#
# Kind 3 exists so trace-stamped pushes ride a *separate* frame kind:
# untraced pushes stay byte-identical to the kind-1 layout (the wire
# byte-equality tests pin that), and old peers reject kind 3 cleanly as
# an unknown frame rather than mis-parsing 16 extra header bytes.
#
# ``value_kind`` selects the column set of a result frame:
#   0 DataTuple           ts | key | f0..f4
#   1 AggregationResult   ts | key | win_start | win_end | value
#   2 JoinedTuple         ts | key | join_ts
#                         | per part (arity×): pkey | pf0..pf4
#
# A result batch that mixes value kinds, carries non-int payloads, or
# overflows int64 is *not* expressible here — the sender falls back to
# a JSON ``result`` frame for that batch, which is always legal.

_BIN_PUSH = 1
_BIN_RESULT = 2
_BIN_PUSH_TRACED = 3

_VK_TUPLE = 0
_VK_AGG = 1
_VK_JOINED = 2

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_TRACE_HDR = struct.Struct(">QQ")
_LITTLE_ENDIAN_HOST = sys.byteorder == "little"


def negotiate_codec(offered: Any, supported: Tuple[str, ...] = SUPPORTED_CODECS) -> str:
    """Server-side codec pick: first offered codec we support.

    ``offered`` is the client hello's ``codecs`` list (absent or
    malformed → JSON, the compatibility default).
    """
    if isinstance(offered, (list, tuple)):
        for codec in offered:
            if codec in supported:
                return str(codec)
    return CODEC_JSON


def _pack_i64(values: List[int]) -> bytes:
    """One little-endian int64 column (raises ``struct.error`` on overflow)."""
    return struct.pack(f"<{len(values)}q", *values)


def _frame_bytes(payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame_too_large",
            f"encoded binary frame is {len(payload)} bytes "
            f"(limit {MAX_FRAME_BYTES})",
        )
    return _HEADER.pack(BINARY_FLAG | len(payload)) + payload


def encode_push_binary(
    stream: str,
    events: List[Tuple[int, Any]],
    trace: Optional[Tuple[int, int]] = None,
) -> bytes:
    """Encode one push frame (header included) as binary columns.

    ``trace`` is an optional ``(trace_id, ingest_ns)`` wire trace
    context; with it the frame uses kind 3 (trace header + identical
    body), without it the kind-1 layout is byte-for-byte unchanged.

    Raises ``struct.error`` / ``TypeError`` / ``AttributeError`` when
    the events don't fit the columnar contract (non-int values, int64
    overflow, wrong arity) — callers catch those and fall back to JSON.
    """
    name = stream.encode("utf-8")
    n = len(events)
    if n:
        # Transpose in C: one zip for (ts, value) pairs, one for the
        # field columns.  strict=True keeps the old per-row arity check
        # (a 4-field payload must fall back to JSON, not truncate).
        ts, values = zip(*events)
        f0, f1, f2, f3, f4 = zip(
            *(value.fields for value in values), strict=True
        )
        keys = tuple(value.key for value in values)
        cols = (ts, keys, f0, f1, f2, f3, f4)
    else:
        cols = ((),) * 7
    column = struct.Struct(f"<{n}q").pack
    if trace is None:
        header = (struct.pack(">BH", _BIN_PUSH, len(name)),)
    else:
        header = (
            bytes((_BIN_PUSH_TRACED,)),
            _TRACE_HDR.pack(trace[0], trace[1]),
            _U16.pack(len(name)),
        )
    payload = b"".join(
        header + (name, _U32.pack(n)) + tuple(column(*col) for col in cols)
    )
    return _frame_bytes(payload)


def encode_result_binary(
    query_id: str, outputs: List[Any], dropped: int = 0
) -> Optional[bytes]:
    """Encode one ``result`` frame (header included) as binary columns.

    Returns ``None`` when the batch is not expressible in columnar form
    (mixed value kinds, non-int payloads, int64 overflow) — the caller
    then ships the batch as a JSON frame instead.
    """
    try:
        return _encode_result_binary(query_id, outputs, dropped)
    except (struct.error, TypeError, AttributeError, ValueError):
        return None


def _encode_result_binary(
    query_id: str, outputs: List[Any], dropped: int
) -> Optional[bytes]:
    from repro.core.shared_aggregation import AggregationResult
    from repro.core.shared_join import JoinedTuple
    from repro.workloads.datagen import DataTuple

    qid = query_id.encode("utf-8")
    n = len(outputs)
    ts = [output.timestamp for output in outputs]
    arity = 0
    if n == 0:
        value_kind = _VK_TUPLE
        columns: List[List[int]] = []
    else:
        first = type(outputs[0].value)
        if any(type(output.value) is not first for output in outputs):
            return None
        if first is DataTuple:
            value_kind = _VK_TUPLE
            columns = [[output.value.key for output in outputs]]
            columns += [
                [output.value.fields[i] for output in outputs]
                for i in range(5)
            ]
        elif first is AggregationResult:
            value_kind = _VK_AGG
            values = [output.value.value for output in outputs]
            if any(type(value) is not int for value in values):
                return None
            columns = [
                [output.value.key for output in outputs],
                [output.value.window.start for output in outputs],
                [output.value.window.end for output in outputs],
                values,
            ]
        elif first is JoinedTuple:
            value_kind = _VK_JOINED
            arity = len(outputs[0].value.parts)
            if arity == 0 or arity > 255:
                return None
            if any(len(output.value.parts) != arity for output in outputs):
                return None
            if any(
                type(part) is not DataTuple
                for output in outputs
                for part in output.value.parts
            ):
                return None
            columns = [
                [output.value.key for output in outputs],
                [output.value.timestamp for output in outputs],
            ]
            for p in range(arity):
                columns.append(
                    [output.value.parts[p].key for output in outputs]
                )
                columns += [
                    [output.value.parts[p].fields[i] for output in outputs]
                    for i in range(5)
                ]
        else:
            return None
    payload = b"".join(
        [
            struct.pack(">BH", _BIN_RESULT, len(qid)),
            qid,
            _U32.pack(dropped),
            struct.pack(">BB", value_kind, arity),
            _U32.pack(n),
            _pack_i64(ts),
        ]
        + [_pack_i64(col) for col in columns]
    )
    return _frame_bytes(payload)


def _read_i64_column(view: memoryview, offset: int, count: int):
    """One int64 column from ``view`` — zero-copy on little-endian hosts."""
    end = offset + 8 * count
    if end > len(view):
        raise ProtocolError("bad_binary", "binary frame truncated mid-column")
    column = view[offset:end]
    if _LITTLE_ENDIAN_HOST:
        return column.cast("q"), end
    return struct.unpack(f"<{count}q", column), end


def _read_name(view: memoryview, offset: int) -> Tuple[str, int]:
    if offset + 2 > len(view):
        raise ProtocolError("bad_binary", "binary frame truncated in header")
    (length,) = _U16.unpack_from(view, offset)
    offset += 2
    if offset + length > len(view):
        raise ProtocolError("bad_binary", "binary frame truncated in name")
    try:
        name = bytes(view[offset : offset + length]).decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(
            "bad_binary", f"undecodable name in binary frame: {error}"
        ) from None
    return name, offset + length


def _read_u32(view: memoryview, offset: int) -> Tuple[int, int]:
    if offset + 4 > len(view):
        raise ProtocolError("bad_binary", "binary frame truncated in header")
    (value,) = _U32.unpack_from(view, offset)
    return value, offset + 4


def decode_binary_payload(payload: bytes) -> Dict[str, Any]:
    """Decode one binary payload into its frame-dict equivalent.

    The returned frame carries already-decoded payload objects — a
    *columnar* :class:`~repro.minispe.record.RecordBatch` under
    ``batch`` for ``push`` (columns aliasing the frame buffer, fed
    straight to :meth:`AStreamEngine.push_batch`; row objects
    materialise lazily, and columnar-aware operators may never build
    them), :class:`~repro.core.router.QueryOutput` objects for
    ``result`` — and is marked ``_decoded`` so handlers skip the JSON
    payload codec.
    """
    view = memoryview(payload)
    if len(view) < 1:
        raise ProtocolError("bad_binary", "empty binary frame")
    kind = view[0]
    if kind == _BIN_PUSH:
        return _decode_push_binary(view)
    if kind == _BIN_RESULT:
        return _decode_result_binary(view)
    if kind == _BIN_PUSH_TRACED:
        return _decode_push_binary(view, traced=True)
    raise ProtocolError("bad_binary", f"unknown binary frame kind {kind}")


_DATA_TUPLE_BUILDER = None
"""Lazily-built ``(key, fields) -> DataTuple`` row materialiser shared
by every decoded columnar batch (closure over the workload type)."""


def _tuple_builder():
    from repro.workloads.datagen import DataTuple

    new = object.__new__
    set_attr = object.__setattr__

    def build(key, fields):
        # The wire layout already guarantees the arity that the frozen
        # dataclass __post_init__ would re-check, so construction
        # bypasses __init__ entirely (it is the decode hot path's
        # dominant cost otherwise).
        value = new(DataTuple)
        set_attr(value, "key", key)
        set_attr(value, "fields", fields)
        return value

    return build


def _decode_push_binary(
    view: memoryview, traced: bool = False
) -> Dict[str, Any]:
    from repro.minispe.record import RecordBatch

    global _DATA_TUPLE_BUILDER

    trace = None
    offset = 1
    if traced:
        if len(view) < 1 + _TRACE_HDR.size:
            raise ProtocolError(
                "bad_binary", "traced push frame truncated in trace header"
            )
        trace = _TRACE_HDR.unpack_from(view, 1)
        offset = 1 + _TRACE_HDR.size
    stream, offset = _read_name(view, offset)
    count, offset = _read_u32(view, offset)
    if len(view) != offset + 7 * 8 * count:
        raise ProtocolError(
            "bad_binary",
            f"push frame length {len(view)} does not match "
            f"{count} declared events",
        )
    ts, offset = _read_i64_column(view, offset, count)
    keys, offset = _read_i64_column(view, offset, count)
    fields = []
    for _ in range(5):
        column, offset = _read_i64_column(view, offset, count)
        fields.append(column)
    builder = _DATA_TUPLE_BUILDER
    if builder is None:
        builder = _DATA_TUPLE_BUILDER = _tuple_builder()
    # Zero-copy hand-off: the columns alias the frame buffer and ride
    # into the engine as a columnar RecordBatch — rows materialise only
    # where an operator actually needs them as objects.
    batch = RecordBatch.from_columns(ts, keys, fields, builder)
    frame = {"t": "push", "stream": stream, "batch": batch,
             "_decoded": True}
    if trace is not None:
        batch.trace = trace
        frame["trace"] = {"id": trace[0], "ingest_ns": trace[1]}
    return frame


def _decode_result_binary(view: memoryview) -> Dict[str, Any]:
    from repro.core.router import QueryOutput
    from repro.core.shared_aggregation import AggregationResult
    from repro.core.shared_join import JoinedTuple
    from repro.minispe.windows import Window
    from repro.workloads.datagen import DataTuple

    query_id, offset = _read_name(view, 1)
    dropped, offset = _read_u32(view, offset)
    if offset + 2 > len(view):
        raise ProtocolError("bad_binary", "binary frame truncated in header")
    value_kind = view[offset]
    arity = view[offset + 1]
    offset += 2
    count, offset = _read_u32(view, offset)
    if value_kind == _VK_TUPLE:
        column_count = 7
    elif value_kind == _VK_AGG:
        column_count = 5
    elif value_kind == _VK_JOINED:
        column_count = 3 + 6 * arity
    else:
        raise ProtocolError(
            "bad_binary", f"unknown result value kind {value_kind}"
        )
    if len(view) != offset + column_count * 8 * count:
        raise ProtocolError(
            "bad_binary",
            f"result frame length {len(view)} does not match "
            f"{count} declared outputs",
        )
    ts, offset = _read_i64_column(view, offset, count)
    outputs: List[Any] = []
    if value_kind == _VK_TUPLE:
        keys, offset = _read_i64_column(view, offset, count)
        fields = []
        for _ in range(5):
            column, offset = _read_i64_column(view, offset, count)
            fields.append(column)
        f0, f1, f2, f3, f4 = fields
        outputs = [
            QueryOutput(
                timestamp=ts[i],
                value=DataTuple(
                    key=keys[i],
                    fields=(f0[i], f1[i], f2[i], f3[i], f4[i]),
                ),
            )
            for i in range(count)
        ]
    elif value_kind == _VK_AGG:
        keys, offset = _read_i64_column(view, offset, count)
        starts, offset = _read_i64_column(view, offset, count)
        ends, offset = _read_i64_column(view, offset, count)
        values, offset = _read_i64_column(view, offset, count)
        outputs = [
            QueryOutput(
                timestamp=ts[i],
                value=AggregationResult(
                    key=keys[i],
                    window=Window(starts[i], ends[i]),
                    value=values[i],
                ),
            )
            for i in range(count)
        ]
    else:
        keys, offset = _read_i64_column(view, offset, count)
        join_ts, offset = _read_i64_column(view, offset, count)
        part_columns = []
        for _ in range(arity):
            pkey, offset = _read_i64_column(view, offset, count)
            pfields = []
            for _ in range(5):
                column, offset = _read_i64_column(view, offset, count)
                pfields.append(column)
            part_columns.append((pkey, pfields))
        outputs = [
            QueryOutput(
                timestamp=ts[i],
                value=JoinedTuple(
                    key=keys[i],
                    parts=tuple(
                        DataTuple(
                            key=pkey[i],
                            fields=(pf[0][i], pf[1][i], pf[2][i],
                                    pf[3][i], pf[4][i]),
                        )
                        for pkey, pf in part_columns
                    ),
                    timestamp=join_ts[i],
                ),
            )
            for i in range(count)
        ]
    return {
        "t": "result",
        "query_id": query_id,
        "outputs": outputs,
        "dropped": dropped,
        "_decoded": True,
    }
