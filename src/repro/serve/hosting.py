"""Run an :class:`AStreamServer` on a background event-loop thread.

The server is asyncio-native, but benchmarks, examples, and tests want
to drive it from plain blocking code with :class:`ServeClient`.
:class:`ServerThread` owns a private event loop on a daemon thread,
boots the server there, and exposes just enough control surface —
``port``, ``run(coro)`` for loop-side calls, ``stop()``/``join()`` —
to host a server inside any synchronous program::

    with ServerThread(ServeConfig(backend="process")) as host:
        client = ServeClient("127.0.0.1", host.port)
        ...
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Coroutine, Optional

from repro.serve.server import AStreamServer, ServeConfig


class ServerThread:
    """One server hosted on a dedicated event-loop thread."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        start_timeout_s: float = 30.0,
    ) -> None:
        self.config = config or ServeConfig()
        self.server = AStreamServer(self.config)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="astream-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(start_timeout_s):
            raise RuntimeError("server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            )

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            try:
                await self.server.start()
            except BaseException as error:  # surface to the creator
                self._startup_error = error
                raise
            finally:
                self._ready.set()
            await self.server.serve_forever()

        try:
            self._loop.run_until_complete(boot())
        except Exception:
            pass
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        """The server's bound frame-protocol port."""
        return self.server.port

    def run(self, coro: Coroutine) -> Any:
        """Run a coroutine on the server's loop (thread-safe), await it."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(60)

    def stop(self) -> None:
        """Gracefully stop the server and wait for the thread to exit."""
        if self._thread.is_alive():
            try:
                self.run(self.server.stop())
            except Exception:
                pass
        self.join(10)

    def join(self, timeout_s: float = 10.0) -> None:
        """Wait for the hosting thread to finish."""
        self._thread.join(timeout_s)

    @property
    def is_alive(self) -> bool:
        """True while the hosting thread is running."""
        return self._thread.is_alive()

    def __enter__(self) -> "ServerThread":
        """Context-manager entry: the server is already running."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: stop the server."""
        self.stop()
