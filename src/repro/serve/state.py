"""Server-side tenant state: sessions, idempotency, ingest credits.

A *session* is the durable identity of one client (``client_id``),
surviving reconnects: its idempotency cache (applied control sequence
numbers and their cached replies), its owned queries, and its live
subscriptions all key off the session, not the TCP connection.  That is
what makes the client SDK's retry loop safe — after a reconnect it
re-sends unacknowledged control frames verbatim, and the server replays
the cached reply for any it had already applied instead of creating a
duplicate query.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

DEFAULT_APPLIED_CACHE = 4_096
"""Per-session cap on remembered (seq → reply) idempotency entries."""

DEFAULT_INGEST_CREDITS = 64
"""Push frames a client may have in flight before awaiting a
``push_ack`` — the credit scheme mirroring the worker pool's
:data:`repro.minispe.parallel.DEFAULT_MAX_IN_FLIGHT` backpressure."""


@dataclass
class SessionState:
    """One client's durable state (survives reconnects)."""

    client_id: str
    session_id: str
    applied_cache: int = DEFAULT_APPLIED_CACHE
    applied: "OrderedDict[int, Dict[str, Any]]" = field(
        default_factory=OrderedDict
    )
    """Control ``seq`` → cached reply frame, for idempotent replay."""
    owned_queries: Dict[str, str] = field(default_factory=dict)
    """query_id → lifecycle ("pending" | "live" | "stopped")."""
    subscriptions: Dict[str, Any] = field(default_factory=dict)
    """query_id → live :class:`~repro.serve.subscriptions.Subscription`."""
    credits: int = DEFAULT_INGEST_CREDITS
    connected: bool = True
    codec: str = "json"
    """Wire codec negotiated at the last handshake (``json``/``binary``);
    governs how ``result`` frames are encoded for this session."""
    frames_in: int = 0
    tuples_in: int = 0

    def remember(self, seq: int, reply: Dict[str, Any]) -> None:
        """Cache one applied control frame's reply for replay."""
        self.applied[seq] = reply
        while len(self.applied) > self.applied_cache:
            self.applied.popitem(last=False)

    def replay(self, seq: int) -> Optional[Dict[str, Any]]:
        """The cached reply for ``seq`` (None = not yet applied)."""
        return self.applied.get(seq)


class SessionRegistry:
    """All known client sessions, keyed by client id."""

    def __init__(self, applied_cache: int = DEFAULT_APPLIED_CACHE) -> None:
        self._sessions: Dict[str, SessionState] = {}
        self._ids = itertools.count(1)
        self._applied_cache = applied_cache

    def attach(
        self, client_id: str, credits: int = DEFAULT_INGEST_CREDITS
    ) -> SessionState:
        """Look up (or create) the session for a connecting client.

        A reconnect reuses the existing state — the idempotency cache
        and subscriptions carry over; ingest credits reset to the grant
        (any in-flight push frames died with the old connection).
        """
        session = self._sessions.get(client_id)
        if session is None:
            session = SessionState(
                client_id=client_id,
                session_id=f"s{next(self._ids)}",
                applied_cache=self._applied_cache,
            )
            self._sessions[client_id] = session
        session.credits = credits
        session.connected = True
        return session

    def detach(self, session: SessionState) -> None:
        """Mark a session's connection as gone (state is retained)."""
        session.connected = False

    def get(self, client_id: str) -> Optional[SessionState]:
        """The session for ``client_id`` if one exists."""
        return self._sessions.get(client_id)

    def sessions(self) -> list:
        """All known sessions (connected or not)."""
        return list(self._sessions.values())

    @property
    def connected_count(self) -> int:
        """Sessions with a live connection right now."""
        return sum(1 for s in self._sessions.values() if s.connected)
