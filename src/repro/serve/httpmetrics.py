"""A dependency-free HTTP endpoint for Prometheus scraping.

Serves exactly two paths from the running server's telemetry:

* ``GET /metrics`` — the serve-layer registry (sessions, frame and
  ingest counters, admission outcomes, subscription backlog) merged
  with the engine's registry when the engine observes, rendered through
  :func:`repro.obs.exposition.render_prometheus`;
* ``GET /healthz`` — a one-line liveness body.

The handler speaks just enough HTTP/1.0 for a scraper (request line +
headers in, fixed response out, connection closed) — no routes, no
framework, no dependency.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

_MAX_REQUEST_BYTES = 16_384


class MetricsHttpServer:
    """Serves ``/metrics`` and ``/healthz`` for one stream server."""

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.render = render
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting scrapes."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (resolves an ephemeral request)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("metrics server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readuntil(b"\r\n")
            if len(request) > _MAX_REQUEST_BYTES:
                raise ValueError("request line too long")
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain headers until the blank line (scrapers send a few).
            while True:
                line = await reader.readuntil(b"\r\n")
                if line in (b"\r\n", b"\n", b""):
                    break
            if path.split("?")[0] == "/metrics":
                body = self.render()
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path.split("?")[0] == "/healthz":
                body = "ok\n"
                status = "200 OK"
                content_type = "text/plain; charset=utf-8"
            else:
                body = "not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.IncompleteReadError, ValueError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
