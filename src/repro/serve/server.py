"""The networked multi-tenant stream service (control + data planes).

:class:`AStreamServer` puts a front door on the engine: many
independent clients connect over TCP, create and delete ad-hoc queries
at runtime, feed events, and stream their queries' results back — the
paper's serving setting (hundreds of ad-hoc queries per second from
many users, §1) exercised over a real wire instead of direct Python
calls.

One server process hosts one engine — the in-process
:class:`~repro.core.engine.AStreamEngine` or the process-sharded
:class:`~repro.core.parallel_engine.ProcessAStreamEngine` — behind an
:class:`~repro.serve.gate.EngineGate` that serialises access and
supervises worker recovery.  The asyncio loop is the control plane's
single-writer: every session's frames apply in arrival order, so
changelog sequence numbers give clients an exact global order of query
lifecycle events.

Plane by plane:

* **control** — authenticated sessions submit ``create_query`` /
  ``delete_query`` (a serde document or SQL text), gated through the
  existing :class:`~repro.core.admission.AdmissionController` and QoS
  monitor; acks carry the changelog sequence at which the request took
  effect, so a client knows *exactly* when its query is live;
* **data** — ``push`` frames carry event micro-batches into the
  engine's :meth:`push_many` batch path, paced by per-session ingest
  credits (the same credit discipline the shard pool uses for worker
  IPC);
* **results** — subscriptions fan deliveries out through the
  :class:`~repro.serve.subscriptions.SubscriptionHub` with bounded
  buffers and visible slow-consumer shedding;
* **ops** — ``GET /metrics`` (Prometheus) on a sidecar HTTP listener,
  ``obs_snapshot`` over the wire (the pipeline inspector attaches to a
  live server with it), and graceful drain/shutdown that checkpoints
  the engine before exit.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import logging
import os
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    PlacementPolicy,
    QueryPlacer,
)
from repro.core.changelog import Changelog
from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.qos import QoSMonitor, QoSThresholds
from repro.core.serde import SerdeError, output_to_dict, query_from_dict
from repro.core.sql import SqlError, parse_query
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.minispe.parallel import ShardWorkerError
from repro.minispe.record import RecordBatch
from repro.obs import MetricsRegistry, render_prometheus, write_flight_record
from repro.obs.cost import cost_summary
from repro.obs.slo import SLOTracker
from repro.obs.tracing import WireTraceBook, breakdown_from_snapshot
from repro.serve.autoscale import Autoscaler, AutoscalePolicy
from repro.serve.gate import EngineGate
from repro.serve.httpmetrics import MetricsHttpServer
from repro.serve.protocol import (
    CODEC_BINARY,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    ProtocolError,
    decode_events,
    encode_result_binary,
    error_frame,
    negotiate_codec,
    read_frame,
    write_frame,
)
from repro.serve.state import (
    DEFAULT_INGEST_CREDITS,
    SessionRegistry,
    SessionState,
)
from repro.serve.subscriptions import DEFAULT_BUFFER_OUTPUTS, SubscriptionHub

logger = logging.getLogger("repro.serve.server")


@dataclass
class ServeConfig:
    """One server deployment's knobs."""

    host: str = "127.0.0.1"
    port: int = 0
    """TCP port for the frame protocol (0 = ephemeral)."""
    auth_token: Optional[str] = None
    """Shared-secret session auth; ``None`` accepts any client."""
    backend: str = "inline"
    """``inline`` or ``process`` (sharded worker pool)."""
    workers: int = 2
    """Worker processes for the process backend."""
    streams: Tuple[str, ...] = ("A", "B")
    max_join_arity: int = 1
    changelog_batch_size: int = 100
    changelog_timeout_ms: int = 50
    flush_on_submit: bool = True
    """Flush the shared session right after each control request, so the
    ack can carry the changelog sequence synchronously.  ``False``
    restores the paper's batched changelogs: acks return without a
    sequence and a ``query_event`` frame announces liveness when the
    batch/timeout flush happens."""
    log_inputs: bool = True
    """Keep the input log so the server can checkpoint/recover."""
    checkpoint_on_drain: bool = True
    observe: bool = False
    """Enable the engine's telemetry subsystem (obs_snapshot carries the
    full registry/trace/events picture when on)."""
    obs_sample_every: int = 32
    metrics_port: Optional[int] = None
    """HTTP ``/metrics`` sidecar port (None disables, 0 = ephemeral)."""
    max_active_queries: Optional[int] = None
    max_deferred: int = 1_000
    max_deployment_latency_ms: Optional[float] = None
    """QoS threshold: deferring admissions above this deployment
    latency (None disables the check)."""
    subscriber_buffer: int = DEFAULT_BUFFER_OUTPUTS
    result_frame_outputs: int = 512
    """Max outputs per streamed ``result`` frame."""
    ingest_credits: int = DEFAULT_INGEST_CREDITS
    tick_interval_ms: int = 20
    """Background tick cadence: session timeout flushes, deferred
    admission retries, subscription flushing."""
    clock: str = "wall"
    """``wall`` stamps control requests with server uptime;``manual``
    advances only on client-supplied ``at_ms``/watermarks, keeping runs
    deterministic for equivalence testing."""
    write_buffer_limit: int = 4 * 1024 * 1024
    """Per-connection transport backlog above which subscription
    flushing skips the connection (results keep buffering — and
    eventually shedding — in the hub instead of in kernel memory)."""
    heartbeat_interval_s: Optional[float] = None
    """Process-backend worker liveness probe cadence (None disables the
    pool monitor; deaths then surface on the next data-path send)."""
    ack_deadline_s: Optional[float] = None
    """Process-backend wedge detector: a worker with outstanding frames
    and no ack progress for this long is killed and reported."""
    autoscale: bool = False
    """Let the ticker resize the worker pool from backpressure-stall
    rates and straggler skew (process backend only)."""
    autoscale_min_workers: int = 1
    autoscale_max_workers: int = 8
    autoscale_interval_ms: int = 1_000
    autoscale_cooldown_ms: int = 5_000
    autoscale_stall_rate: float = 2.0
    """Pool stalls/sec that trigger a scale-up."""
    autoscale_skew: float = 3.0
    """``straggler_skew`` estimate that triggers a scale-up."""
    dead_letter_limit: int = 256
    """Push batches parked after recovery+retry both failed; oldest are
    evicted beyond this depth (0 disables dead-lettering)."""
    placement_groups: int = 1
    """Shard groups for admission-time placement (affinity co-location
    + expensive-query isolation); 1 keeps everything co-located."""
    codecs: Tuple[str, ...] = SUPPORTED_CODECS
    """Wire codecs this server negotiates, in preference-filter order;
    ``("json",)`` pins every session to JSON (the old-server shape the
    client fallback tests simulate)."""
    slo_target_ms: Optional[float] = None
    """Default wire-to-delivery latency SLO for every created query
    (``create_query`` frames override per query with ``slo_ms``).
    None tracks latency without a target (burn rates read 0)."""
    slo_objective: float = 0.99
    """The SLO objective: the fraction of traced deliveries that must
    land under the target before the error budget starts burning."""
    slo_burn_pressure: float = 2.0
    """Burn rate at/above which subscription pressure (halved buffers)
    is applied to the offending query; also the QoS violation line."""
    trace_tail: int = 256
    """Closed wire-trace records kept for flight-recorder dumps."""
    flight_dir: Optional[str] = None
    """Directory for flight-recorder dumps written when the gate
    performs a recovery (``ASTREAM_FLIGHT_DIR`` is the env fallback;
    both unset disables the recorder)."""
    engine_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in ("inline", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        for codec in self.codecs:
            if codec not in SUPPORTED_CODECS:
                raise ValueError(f"unknown codec {codec!r}")
        if "json" not in self.codecs:
            raise ValueError("the json codec cannot be disabled")
        if self.clock not in ("wall", "manual"):
            raise ValueError(f"unknown clock mode {self.clock!r}")
        if self.autoscale and self.backend != "process":
            raise ValueError("autoscale needs the process backend")
        if self.placement_groups < 1:
            raise ValueError("placement_groups must be >= 1")
        if not 0.0 < self.slo_objective < 1.0:
            raise ValueError("slo_objective must be in (0, 1)")
        if self.flight_dir is None:
            self.flight_dir = os.environ.get("ASTREAM_FLIGHT_DIR") or None


def build_engine(
    config: ServeConfig, qos: Optional[QoSMonitor] = None
) -> AStreamEngine:
    """Construct the hosted engine for a serve config."""
    engine_config = EngineConfig(
        streams=config.streams,
        max_join_arity=config.max_join_arity,
        parallelism=1,
        changelog_batch_size=config.changelog_batch_size,
        changelog_timeout_ms=config.changelog_timeout_ms,
        retain_results=True,
        log_inputs=config.log_inputs,
        observe=config.observe,
        obs_sample_every=config.obs_sample_every,
        **config.engine_overrides,
    )
    if config.backend == "process":
        # Delivery sampling stays off: QoS latency over IPC would tax
        # the very throughput the server exists to provide; the poll
        # flusher reads merged channels instead.
        return ProcessAStreamEngine(
            engine_config,
            cluster=SimulatedCluster(ClusterSpec(nodes=1), mode="process"),
            workers=config.workers,
            deliver_sample_every=0,
            heartbeat_interval_s=config.heartbeat_interval_s,
            ack_deadline_s=config.ack_deadline_s,
        )
    return AStreamEngine(
        engine_config,
        cluster=SimulatedCluster(ClusterSpec(nodes=1)),
        on_deliver=qos.on_deliver if qos is not None else None,
    )


class AStreamServer:
    """The asyncio TCP server fronting one shared-stream engine."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        engine: Optional[AStreamEngine] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.qos = QoSMonitor(
            now_fn=self.now_ms,
            thresholds=QoSThresholds(
                max_deployment_latency_ms=(
                    self.config.max_deployment_latency_ms
                ),
                max_slo_burn_rate=self.config.slo_burn_pressure,
            ),
        )
        self.wire_traces = WireTraceBook(max_tail=self.config.trace_tail)
        self.slo = SLOTracker(objective=self.config.slo_objective)
        self._query_owner: Dict[str, str] = {}
        """query_id → owning client_id: the tenant axis for SLO rollups."""
        self._pressured: set = set()
        """Queries currently under SLO-burn subscription pressure."""
        self.engine = engine if engine is not None else build_engine(
            self.config, qos=self.qos
        )
        self.gate = EngineGate(self.engine, on_recovery=self._on_recovery)
        self.placer = QueryPlacer(
            PlacementPolicy(shard_groups=self.config.placement_groups)
        )
        self.admission = AdmissionController(
            self.engine,
            self.qos,
            AdmissionPolicy(
                max_active_queries=self.config.max_active_queries,
                defer_on_qos_violation=(
                    self.config.max_deployment_latency_ms is not None
                ),
                max_deferred=self.config.max_deferred,
            ),
            placer=self.placer,
        )
        self.dead_letters: Deque[Tuple[str, list]] = deque(
            maxlen=max(1, self.config.dead_letter_limit)
        )
        self._dead_lettered_total = 0
        self._autoscaler: Optional[Autoscaler] = None
        if self.config.autoscale and isinstance(
            self.engine, ProcessAStreamEngine
        ):
            self._autoscaler = Autoscaler(
                AutoscalePolicy(
                    min_workers=self.config.autoscale_min_workers,
                    max_workers=self.config.autoscale_max_workers,
                    evaluate_every_ms=self.config.autoscale_interval_ms,
                    cooldown_ms=self.config.autoscale_cooldown_ms,
                    scale_up_stall_rate=self.config.autoscale_stall_rate,
                    scale_up_skew=self.config.autoscale_skew,
                )
            )
        self.sessions = SessionRegistry()
        self.hub = SubscriptionHub(
            self.engine,
            tap_mode=not isinstance(self.engine, ProcessAStreamEngine),
            buffer_capacity=self.config.subscriber_buffer,
        )
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._awaiting_flush: Dict[str, List[Tuple[SessionState, str]]] = {}
        """query_id → (session, kind) pairs waiting for the changelog
        flush that makes the request effective (batched-flush mode)."""
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_http: Optional[MetricsHttpServer] = None
        self._ticker_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None
        self._started_monotonic = time.monotonic()
        self._manual_now_ms = 0
        self._last_sequence = 0
        self._shutdown_checkpoint: Optional[int] = None
        self._closed = False

    # -- clock -------------------------------------------------------------

    def now_ms(self) -> int:
        """The server's control-plane clock (see ``ServeConfig.clock``)."""
        if self.config.clock == "manual":
            return self._manual_now_ms
        return int((time.monotonic() - self._started_monotonic) * 1_000)

    def _observe_time(self, at_ms: Optional[int]) -> int:
        """Fold a client-supplied timestamp into the clock; return now."""
        if at_ms is not None:
            self._manual_now_ms = max(self._manual_now_ms, int(at_ms))
            return int(at_ms)
        return self.now_ms()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind listeners and start the background ticker."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.metrics_port is not None:
            self._metrics_http = MetricsHttpServer(
                self.render_metrics,
                host=self.config.host,
                port=self.config.metrics_port,
            )
            await self._metrics_http.start()
        self._ticker_task = asyncio.create_task(self._ticker())
        logger.info(
            "serving %s backend on %s:%d (metrics: %s)",
            self.config.backend,
            self.config.host,
            self.port,
            self._metrics_http.port if self._metrics_http else "off",
        )

    @property
    def port(self) -> int:
        """The bound frame-protocol port."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound HTTP metrics port (None when disabled)."""
        return self._metrics_http.port if self._metrics_http else None

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` frame)."""
        if self._stopping is None:
            raise RuntimeError("call start() first")
        await self._stopping.wait()

    async def stop(self, drain: bool = True) -> None:
        """Graceful teardown: drain, checkpoint, close, release.

        ``drain`` settles in-flight work and (with ``log_inputs``)
        takes a final checkpoint before the engine shuts down, so a
        restarted server could recover the query population.
        """
        if self._closed:
            return
        self._closed = True
        if self._ticker_task is not None:
            self._ticker_task.cancel()
            try:
                await self._ticker_task
            except asyncio.CancelledError:
                pass
        if drain:
            try:
                self._drain_engine(checkpoint=self.config.log_inputs)
                await self._flush_subscriptions(force=True)
            except ShardWorkerError:
                logger.warning("drain failed during shutdown", exc_info=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_http is not None:
            await self._metrics_http.stop()
        for writer in list(self._writers.values()):
            writer.close()
        self.engine.shutdown()
        if self._stopping is not None:
            self._stopping.set()
        logger.info("server stopped (final checkpoint: %s)",
                    self._shutdown_checkpoint)

    def _drain_engine(self, checkpoint: bool) -> None:
        self.gate.call(self.engine.drain)
        self.hub.poll()
        if checkpoint and self.config.log_inputs:
            self._shutdown_checkpoint = self.gate.call(self.engine.checkpoint)

    def _on_recovery(self, info) -> None:
        # Replay may have applied changelogs past what this loop saw.
        self._last_sequence = max(
            self._last_sequence, self.engine.session._next_sequence - 1
        )
        self.registry.counter("serve_recoveries").inc()
        logger.info(
            "supervised recovery: checkpoint %s, replayed %d",
            info.checkpoint_id,
            info.replayed_elements,
        )
        if self.config.flight_dir:
            # Post-incident forensics must never turn a successful
            # recovery into a failure — best-effort only.
            try:
                self._dump_flight_record(info)
            except Exception:
                logger.warning("flight-recorder dump failed", exc_info=True)

    def _dump_flight_record(self, info) -> None:
        """Write the pre-incident picture next to a completed recovery."""
        incident = len(self.gate.recoveries)
        snapshot: Optional[Dict[str, Any]] = None
        events_jsonl = ""
        if self.engine.obs is not None:
            try:
                snapshot = self.engine.obs_snapshot()
            except ShardWorkerError:
                snapshot = None
            events_jsonl = "\n".join(
                json.dumps(event, sort_keys=True, default=str)
                for event in self.engine.obs.events.tail(256)
            )
        paths = write_flight_record(
            self.config.flight_dir,
            f"recovery_{incident}",
            info={
                "incident": incident,
                "checkpoint_id": info.checkpoint_id,
                "replayed_elements": info.replayed_elements,
                "now_ms": self.now_ms(),
                "slo": self.slo.summary(),
            },
            snapshot=snapshot,
            wire_traces={
                "summary": self.wire_traces.snapshot(),
                "tail": self.wire_traces.tail(),
            },
            events_jsonl=events_jsonl,
        )
        logger.info("flight record written: %s", sorted(paths.values()))

    # -- background ticker -------------------------------------------------

    async def _ticker(self) -> None:
        interval = self.config.tick_interval_ms / 1_000.0
        while True:
            await asyncio.sleep(interval)
            try:
                now = self.now_ms()
                changelog = self.gate.call(self.engine.tick, now)
                if changelog is not None:
                    self._note_changelogs([changelog])
                    await self._announce_flushed([changelog])
                if self.admission.deferred_count:
                    with self.gate.locked():
                        admitted = self.admission.retry_deferred(now)
                        if admitted and self.config.flush_on_submit:
                            flushed = self.engine.flush_session(now)
                    if admitted:
                        self._note_changelogs(flushed)
                        await self._announce_flushed(flushed)
                self._elasticity_tick(now)
                if not self.hub.tap_mode:
                    with self.gate.locked():
                        self.hub.poll()
                await self._flush_subscriptions()
            except asyncio.CancelledError:
                raise
            except ShardWorkerError:
                logger.warning("tick hit a dead worker; next op recovers",
                               exc_info=True)
            except Exception:
                logger.exception("ticker iteration failed")

    def _elasticity_tick(self, now: int) -> None:
        """Per-tick elasticity duties (process backend only): drive one
        in-flight migration step, drain liveness-detected worker deaths
        into a gate-bookkept recovery, retry dead-lettered pushes, and
        consult the autoscaler."""
        engine = self.engine
        if not isinstance(engine, ProcessAStreamEngine):
            return
        with self.gate.locked():
            if engine.migration_active:
                # One shard per tick keeps ticks short; the remaining
                # shards keep buffering their ops in order.
                engine.migration_step()
            failures = engine.poll_worker_failures()
            if failures:
                self.registry.counter("serve_worker_failures").inc(
                    len(failures)
                )
                if (
                    not engine.migration_active
                    and engine.alive_workers < engine.workers
                ):
                    # Proactive recovery: the idle death was found by the
                    # heartbeat probe, not by a failed send — recover now
                    # so detection latency bounds repair latency.
                    first = failures[0]
                    try:
                        self.gate._recover(
                            ShardWorkerError(
                                first.shard, f"liveness probe: {first.reason}"
                            )
                        )
                    except ShardWorkerError:
                        logger.warning(
                            "proactive recovery failed", exc_info=True
                        )
            if self.dead_letters:
                self._retry_dead_letters()
            if self._autoscaler is not None and not engine.migration_active:
                target = self._autoscaler.evaluate(
                    now_ms=now,
                    workers=engine.workers,
                    stall_total=sum(engine.runtime.pool.stall_counts),
                    skew=engine.straggler_skew_estimate(),
                    burn_rate=self.slo.max_burn_rate(),
                )
                if target is not None:
                    logger.info(
                        "autoscaling %d -> %d workers (%s)",
                        engine.workers,
                        target,
                        self._autoscaler.decisions[-1].reason,
                    )
                    self.gate.call(engine.begin_resize, target)
                    self.registry.counter("serve_autoscale_resizes").inc()

    def _retry_dead_letters(self) -> None:
        """Re-ingest parked pushes FIFO; stop at the first failure."""
        while self.dead_letters:
            stream, events = self.dead_letters[0]
            # Binary pushes park as columnar RecordBatches, JSON pushes
            # as (timestamp, value) pairs — re-ingest each through the
            # seam it arrived on.
            ingest = (
                self.engine.push_batch
                if isinstance(events, RecordBatch)
                else self.engine.push_many
            )
            try:
                self.gate.call(ingest, stream, events)
            except ShardWorkerError:
                return
            self.dead_letters.popleft()
            self.registry.counter("serve_dead_letters_replayed").inc(
                len(events)
            )

    def _note_changelogs(self, changelogs: List[Changelog]) -> None:
        for changelog in changelogs:
            self._last_sequence = max(self._last_sequence, changelog.sequence)

    async def _announce_flushed(self, changelogs: List[Changelog]) -> None:
        """Resolve batched-mode waiters with their changelog sequence."""
        if not self._awaiting_flush:
            return
        for changelog in changelogs:
            effects = [
                (activation.query.query_id, "live")
                for activation in changelog.created
            ] + [
                (deactivation.query_id, "stopped")
                for deactivation in changelog.deleted
            ]
            for query_id, event in effects:
                waiters = self._awaiting_flush.pop(query_id, ())
                for session, _kind in waiters:
                    if event == "live":
                        session.owned_queries[query_id] = "live"
                    else:
                        session.owned_queries[query_id] = "stopped"
                    await self._send_to(
                        session,
                        {
                            "t": "query_event",
                            "event": event,
                            "query_id": query_id,
                            "sequence": changelog.sequence,
                        },
                    )

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[SessionState] = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as error:
                    # Malformed frame: answer, count, keep the session.
                    self.registry.counter("serve_protocol_errors").inc()
                    write_frame(
                        writer, error_frame(error.code, error.message)
                    )
                    await writer.drain()
                    continue
                if frame is None:
                    break
                session.frames_in += 1
                self.registry.counter("serve_frames_in").inc()
                try:
                    await self._dispatch(session, writer, frame)
                except ProtocolError as error:
                    self.registry.counter("serve_protocol_errors").inc()
                    write_frame(
                        writer,
                        error_frame(error.code, error.message,
                                    seq=frame.get("seq")),
                    )
                    await writer.drain()
                if self._closed:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if session is not None:
                self.sessions.detach(session)
                self._writers.pop(session.client_id, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[SessionState]:
        try:
            frame = await read_frame(reader)
        except ProtocolError as error:
            write_frame(writer, error_frame(error.code, error.message))
            await writer.drain()
            return None
        if frame is None:
            return None
        if frame.get("t") != "hello":
            write_frame(
                writer,
                error_frame("handshake_required",
                            "first frame must be hello"),
            )
            await writer.drain()
            return None
        expected = self.config.auth_token
        if expected is not None:
            supplied = frame.get("token") or ""
            if not hmac.compare_digest(str(supplied), expected):
                self.registry.counter("serve_auth_failures").inc()
                write_frame(
                    writer,
                    error_frame("auth_failed", "invalid auth token"),
                )
                await writer.drain()
                return None
        client_id = str(frame["client_id"]) or f"anon-{uuid.uuid4().hex[:8]}"
        session = self.sessions.attach(
            client_id, credits=self.config.ingest_credits
        )
        session.codec = negotiate_codec(
            frame.get("codecs"), self.config.codecs
        )
        self._writers[client_id] = writer
        write_frame(
            writer,
            {
                "t": "hello_ack",
                "session_id": session.session_id,
                "credits": session.credits,
                "codec": session.codec,
                "server": {
                    "protocol": PROTOCOL_VERSION,
                    "backend": self.config.backend,
                    "streams": list(self.config.streams),
                    "max_join_arity": self.config.max_join_arity,
                    "workers": (
                        self.engine.workers
                        if isinstance(self.engine, ProcessAStreamEngine)
                        else 1
                    ),
                },
            },
        )
        await writer.drain()
        return session

    async def _send_to(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> bool:
        """Best-effort frame delivery to a session's live connection."""
        writer = self._writers.get(session.client_id)
        if writer is None or writer.is_closing():
            return False
        try:
            write_frame(writer, frame)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        self.registry.counter("serve_frames_out").inc()
        return True

    async def _send_result(
        self,
        session: SessionState,
        query_id: str,
        outputs: List[Any],
        dropped: int,
    ) -> bool:
        """Ship one ``result`` frame in the session's negotiated codec.

        Binary sessions get the columnar encoding when the batch fits it
        (homogeneous int64-sized values); anything else falls back to a
        JSON frame, which every client accepts regardless of codec.
        """
        if session.codec == CODEC_BINARY:
            data = encode_result_binary(query_id, outputs, dropped)
            if data is not None:
                writer = self._writers.get(session.client_id)
                if writer is None or writer.is_closing():
                    return False
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionError, OSError):
                    return False
                self.registry.counter("serve_frames_out").inc()
                return True
        return await self._send_to(
            session,
            {
                "t": "result",
                "query_id": query_id,
                "outputs": [output_to_dict(output) for output in outputs],
                "dropped": dropped,
            },
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self,
        session: SessionState,
        writer: asyncio.StreamWriter,
        frame: Dict[str, Any],
    ) -> None:
        kind = frame["t"]
        if kind == "ping":
            write_frame(writer, {"t": "pong"})
            await writer.drain()
            return
        if kind == "push":
            await self._handle_push(session, writer, frame)
            return
        if kind == "watermark":
            self._handle_watermark(frame)
            return
        seq = frame.get("seq")
        if seq is not None:
            cached = session.replay(seq)
            if cached is not None:
                self.registry.counter("serve_idempotent_replays").inc()
                write_frame(writer, cached)
                await writer.drain()
                return
        handler = {
            "create_query": self._handle_create,
            "delete_query": self._handle_delete,
            "subscribe": self._handle_subscribe,
            "unsubscribe": self._handle_unsubscribe,
            "fetch_results": self._handle_fetch_results,
            "stats": self._handle_stats,
            "obs_snapshot": self._handle_obs_snapshot,
            "chaos": self._handle_chaos,
            "resize": self._handle_resize,
            "drain": self._handle_drain,
            "shutdown": self._handle_shutdown,
        }.get(kind)
        if handler is None:
            raise ProtocolError(
                "unexpected_frame", f"server does not accept {kind!r} frames"
            )
        reply = handler(session, frame)
        if asyncio.iscoroutine(reply):
            reply = await reply
        if reply is not None:
            session.remember(seq, reply)
            write_frame(writer, reply)
            await writer.drain()
            self.registry.counter("serve_frames_out").inc()

    # -- control plane -----------------------------------------------------

    def _parse_query_payload(self, frame: Dict[str, Any]):
        if "query" in frame:
            try:
                return query_from_dict(frame["query"])
            except (SerdeError, KeyError, TypeError, ValueError) as error:
                raise ProtocolError(
                    "bad_query", f"undecodable query document: {error}"
                ) from None
        if "sql" in frame:
            try:
                return parse_query(frame["sql"])
            except SqlError as error:
                raise ProtocolError("bad_sql", str(error)) from None
        raise ProtocolError(
            "missing_field", "create_query needs a query document or sql text"
        )

    def _handle_create(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        query = self._parse_query_payload(frame)
        slo_ms = frame.get("slo_ms", self.config.slo_target_ms)
        if slo_ms is not None:
            try:
                slo_ms = float(slo_ms)
                if slo_ms <= 0:
                    raise ValueError
            except (TypeError, ValueError):
                raise ProtocolError(
                    "bad_slo", f"slo_ms must be a positive number, "
                    f"got {frame.get('slo_ms')!r}"
                ) from None
        now = self._observe_time(frame.get("at_ms"))
        with self.gate.locked():
            try:
                decision = self.admission.submit(query, now)
            except ShardWorkerError as error:
                # The submit reached the session before the dead worker
                # surfaced; recovery + flush makes it effective exactly
                # once (the marker is in the replayed input log).
                self.gate._recover(error)
                decision = AdmissionDecision.ADMIT
            except ValueError as error:
                raise ProtocolError("bad_query", str(error)) from None
            flushed: List[Changelog] = []
            if (
                decision is AdmissionDecision.ADMIT
                and self.config.flush_on_submit
            ):
                flushed = self.gate.call(self.engine.flush_session, now)
        self._note_changelogs(flushed)
        reply: Dict[str, Any] = {
            "t": "ack",
            "seq": frame["seq"],
            "status": decision.value,
            "query_id": query.query_id,
        }
        if decision is not AdmissionDecision.REJECT:
            self._query_owner[query.query_id] = session.client_id
            self.slo.declare(
                query.query_id, slo_ms, tenant=session.client_id
            )
            if slo_ms is not None:
                reply["slo_ms"] = slo_ms
        if decision is AdmissionDecision.ADMIT:
            self.registry.counter("serve_queries_created").inc()
            sequence = _sequence_of(flushed, query.query_id, "created")
            if sequence is None and query.query_id in self.engine.session.registry:
                # A supervised recovery replayed the changelog marker
                # before the explicit flush ran; the query is live but
                # its activation rode the replay, not this flush.
                sequence = self._last_sequence
            if sequence is not None:
                session.owned_queries[query.query_id] = "live"
                reply["sequence"] = sequence
            else:
                session.owned_queries[query.query_id] = "pending"
                self._awaiting_flush.setdefault(query.query_id, []).append(
                    (session, "create")
                )
        elif decision is AdmissionDecision.DEFER:
            self.registry.counter("serve_admission_deferred").inc()
            session.owned_queries[query.query_id] = "pending"
            self._awaiting_flush.setdefault(query.query_id, []).append(
                (session, "create")
            )
        else:
            self.registry.counter("serve_admission_rejected").inc()
        return reply

    def _handle_delete(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        query_id = str(frame["query_id"])
        now = self._observe_time(frame.get("at_ms"))
        with self.gate.locked():
            parked = any(
                request.query.query_id == query_id
                for request in self.admission.deferred
            )
            if not parked and query_id not in self.engine.session.registry:
                raise ProtocolError(
                    "unknown_query", f"no live query {query_id!r}"
                )
            try:
                self.admission.stop(query_id, now)
            except ShardWorkerError as error:
                self.gate._recover(error)
            flushed: List[Changelog] = []
            if self.config.flush_on_submit:
                flushed = self.gate.call(self.engine.flush_session, now)
        self._note_changelogs(flushed)
        self.registry.counter("serve_queries_deleted").inc()
        self._query_owner.pop(query_id, None)
        self.slo.forget(query_id)
        self.qos.per_query_burn.pop(query_id, None)
        if query_id in self._pressured:
            self._pressured.discard(query_id)
            self.hub.set_pressure(query_id, False)
        reply: Dict[str, Any] = {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "query_id": query_id,
        }
        sequence = _sequence_of(flushed, query_id, "deleted")
        if sequence is None and query_id not in self.engine.session.registry:
            sequence = self._last_sequence
        if sequence is not None:
            session.owned_queries[query_id] = "stopped"
            reply["sequence"] = sequence
        else:
            self._awaiting_flush.setdefault(query_id, []).append(
                (session, "delete")
            )
        return reply

    # -- data plane --------------------------------------------------------

    async def _handle_push(
        self,
        session: SessionState,
        writer: asyncio.StreamWriter,
        frame: Dict[str, Any],
    ) -> None:
        if session.credits <= 0:
            raise ProtocolError(
                "no_credits",
                "push received with zero ingest credits; await push_ack",
            )
        stream = frame["stream"]
        if stream not in self.config.streams:
            raise ProtocolError("unknown_stream", f"unknown stream {stream!r}")
        trace = self._extract_trace(frame)
        t_client = time.monotonic_ns() if trace is not None else 0
        # Binary push frames arrive as columnar RecordBatches (columns
        # aliasing the frame buffer, rows unbuilt); JSON frames still
        # need the row codec and the pair-to-record rebuild in
        # push_many.
        if frame.get("_decoded"):
            events = frame["batch"]
            ingest = self.engine.push_batch
        else:
            events = decode_events(frame["events"])
            ingest = self.engine.push_many
        session.credits -= 1
        dead_lettered = 0
        t_server = time.monotonic_ns() if trace is not None else 0
        try:
            try:
                if not events:
                    accepted = 0
                elif trace is not None and not frame.get("_decoded"):
                    # JSON path: thread the context through push_many's
                    # trace seam (the binary decoder already stamped
                    # the batch itself).
                    accepted = self.gate.call(ingest, stream, events, trace)
                else:
                    accepted = self.gate.call(ingest, stream, events)
            except ShardWorkerError:
                if not self.config.dead_letter_limit:
                    raise
                # Recovery + retry both failed inside the gate: park the
                # batch instead of dropping it or killing the session.
                # The ticker re-ingests FIFO once the engine is healthy.
                self.dead_letters.append((stream, events))
                self._dead_lettered_total += len(events)
                self.registry.counter("serve_dead_lettered").inc(len(events))
                accepted = 0
                dead_lettered = len(events)
        finally:
            session.credits += 1
        t_shard = time.monotonic_ns() if trace is not None else 0
        session.tuples_in += accepted
        self.registry.counter("serve_push_frames").inc()
        self.registry.counter("serve_tuples_ingested").inc(accepted)
        ack: Dict[str, Any] = {"t": "push_ack", "credits": session.credits,
                               "accepted": accepted}
        if dead_lettered:
            ack["dead_lettered"] = dead_lettered
        if trace is not None:
            # Close the wire span at delivery: poll the merged channels
            # (poll backend) and force-flush subscriptions so results
            # this push produced are on the wire before the final stamp.
            # gate.call, not gate.locked(): the traced push may have
            # landed on a live shard while another shard sits dead, so
            # the cross-shard poll needs the gate's recovery supervision.
            if not self.hub.tap_mode:
                self.gate.call(self.hub.poll)
            delivered = await self._flush_subscriptions(force=True)
            t_deliver = time.monotonic_ns()
            record = self.wire_traces.close(
                trace[0],
                (
                    ("ingest", trace[1]),
                    ("client", t_client),
                    ("server", t_server),
                    ("shard", t_shard),
                    ("subscription", t_deliver),
                ),
                queries=sorted(delivered),
            )
            self._account_wire_trace(trace, record, delivered)
            ack["trace"] = {
                "id": trace[0],
                "e2e_ns": record["e2e_ns"],
                "spans": [[stage, span] for stage, span in record["spans"]],
                "queries": record["queries"],
            }
        write_frame(writer, ack)
        await writer.drain()

    def _extract_trace(
        self, frame: Dict[str, Any]
    ) -> Optional[Tuple[int, int]]:
        """The push frame's trace context ``(id, ingest_ns)``, if any."""
        context = frame.get("trace")
        if context is None:
            return None
        try:
            return (int(context["id"]), int(context["ingest_ns"]))
        except (KeyError, TypeError, ValueError):
            raise ProtocolError(
                "bad_trace", "trace needs integer id and ingest_ns fields"
            ) from None

    def _account_wire_trace(
        self,
        trace: Tuple[int, int],
        record: Dict[str, Any],
        delivered: Dict[str, int],
    ) -> None:
        """Fold one closed wire trace into the SLO/QoS/metrics surfaces."""
        registry = self.registry
        registry.counter("serve_traced_pushes").inc()
        e2e_ms = record["e2e_ns"] / 1e6
        registry.histogram("serve_wire_e2e_ms").record(e2e_ms)
        for stage, span_ns in record["spans"]:
            registry.counter("serve_trace_stage_ns", stage=stage).inc(
                max(0, span_ns)
            )
        if isinstance(self.engine, ProcessAStreamEngine):
            detail = [
                span
                for span in self.engine.take_wire_spans()
                if span.get("id") == trace[0]
            ]
            if detail:
                self.wire_traces.attach_detail(trace[0], detail)
        for query_id in delivered:
            tenant = self._query_owner.get(query_id)
            self.slo.observe(query_id, e2e_ms, tenant=tenant)
            registry.histogram("query_latency_ms", query=query_id).record(
                e2e_ms
            )
            if tenant is not None:
                registry.histogram(
                    "tenant_latency_ms", tenant=tenant
                ).record(e2e_ms)
            self.qos.observe_burn(query_id, self.slo.burn_rate(query_id))
        if delivered:
            self._apply_slo_pressure()

    def _apply_slo_pressure(self) -> None:
        """Reconcile subscription pressure with the burning-query set."""
        burning = set(
            self.slo.burning_queries(self.config.slo_burn_pressure)
        )
        for query_id in burning - self._pressured:
            self.hub.set_pressure(query_id, True)
            self.registry.counter("serve_slo_pressure_applied").inc()
        for query_id in self._pressured - burning:
            self.hub.set_pressure(query_id, False)
        self._pressured = burning

    def _handle_watermark(self, frame: Dict[str, Any]) -> None:
        timestamp = int(frame["timestamp"])
        self._observe_time(timestamp)
        stream = frame.get("stream")
        if stream is not None and stream not in self.config.streams:
            raise ProtocolError("unknown_stream", f"unknown stream {stream!r}")
        try:
            self.gate.call(self.engine.watermark, timestamp, stream)
        except KeyError as error:
            raise ProtocolError("unknown_stream", str(error)) from None

    # -- results -----------------------------------------------------------

    def _handle_subscribe(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        query_id = str(frame["query_id"])
        with self.gate.locked():
            subscription = self.hub.subscribe(
                session, query_id, from_start=bool(frame.get("from_start", True))
            )
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "query_id": query_id,
            "backlog": subscription.pending,
        }

    def _handle_unsubscribe(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        query_id = str(frame["query_id"])
        existed = self.hub.unsubscribe(session, query_id)
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok" if existed else "not_subscribed",
            "query_id": query_id,
        }

    def _handle_fetch_results(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        query_id = str(frame["query_id"])
        outputs = self.gate.call(self.engine.canonical_results, query_id)
        return {
            "t": "results",
            "seq": frame["seq"],
            "query_id": query_id,
            "outputs": [output_to_dict(output) for output in outputs],
        }

    async def _flush_subscriptions(
        self, force: bool = False
    ) -> Dict[str, int]:
        """Ship buffered subscription results as ``result`` frames.

        Connections whose transport backlog exceeds the write-buffer
        limit are skipped (unless forced): their results stay in the
        hub's bounded buffers, where overflow sheds visibly instead of
        ballooning kernel memory.

        Returns per-query delivered-output counts for this flush — the
        traced-push path closes its wire span against exactly the
        queries whose results went out before the closing stamp.
        """
        limit = self.config.result_frame_outputs
        delivered: Dict[str, int] = {}
        for session in self.sessions.sessions():
            if not session.subscriptions:
                continue
            writer = self._writers.get(session.client_id)
            if writer is None or writer.is_closing():
                continue
            if (
                not force
                and writer.transport.get_write_buffer_size()
                > self.config.write_buffer_limit
            ):
                continue
            for subscription in list(session.subscriptions.values()):
                while subscription.pending:
                    batch, dropped = subscription.take(limit)
                    if dropped:
                        self.registry.counter("serve_results_shed").inc(
                            dropped
                        )
                    self.registry.counter("serve_results_streamed").inc(
                        len(batch)
                    )
                    if not await self._send_result(
                        session, subscription.query_id, batch, dropped
                    ):
                        break
                    if batch:
                        delivered[subscription.query_id] = (
                            delivered.get(subscription.query_id, 0)
                            + len(batch)
                        )
                    if not force:
                        break  # one frame per sub per tick keeps ticks short
        return delivered

    # -- ops surface -------------------------------------------------------

    def _handle_stats(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        with self.gate.locked():
            active = self.engine.active_query_count
            counts = self.engine.result_counts()
            sharing = self.engine.sharing_summary()
            try:
                cost = self.engine.cost_attribution()
            except ShardWorkerError:
                cost = None
        stats: Dict[str, Any] = {
            "backend": self.config.backend,
            "active_queries": active,
            "sharing": sharing,
            "changelog_sequence": self._last_sequence,
            "result_counts": counts,
            "sessions_connected": self.sessions.connected_count,
            "subscriptions": self.hub.subscription_count,
            "results_shed": self.hub.dropped_total,
            "recoveries": len(self.gate.recoveries),
            "deferred": self.admission.deferred_count,
            "now_ms": self.now_ms(),
            "dead_letter_depth": len(self.dead_letters),
            "dead_lettered_total": self._dead_lettered_total,
            "placements": {
                query_id: {
                    "group": group,
                    "affinity": affinity,
                    "expensive": expensive,
                }
                for query_id, (group, affinity, expensive)
                in self.placer.placements().items()
            },
            "placement_group_loads": self.placer.group_loads,
            "slo": self.slo.summary(),
            "slo_pressure": sorted(self._pressured),
            "wire_latency": {
                "traced_pushes": self.wire_traces.e2e_count,
                "e2e_total_ns": self.wire_traces.e2e_total_ns,
                "breakdown": breakdown_from_snapshot(
                    self.wire_traces.snapshot()
                ),
            },
        }
        if cost is not None:
            stats["cost"] = {
                "total_ns": cost["total_ns"],
                "unattributed_ns": cost["unattributed_ns"],
                "queries": cost["queries"],
                "top": cost_summary(cost),
            }
        if isinstance(self.engine, ProcessAStreamEngine):
            stats["workers"] = self.engine.workers
            stats["alive_workers"] = self.engine.alive_workers
            stats.update(self.engine.migration_counters())
            if self._autoscaler is not None:
                stats["autoscale_decisions"] = [
                    {
                        "at_ms": decision.at_ms,
                        "workers": decision.workers,
                        "target": decision.target,
                        "reason": decision.reason,
                    }
                    for decision in self._autoscaler.decisions
                ]
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "stats": stats,
        }

    def _handle_obs_snapshot(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self.engine.obs is None:
            snapshot: Dict[str, Any] = {"registry": self.registry.snapshot()}
            events: List[Dict[str, Any]] = []
        else:
            snapshot = self.gate.call(self.engine.obs_snapshot)
            snapshot["registry"] = {
                **snapshot.get("registry", {}),
                **self.registry.snapshot(),
            }
            events = self.engine.obs.events.tail(64)
        snapshot["slo"] = self.slo.summary()
        snapshot["wire_trace"] = self.wire_traces.snapshot()
        try:
            snapshot["cost"] = self.gate.call(self.engine.cost_attribution)
        except ShardWorkerError:
            pass
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "snapshot": snapshot,
            "events": events,
        }

    def _handle_chaos(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = frame.get("op")
        if op != "kill_worker":
            raise ProtocolError("bad_chaos", f"unknown chaos op {op!r}")
        if not isinstance(self.engine, ProcessAStreamEngine):
            raise ProtocolError(
                "unsupported", "kill_worker needs the process backend"
            )
        shard = int(frame.get("shard", 0))
        with self.gate.locked():
            self.engine.kill_worker(shard)
        self.registry.counter("serve_chaos_kills").inc()
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "shard": shard,
        }

    def _handle_resize(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        if not isinstance(self.engine, ProcessAStreamEngine):
            raise ProtocolError(
                "unsupported", "resize needs the process backend"
            )
        workers = int(frame.get("workers", 0))
        if workers < 1:
            raise ProtocolError(
                "bad_resize", f"need at least one worker, got {workers}"
            )
        # Start the live migration under the gate; the ticker drives the
        # per-shard restore steps so ingest keeps flowing meanwhile.
        with self.gate.locked():
            self.gate.call(self.engine.begin_resize, workers)
        self.registry.counter("serve_resizes").inc()
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "workers": workers,
            "migration_active": self.engine.migration_active,
        }

    async def _handle_drain(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        checkpoint = bool(frame.get("checkpoint", self.config.checkpoint_on_drain))
        with self.gate.locked():
            self._drain_engine(checkpoint=checkpoint)
        await self._flush_subscriptions(force=True)
        return {
            "t": "ack",
            "seq": frame["seq"],
            "status": "ok",
            "checkpoint": self._shutdown_checkpoint if checkpoint else None,
        }

    async def _handle_shutdown(
        self, session: SessionState, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        reply = {"t": "ack", "seq": frame["seq"], "status": "ok"}
        writer = self._writers.get(session.client_id)
        if writer is not None:
            session.remember(frame["seq"], reply)
            write_frame(writer, reply)
            await writer.drain()
        asyncio.get_running_loop().create_task(self.stop(drain=True))
        return None

    # -- metrics -----------------------------------------------------------

    def _refresh_gauges(self) -> None:
        registry = self.registry
        registry.gauge("serve_sessions_connected", merge="max").set(
            self.sessions.connected_count
        )
        registry.gauge("serve_subscriptions", merge="max").set(
            self.hub.subscription_count
        )
        registry.gauge("serve_pending_outputs", merge="max").set(
            self.hub.pending_outputs
        )
        registry.gauge("serve_active_queries", merge="max").set(
            self.engine.active_query_count
        )
        registry.gauge("serve_changelog_sequence", merge="max").set(
            self._last_sequence
        )
        registry.gauge("serve_dead_letter_depth", merge="max").set(
            len(self.dead_letters)
        )
        registry.gauge("slo_burn_rate", merge="max").set(
            self.slo.max_burn_rate()
        )
        registry.gauge("slo_pressure_active", merge="max").set(
            len(self._pressured)
        )
        registry.gauge("slo_violations", merge="max").set(
            self.slo.violations_total
        )
        if isinstance(self.engine, ProcessAStreamEngine):
            registry.gauge("serve_workers", merge="max").set(
                self.engine.workers
            )
            registry.gauge("serve_alive_workers", merge="max").set(
                self.engine.alive_workers
            )
            counters = self.engine.migration_counters()
            registry.gauge("serve_migrations", merge="max").set(
                counters["migrations"]
            )
            registry.gauge("serve_migration_active", merge="max").set(
                int(counters["migration_active"])
            )

    def render_metrics(self) -> str:
        """The Prometheus exposition body for ``GET /metrics``."""
        self._refresh_gauges()
        snapshot = dict(self.registry.snapshot())
        if self.engine.obs is not None:
            try:
                engine_snapshot = self.gate.call(self.engine.obs_snapshot)
                snapshot = {
                    **engine_snapshot.get("registry", {}),
                    **snapshot,
                }
            except ShardWorkerError:
                logger.warning("metrics scrape skipped engine snapshot",
                               exc_info=True)
        return render_prometheus(snapshot)


def _sequence_of(
    changelogs: List[Changelog], query_id: str, direction: str
) -> Optional[int]:
    """The sequence of the changelog applying ``query_id`` (if flushed)."""
    for changelog in changelogs:
        if direction == "created":
            if any(
                activation.query.query_id == query_id
                for activation in changelog.created
            ):
                return changelog.sequence
        else:
            if any(
                deactivation.query_id == query_id
                for deactivation in changelog.deleted
            ):
                return changelog.sequence
    return None
