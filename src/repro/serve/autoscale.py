"""Metric-driven worker autoscaling for the serving layer (ISSUE 6).

The autoscaler closes the loop the paper leaves open ("new resources
can be added; however, elastic scaling is out of the scope of this
paper", §3.4): the server's ticker feeds it the process pool's
backpressure-stall counters and the ``straggler_skew`` estimate from
cross-worker telemetry, and it answers with a target worker count.  The
server then starts a live migration (:meth:`ProcessAStreamEngine.
begin_resize`) whose per-shard steps the ticker drives incrementally.

Pure decision logic — no engine access, no clocks of its own — so the
policy is unit-testable and deterministic given the same observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class AutoscaleDecision:
    """One scale-up/down verdict, for stats frames and tests."""

    at_ms: int
    workers: int
    target: int
    reason: str


@dataclass
class AutoscalePolicy:
    """Operator-configured scaling behaviour."""

    min_workers: int = 1
    max_workers: int = 8
    evaluate_every_ms: int = 1_000
    """Observation window; decisions are rate-based over this window."""
    cooldown_ms: int = 5_000
    """Quiet period after any resize before the next decision."""
    scale_up_stall_rate: float = 2.0
    """Credit-window stalls/sec across the pool that trigger scale-up
    (the feed is blocking on slow workers — more shards spread load)."""
    scale_up_skew: float = 3.0
    """``straggler_skew`` (max/mean shard input) that triggers scale-up:
    re-sharding to a different modulus redistributes hot key ranges."""
    scale_down_stall_rate: float = 0.05
    """Stalls/sec below which the pool is considered over-provisioned."""
    scale_up_burn_rate: float = 2.0
    """Worst per-query SLO error-budget burn rate that triggers
    scale-up: tail latency is eating the budget faster than the
    objective allows even though the pool is not stalling yet."""

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")


class Autoscaler:
    """Stall-rate + skew driven worker-count controller."""

    def __init__(self, policy: Optional[AutoscalePolicy] = None) -> None:
        self.policy = policy or AutoscalePolicy()
        self.decisions: List[AutoscaleDecision] = []
        self._last_eval_ms: Optional[int] = None
        self._last_stall_total = 0
        self._cooldown_until_ms = 0

    def evaluate(
        self,
        now_ms: int,
        workers: int,
        stall_total: int,
        skew: Optional[float] = None,
        burn_rate: Optional[float] = None,
    ) -> Optional[int]:
        """Return a new target worker count, or None to hold steady.

        ``stall_total`` is the pool's cumulative credit-window stall
        count (monotonic; resets to 0 after a resize are handled).
        ``skew`` is the latest ``straggler_skew`` estimate when
        cross-worker telemetry is on, else None.  ``burn_rate`` is the
        worst per-query SLO error-budget burn rate when the server
        tracks wire latency SLOs, else None.
        """
        policy = self.policy
        if self._last_eval_ms is None:
            self._last_eval_ms = now_ms
            self._last_stall_total = stall_total
            return None
        elapsed_ms = now_ms - self._last_eval_ms
        if elapsed_ms < policy.evaluate_every_ms:
            return None
        delta = stall_total - self._last_stall_total
        if delta < 0:  # pool was resized; counters restarted
            delta = stall_total
        stall_rate = delta / (elapsed_ms / 1_000.0)
        self._last_eval_ms = now_ms
        self._last_stall_total = stall_total
        if now_ms < self._cooldown_until_ms:
            return None
        target = workers
        reason = ""
        if stall_rate >= policy.scale_up_stall_rate:
            target = min(policy.max_workers, max(workers + 1, workers * 2))
            reason = f"stall_rate={stall_rate:.2f}/s"
        elif skew is not None and skew >= policy.scale_up_skew:
            target = min(policy.max_workers, max(workers + 1, workers * 2))
            reason = f"straggler_skew={skew:.2f}"
        elif burn_rate is not None and burn_rate >= policy.scale_up_burn_rate:
            target = min(policy.max_workers, workers + 1)
            reason = f"slo_burn={burn_rate:.2f}"
        elif (
            stall_rate <= policy.scale_down_stall_rate
            and workers > policy.min_workers
        ):
            target = max(policy.min_workers, workers // 2)
            reason = f"idle (stall_rate={stall_rate:.2f}/s)"
        if target == workers:
            return None
        self._cooldown_until_ms = now_ms + policy.cooldown_ms
        self.decisions.append(
            AutoscaleDecision(
                at_ms=now_ms, workers=workers, target=target, reason=reason
            )
        )
        return target
