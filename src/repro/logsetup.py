"""Logging configuration for the ``repro`` package (ISSUE 4 satellite).

Library modules log through namespaced stdlib loggers
(``repro.core.engine``, ``repro.minispe.parallel``, …) and never attach
handlers themselves — the package root carries a ``NullHandler``, so
importing ``repro`` stays silent by default (the stdlib contract for
libraries).  Entry points (the harness runner, benchmarks) opt into
console output with :func:`configure_logging`; ``runner --verbose``
wires it at DEBUG.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def configure_logging(
    verbose: bool = False,
    level: Optional[int] = None,
    stream=None,
) -> logging.Logger:
    """Attach one console handler to the ``repro`` root logger.

    ``level`` overrides the default (INFO, or DEBUG when ``verbose``).
    Calling it again replaces the previous console handler instead of
    stacking duplicates, so re-runs inside one process stay clean.
    Returns the configured logger.
    """
    if level is None:
        level = logging.DEBUG if verbose else logging.INFO
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_console", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    handler._repro_console = True
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
