"""Per-query CPU cost attribution with shared-work splitting.

Sharing makes naive per-query accounting wrong: one covering-group
evaluation serves every member query, so charging each member the full
evaluation over-counts, and charging only the "first" member starves the
rest.  Following the Shared Arrangements argument, amortized work must
be attributed *explicitly*: each unit of shared work is split equally
across the queries it served.

The engine exposes a **cost profile** — per stream, a list of work
entries ``{"queries": [...], "evaluations": n}`` where direct-predicate
entries carry the slot set sharing that predicate and covering-group
entries carry the group's member mask (``SharingGroup.slots_mask``).
:func:`attribute_costs` then splits the *measured* engine CPU total
proportionally over those work-unit weights.  Because attribution is a
proportional split of the measured total, the per-query shares sum to
the total exactly (the largest share absorbs the float remainder) — the
"within 1%" acceptance bound holds by construction, with the weights
deciding *fairness*, not *conservation*.

Profiles merge across shards with :func:`merge_cost_profiles` (counters
sum, keyed by stream + member set), mirroring ``sharing_summary()``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def slots_of(mask: int) -> List[int]:
    """Set-bit positions of a slot bitmask, ascending."""
    out: List[int] = []
    slot = 0
    while mask:
        if mask & 1:
            out.append(slot)
        mask >>= 1
        slot += 1
    return out


def attribute_costs(total_ns: int, profile: Dict) -> Dict[str, object]:
    """Split ``total_ns`` of measured CPU across queries by work weight.

    ``profile`` is an engine cost profile::

        {"streams": {stream: [{"kind": ..., "queries": [...],
                               "evaluations": n}, ...]},
         "unattributed_evaluations": n,        # retired-view work etc.
         "engine_cpu_ns": n}                   # optional; overrides total

    Each entry's ``evaluations`` is split equally across its member
    queries; per-query weights are then normalized against the total
    weight (including unattributed work) so Σ shares == ``total_ns``
    exactly.  Returns ``{"total_ns", "queries": {qid: ns},
    "unattributed_ns", "weights": {qid: work units}}``.
    """
    weights: Dict[str, float] = {}
    unattributed = float(profile.get("unattributed_evaluations", 0) or 0)
    for entries in profile.get("streams", {}).values():
        for entry in entries:
            members = entry.get("queries") or ()
            work = float(entry.get("evaluations", 0) or 0)
            if work <= 0:
                continue
            if not members:
                unattributed += work
                continue
            share = work / len(members)
            for qid in members:
                weights[qid] = weights.get(qid, 0.0) + share
    total_weight = sum(weights.values()) + unattributed
    result: Dict[str, object] = {
        "total_ns": total_ns,
        "queries": {},
        "unattributed_ns": 0,
        "weights": weights,
    }
    if total_ns <= 0 or total_weight <= 0:
        result["unattributed_ns"] = max(0, total_ns)
        return result
    shares: Dict[str, int] = {
        qid: int(total_ns * weight / total_weight)
        for qid, weight in weights.items()
    }
    unattributed_ns = int(total_ns * unattributed / total_weight)
    # Integer truncation leaves a remainder; hand it to the largest
    # consumer (or the idle bucket) so the shares sum to total exactly.
    remainder = total_ns - sum(shares.values()) - unattributed_ns
    if remainder:
        if shares:
            top = max(shares, key=lambda q: shares[q])
            shares[top] += remainder
        else:
            unattributed_ns += remainder
    result["queries"] = dict(sorted(shares.items()))
    result["unattributed_ns"] = unattributed_ns
    return result


def merge_cost_profiles(profiles: Iterable[Optional[Dict]]) -> Dict:
    """Combine shard cost profiles: entries with the same stream, kind,
    and member set sum their evaluations; CPU meters sum.

    Accepts both resolved entries (``"queries"`` lists) and raw shard
    entries (``"slots"`` bitmasks — workers cannot resolve slot→query,
    so the coordinator merges raw profiles and resolves afterwards).
    """
    merged: Dict = {
        "streams": {},
        "unattributed_evaluations": 0,
        "engine_cpu_ns": 0,
    }
    buckets: Dict[str, Dict] = {}
    for profile in profiles:
        if not profile:
            continue
        merged["unattributed_evaluations"] += profile.get(
            "unattributed_evaluations", 0
        )
        merged["engine_cpu_ns"] += profile.get("engine_cpu_ns", 0)
        for stream, entries in profile.get("streams", {}).items():
            bucket = buckets.setdefault(stream, {})
            for entry in entries:
                key = (
                    entry.get("kind", ""),
                    entry.get("slots", -1),
                    tuple(sorted(entry.get("queries") or ())),
                )
                slot = bucket.get(key)
                if slot is None:
                    slot = bucket[key] = {
                        "kind": entry.get("kind", ""),
                        "evaluations": 0.0,
                    }
                    if "slots" in entry:
                        slot["slots"] = entry["slots"]
                    else:
                        slot["queries"] = list(key[2])
                slot["evaluations"] += float(entry.get("evaluations", 0) or 0)
    merged["streams"] = {
        stream: [bucket[key] for key in sorted(bucket)]
        for stream, bucket in sorted(buckets.items())
    }
    return merged


def cost_summary(attribution: Dict, top: int = 8) -> List[Dict]:
    """Inspector/stats view: the ``top`` most expensive queries with
    their absolute and fractional shares."""
    total = attribution.get("total_ns", 0) or 0
    rows = [
        {
            "query_id": qid,
            "cpu_ns": ns,
            "share": (ns / total) if total else 0.0,
        }
        for qid, ns in attribution.get("queries", {}).items()
    ]
    rows.sort(key=lambda row: (-row["cpu_ns"], row["query_id"]))
    return rows[:top]
