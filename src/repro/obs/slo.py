"""Per-query / per-tenant latency SLOs over wire-to-delivery spans.

The serving layer closes a wire trace when a traced push's outputs reach
the subscriber send path; each closed trace yields one end-to-end
latency observation per delivered query.  This module turns those
observations into the paper-style latency report (p50/p95/p99 per query
and per tenant) plus an *actionable* signal: each query may declare an
SLO target, and the tracker computes a burn rate — the fraction of the
error budget being consumed over a sliding sample window:

    burn = (violating fraction in window) / (1 - objective)

``burn == 1.0`` means the query is exactly spending its budget;
sustained ``burn > 1`` means the SLO will be missed.  The autoscaler and
QoS shedding consume :meth:`SLOTracker.max_burn_rate` as a first-class
scale/shed signal alongside backpressure stalls and shard skew.

Snapshots follow the ``sharing_summary()`` merge conventions: counters
sum, targets max, reservoirs concatenate — so cross-shard / cross-server
merges are associative.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.minispe.metrics import Histogram

DEFAULT_OBJECTIVE = 0.99
"""Fraction of deliveries that must meet the latency target."""

DEFAULT_WINDOW = 256
"""Sliding observation window (per query) used for burn-rate computation."""

SLO_PERCENTILES = (50.0, 95.0, 99.0)


class SLOTracker:
    """Latency histograms + declared targets + burn rates.

    One tracker per server (or per engine when embedded).  All methods
    are cheap enough to sit on the traced-push close path: an observe is
    two histogram appends and a deque push.
    """

    __slots__ = (
        "objective",
        "window",
        "_targets",
        "_tenants",
        "_query_hist",
        "_tenant_hist",
        "_recent",
        "observed_total",
        "violations_total",
    )

    def __init__(
        self,
        objective: float = DEFAULT_OBJECTIVE,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.objective = objective
        self.window = window
        self._targets: Dict[str, float] = {}
        self._tenants: Dict[str, str] = {}
        self._query_hist: Dict[str, Histogram] = {}
        self._tenant_hist: Dict[str, Histogram] = {}
        self._recent: Dict[str, deque] = {}
        self.observed_total = 0
        self.violations_total = 0

    # -- declaration -------------------------------------------------------

    def declare(
        self, query_id: str, target_ms: Optional[float], tenant: Optional[str] = None
    ) -> None:
        """Register a query; ``target_ms=None`` means observe-only (no
        burn rate, latencies still tracked)."""
        if target_ms is not None and target_ms <= 0:
            raise ValueError(f"target_ms must be positive, got {target_ms}")
        if target_ms is not None:
            self._targets[query_id] = float(target_ms)
        if tenant is not None:
            self._tenants[query_id] = tenant

    def forget(self, query_id: str) -> None:
        """Drop per-query state (tenant aggregates are kept)."""
        self._targets.pop(query_id, None)
        self._tenants.pop(query_id, None)
        self._query_hist.pop(query_id, None)
        self._recent.pop(query_id, None)

    def target(self, query_id: str) -> Optional[float]:
        """The query's declared latency target in ms, if any."""
        return self._targets.get(query_id)

    # -- observation -------------------------------------------------------

    def observe(
        self, query_id: str, latency_ms: float, tenant: Optional[str] = None
    ) -> None:
        """Record one wire-to-delivery latency for ``query_id``."""
        if tenant is not None:
            self._tenants.setdefault(query_id, tenant)
        hist = self._query_hist.get(query_id)
        if hist is None:
            hist = self._query_hist[query_id] = Histogram(
                f"query_latency_ms:{query_id}"
            )
        hist.record(latency_ms)
        owner = self._tenants.get(query_id)
        if owner is not None:
            thist = self._tenant_hist.get(owner)
            if thist is None:
                thist = self._tenant_hist[owner] = Histogram(
                    f"tenant_latency_ms:{owner}"
                )
            thist.record(latency_ms)
        self.observed_total += 1
        target = self._targets.get(query_id)
        if target is None:
            return
        recent = self._recent.get(query_id)
        if recent is None:
            recent = self._recent[query_id] = deque(maxlen=self.window)
        violated = latency_ms > target
        recent.append(violated)
        if violated:
            self.violations_total += 1

    # -- reporting ---------------------------------------------------------

    def percentiles(self, query_id: str) -> Dict[str, float]:
        """``{"p50": ms, ...}`` from the query's latency reservoir."""
        hist = self._query_hist.get(query_id)
        if hist is None or not hist.count:
            return {}
        return {f"p{p:g}": hist.percentile(p) for p in SLO_PERCENTILES}

    def burn_rate(self, query_id: str) -> float:
        """Error-budget burn over the sliding window; 0.0 when no target
        is declared or nothing has been observed yet."""
        recent = self._recent.get(query_id)
        if not recent:
            return 0.0
        violating = sum(recent) / len(recent)
        return violating / (1.0 - self.objective)

    def max_burn_rate(self) -> float:
        """The hottest query's burn rate — the autoscaler/shedding signal."""
        if not self._recent:
            return 0.0
        return max(self.burn_rate(qid) for qid in self._recent)

    def burning_queries(self, threshold: float) -> List[str]:
        """Queries whose burn rate meets or exceeds ``threshold``."""
        return sorted(
            qid for qid in self._recent if self.burn_rate(qid) >= threshold
        )

    def summary(self) -> Dict:
        """The ``stats`` frame / inspector view."""
        queries = {}
        for qid, hist in sorted(self._query_hist.items()):
            entry = {
                "count": hist.count,
                "tenant": self._tenants.get(qid),
                "target_ms": self._targets.get(qid),
            }
            entry.update(self.percentiles(qid))
            if qid in self._targets:
                entry["burn_rate"] = self.burn_rate(qid)
            queries[qid] = entry
        tenants = {}
        for tenant, hist in sorted(self._tenant_hist.items()):
            tenants[tenant] = {
                "count": hist.count,
                **{f"p{p:g}": hist.percentile(p) for p in SLO_PERCENTILES},
            }
        return {
            "objective": self.objective,
            "observed_total": self.observed_total,
            "violations_total": self.violations_total,
            "max_burn_rate": self.max_burn_rate(),
            "queries": queries,
            "tenants": tenants,
        }

    # -- cross-process shipping --------------------------------------------

    def snapshot(self) -> Dict:
        """Picklable cumulative view; mergeable via
        :func:`merge_slo_snapshots` (counts sum, targets max, reservoirs
        concatenate)."""
        return {
            "objective": self.objective,
            "observed_total": self.observed_total,
            "violations_total": self.violations_total,
            "queries": {
                qid: {
                    "count": hist.count,
                    "reservoir": hist.reservoir(),
                    "target_ms": self._targets.get(qid),
                    "tenant": self._tenants.get(qid),
                    "recent": list(self._recent.get(qid, ())),
                }
                for qid, hist in self._query_hist.items()
            },
            "tenants": {
                tenant: {"count": hist.count, "reservoir": hist.reservoir()}
                for tenant, hist in self._tenant_hist.items()
            },
        }


def merge_slo_snapshots(snapshots: Iterable[Dict]) -> Dict:
    """Associatively combine tracker snapshots (sum counts, max targets,
    concatenate reservoirs/windows) — the sharing_summary() convention."""
    merged: Dict = {
        "objective": DEFAULT_OBJECTIVE,
        "observed_total": 0,
        "violations_total": 0,
        "queries": {},
        "tenants": {},
    }
    for snapshot in snapshots:
        if not snapshot:
            continue
        merged["objective"] = snapshot.get("objective", merged["objective"])
        merged["observed_total"] += snapshot.get("observed_total", 0)
        merged["violations_total"] += snapshot.get("violations_total", 0)
        for qid, entry in snapshot.get("queries", {}).items():
            slot = merged["queries"].setdefault(
                qid,
                {
                    "count": 0,
                    "reservoir": [],
                    "target_ms": None,
                    "tenant": None,
                    "recent": [],
                },
            )
            slot["count"] += entry.get("count", 0)
            slot["reservoir"].extend(entry.get("reservoir", ()))
            target = entry.get("target_ms")
            if target is not None:
                slot["target_ms"] = (
                    target
                    if slot["target_ms"] is None
                    else max(slot["target_ms"], target)
                )
            if entry.get("tenant") is not None:
                slot["tenant"] = entry["tenant"]
            slot["recent"].extend(entry.get("recent", ()))
        for tenant, entry in snapshot.get("tenants", {}).items():
            slot = merged["tenants"].setdefault(
                tenant, {"count": 0, "reservoir": []}
            )
            slot["count"] += entry.get("count", 0)
            slot["reservoir"].extend(entry.get("reservoir", ()))
    return merged


def summary_from_snapshot(snapshot: Dict) -> Dict:
    """The :meth:`SLOTracker.summary` view of a (merged) snapshot —
    percentiles recomputed from the concatenated reservoirs."""
    objective = snapshot.get("objective", DEFAULT_OBJECTIVE)
    queries = {}
    max_burn = 0.0
    for qid, entry in sorted(snapshot.get("queries", {}).items()):
        samples = sorted(entry.get("reservoir", ()))
        out = {
            "count": entry.get("count", 0),
            "tenant": entry.get("tenant"),
            "target_ms": entry.get("target_ms"),
        }
        if samples:
            for p in SLO_PERCENTILES:
                rank = max(0, min(len(samples) - 1, int(p / 100.0 * len(samples))))
                out[f"p{p:g}"] = samples[rank]
        recent = entry.get("recent", ())
        if entry.get("target_ms") is not None and recent:
            burn = (sum(recent) / len(recent)) / (1.0 - objective)
            out["burn_rate"] = burn
            max_burn = max(max_burn, burn)
        queries[qid] = out
    tenants = {}
    for tenant, entry in sorted(snapshot.get("tenants", {}).items()):
        samples = sorted(entry.get("reservoir", ()))
        out = {"count": entry.get("count", 0)}
        if samples:
            for p in SLO_PERCENTILES:
                rank = max(0, min(len(samples) - 1, int(p / 100.0 * len(samples))))
                out[f"p{p:g}"] = samples[rank]
        tenants[tenant] = out
    return {
        "objective": objective,
        "observed_total": snapshot.get("observed_total", 0),
        "violations_total": snapshot.get("violations_total", 0),
        "max_burn_rate": max_burn,
        "queries": queries,
        "tenants": tenants,
    }
