"""``repro.obs``: low-overhead runtime telemetry (ISSUE 4 tentpole).

Off by default and compiled out of the hot paths: engines hold
``obs = None`` unless ``EngineConfig(observe=True)``, so the data path
pays a single ``is not None`` check per delivery.  When enabled, one
:class:`Observability` hub per engine bundles the three planes:

* :class:`~repro.obs.registry.MetricsRegistry` — hierarchical
  (engine/operator/query/shard-scoped) counters, gauges, histograms;
* :class:`~repro.obs.tracing.TraceCollector` — sampled exclusive-time
  span tracing of the tuple lifecycle, yielding per-operator latency
  breakdowns, plus :meth:`Observability.span` for control-plane spans
  (query deployment, checkpoint, recovery);
* :class:`~repro.obs.events.EventLog` — a structured ring of
  control-plane events with a JSONL exporter.

Cross-process runs piggyback worker deltas on the
:class:`~repro.minispe.parallel.ProcessShardPool` ack frames; the
coordinator merges them (see
:class:`repro.core.parallel_engine.ProcessAStreamEngine`), so
``--backend process`` reports per-shard operator stats and straggler
skew from the same snapshot surface.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter_ns
from typing import Dict, Optional

from repro.obs.events import EventLog
from repro.obs.exposition import render_prometheus
from repro.obs.registry import (
    MetricsRegistry,
    MetricsScope,
    merge_snapshots,
    relabel_snapshot,
    render_key,
)
from repro.obs.tracing import (
    TraceCollector,
    WireTraceBook,
    breakdown_from_snapshot,
    merge_trace_snapshots,
    new_trace_id,
)

__all__ = [
    "EventLog",
    "MetricsRegistry",
    "MetricsScope",
    "Observability",
    "TraceCollector",
    "WireTraceBook",
    "breakdown_from_snapshot",
    "merge_snapshots",
    "merge_trace_snapshots",
    "new_trace_id",
    "relabel_snapshot",
    "render_key",
    "render_prometheus",
    "write_flight_record",
    "write_obs_artifacts",
]


class Observability:
    """One engine's telemetry hub: registry + tracer + event log."""

    def __init__(
        self,
        sample_every: int = 32,
        event_capacity: int = 65_536,
        max_traces: int = 512,
    ) -> None:
        self.registry = MetricsRegistry()
        self.events = EventLog(capacity=event_capacity)
        self.tracer = TraceCollector(
            sample_every=sample_every, max_traces=max_traces
        )

    @contextmanager
    def span(self, kind: str, t_ms: Optional[int] = None, **fields):
        """Time a control-plane operation; record + log it.

        Records the wall duration into the ``span_ms{span=kind}``
        histogram and emits one ``kind`` event carrying ``duration_ms``
        plus ``fields`` (fields may be updated by the caller through the
        yielded dict before the block exits).
        """
        extra: Dict = dict(fields)
        started = perf_counter_ns()
        try:
            yield extra
        finally:
            duration_ms = (perf_counter_ns() - started) / 1e6
            self.registry.histogram("span_ms", span=kind).record(duration_ms)
            self.events.emit(kind, t_ms=t_ms, duration_ms=duration_ms, **extra)

    def snapshot(self) -> Dict:
        """The full JSON-able telemetry snapshot."""
        return {
            "registry": self.registry.snapshot(),
            "trace": self.tracer.snapshot(),
            "events_total": self.events.total_emitted,
            "events_dropped": self.events.dropped,
        }


def write_obs_artifacts(
    snapshot: Dict,
    events_jsonl: str,
    out_dir,
    prefix: str,
) -> Dict[str, str]:
    """Write the standard artifact set for one observed run.

    ``obs_<prefix>_metrics.json`` (full snapshot incl. trace),
    ``obs_<prefix>_metrics.prom`` (Prometheus text exposition of the
    registry), ``obs_<prefix>_events.jsonl`` (event log).  Returns the
    written paths keyed by artifact kind.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {}
    metrics_path = out / f"obs_{prefix}_metrics.json"
    metrics_path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True, default=str) + "\n"
    )
    paths["metrics"] = str(metrics_path)
    prom_path = out / f"obs_{prefix}_metrics.prom"
    prom_path.write_text(render_prometheus(snapshot.get("registry", {})))
    paths["prometheus"] = str(prom_path)
    events_path = out / f"obs_{prefix}_events.jsonl"
    events_path.write_text(events_jsonl + ("\n" if events_jsonl else ""))
    paths["events"] = str(events_path)
    return paths


def write_flight_record(
    out_dir,
    prefix: str,
    info: Optional[Dict] = None,
    snapshot: Optional[Dict] = None,
    wire_traces: Optional[Dict] = None,
    events_jsonl: str = "",
) -> Dict[str, str]:
    """Dump a post-incident flight record.

    Written automatically when the serving gate performs a recovery: one
    ``flight_<prefix>.json`` holding the recovery info, the telemetry
    snapshot (when observe is on), and the wire-trace tail — the last
    traced pushes leading up to the incident — plus a companion
    ``flight_<prefix>_events.jsonl`` with the merged event log.  Returns
    the written paths keyed by artifact kind.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, str] = {}
    record = {
        "kind": "flight_record",
        "info": info or {},
        "snapshot": snapshot or {},
        "wire_traces": wire_traces or {},
    }
    record_path = out / f"flight_{prefix}.json"
    record_path.write_text(
        json.dumps(record, indent=2, sort_keys=True, default=str) + "\n"
    )
    paths["record"] = str(record_path)
    if events_jsonl:
        events_path = out / f"flight_{prefix}_events.jsonl"
        events_path.write_text(events_jsonl + "\n")
        paths["events"] = str(events_path)
    return paths
