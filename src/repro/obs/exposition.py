"""Prometheus-style text exposition for registry snapshots.

Renders the JSON-able snapshots of
:class:`repro.obs.registry.MetricsRegistry` in the Prometheus text
format (``metric{label="value"} 123``) so a run's final metrics drop
into any Prometheus-compatible toolchain.  Counters expose a
``_total``-suffixed sample, gauges expose their value, histograms
expose ``_count`` / ``_sum`` and quantile-labelled samples (a summary,
which matches the reservoir percentiles we actually have).
"""

from __future__ import annotations

import re
from typing import Dict

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    return _NAME_OK.sub("_", name)


def _labels(labels: Dict[str, str], extra: Dict[str, str] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return f"{{{body}}}"


def _escape_label_value(value) -> str:
    # Text-format spec: label values escape backslash, double-quote, and
    # line feed (backslash first so the other escapes stay single).
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


HELP_TEXT: Dict[str, str] = {
    "serve_dead_letter_depth": "Pushes parked after recovery+retry both failed",
    "serve_dead_lettered": "Records dead-lettered since server start",
    "serve_recoveries": "Engine recoveries performed by the serving gate",
    "serve_worker_failures": "Worker deaths surfaced by liveness probing",
    "migrations": "Live shard-pool resizes started",
    "migration_pause_ms": "Ingest pause per migration phase (export/step)",
    "worker_failures": "Proactively detected worker deaths, by reason",
    "mttr_ms": "Supervised mean-time-to-recovery distribution",
    "serve_wire_e2e_ms": "Wire-to-delivery latency of trace-stamped pushes",
    "serve_traced_pushes": "Push frames carrying a wire trace context",
    "serve_trace_stage_ns": "Cumulative wire-span self time, by stage",
    "query_latency_ms": "Per-query wire-to-delivery latency distribution",
    "tenant_latency_ms": "Per-tenant wire-to-delivery latency distribution",
    "slo_burn_rate": "Error-budget burn over the sliding SLO window",
    "slo_violations": "Deliveries that exceeded their declared SLO target",
    "slo_pressure_active": "Subscriptions shedding early due to SLO burn",
    "query_cost_ns": "Attributed engine CPU per query (shared work split)",
    "engine_cpu_ns": "Measured engine CPU consumed by the data path",
}
"""# HELP text for degradation-visibility metrics (ISSUE 6): operators
should be able to *see* recoveries, migrations, and dead-letters in the
exposition, not infer them from throughput dips."""


def render_prometheus(
    snapshot: Dict[str, dict], help_text: Dict[str, str] = None
) -> str:
    """Render one registry snapshot as Prometheus exposition text.

    ``help_text`` (defaulting to :data:`HELP_TEXT`) adds ``# HELP``
    comments for known metric names.
    """
    if help_text is None:
        help_text = HELP_TEXT
    lines = []
    seen_types = set()
    for entry in sorted(
        snapshot.values(),
        key=lambda e: (e["name"], sorted(e["labels"].items())),
    ):
        name = _sanitize(entry["name"])
        kind = entry["type"]
        if kind == "counter":
            if name not in seen_types:
                if entry["name"] in help_text:
                    lines.append(
                        f"# HELP {name}_total {help_text[entry['name']]}"
                    )
                lines.append(f"# TYPE {name}_total counter")
                seen_types.add(name)
            lines.append(
                f"{name}_total{_labels(entry['labels'])} {entry['value']}"
            )
        elif kind == "gauge":
            if name not in seen_types:
                if entry["name"] in help_text:
                    lines.append(f"# HELP {name} {help_text[entry['name']]}")
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{_labels(entry['labels'])} {entry['value']}")
        else:  # histogram snapshot -> summary exposition
            if name not in seen_types:
                if entry["name"] in help_text:
                    lines.append(f"# HELP {name} {help_text[entry['name']]}")
                lines.append(f"# TYPE {name} summary")
                seen_types.add(name)
            for key, value in entry.items():
                if key.startswith("p") and key[1:].replace(".", "").isdigit():
                    quantile = float(key[1:]) / 100.0
                    lines.append(
                        f"{name}{_labels(entry['labels'], {'quantile': f'{quantile:g}'})}"
                        f" {value}"
                    )
            lines.append(
                f"{name}_count{_labels(entry['labels'])} {entry['count']}"
            )
            lines.append(f"{name}_sum{_labels(entry['labels'])} {entry['sum']}")
    return "\n".join(lines) + ("\n" if lines else "")
