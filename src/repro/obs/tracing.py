"""Sampled span tracing of the tuple lifecycle (ISSUE 4 tentpole).

The paper's latency markers (§3.4) give one end-to-end number per
sampled tuple; this module extends them into a *breakdown*: when a
source push is sampled, every operator the element (and everything it
triggers) flows through is timed as a span, and the per-operator
**exclusive** times are accumulated — source→selection→join/agg→router→
sink stage by stage.

The substrate makes this exact rather than statistical: the in-process
runtime executes synchronously and depth-first, so a downstream
operator's ``process`` runs *inside* its upstream's collector call.
Spans therefore nest perfectly on a stack, and

    exclusive(parent) = inclusive(parent) − Σ inclusive(direct children)

attributes routing/fan-out cost to the emitting stage.  Summing all
exclusive times per sampled push equals the push's wall time minus only
the source-level routing prologue, which is why the acceptance check
("stage sums within 5% of end-to-end") holds by construction.

Tracing state is coordinator- or worker-local and never touches record
payloads, keys, or routing: observe-on runs are byte-identical to
observe-off runs.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

MAX_TRACES = 512
"""Per-tuple breakdown entries retained (stage totals are unbounded)."""

MAX_WIRE_TRACES = 256
"""Closed wire-to-delivery trace records retained in the book's tail."""


def new_trace_id() -> int:
    """A fresh 63-bit wire trace id (fits a signed int64 everywhere)."""
    return random.getrandbits(63) | 1


class TraceCollector:
    """Exclusive-time span stack + per-stage aggregates.

    One collector per runtime.  ``maybe_start``/``finish`` bracket a
    sampled source push; ``enter``/``exit`` bracket each operator
    delivery while a trace is live (the runtime only calls them when
    :attr:`active` is set, so unsampled pushes pay one attribute check).
    """

    __slots__ = (
        "sample_every",
        "active",
        "stage_totals",
        "e2e_count",
        "e2e_total_ns",
        "traces",
        "_pushes",
        "_stack",
        "_stage_self",
        "_tuple_start_ns",
        "_max_traces",
        "_force_next",
    )

    def __init__(self, sample_every: int = 32, max_traces: int = MAX_TRACES) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.active = False
        self.stage_totals: Dict[str, List[int]] = {}
        """stage -> [span count, exclusive ns total]."""
        self.e2e_count = 0
        self.e2e_total_ns = 0
        self.traces: List[Dict] = []
        self._pushes = 0
        self._stack: List[List] = []  # [stage, start_ns, child_inclusive_ns]
        self._stage_self: Dict[str, int] = {}
        self._tuple_start_ns = 0
        self._max_traces = max_traces
        self._force_next = False

    # -- per-push lifecycle ------------------------------------------------

    def force_next(self) -> None:
        """Make the next :meth:`maybe_start` sample regardless of cadence.

        Wire-traced pushes carry an explicit sample bit; forcing keeps the
        per-operator breakdown aligned with the wire span instead of
        leaving it to the 1-in-N modulus.
        """
        self._force_next = True

    def maybe_start(self) -> bool:
        """Sampling decision for one source push; True = trace it."""
        self._pushes += 1
        if self._force_next:
            self._force_next = False
        elif self._pushes % self.sample_every:
            return False
        self.active = True
        self._stage_self = {}
        self._stack.clear()
        self._tuple_start_ns = time.perf_counter_ns()
        return True

    def enter(self, stage: str) -> None:
        """Open a span for one operator delivery."""
        self._stack.append([stage, time.perf_counter_ns(), 0])

    def exit(self) -> int:
        """Close the innermost span, crediting exclusive time.

        Returns the span's inclusive nanoseconds — the root span's
        return value is the push's end-to-end time (see :meth:`finish`).
        """
        stage, start_ns, child_ns = self._stack.pop()
        inclusive = time.perf_counter_ns() - start_ns
        self._stage_self[stage] = (
            self._stage_self.get(stage, 0) + inclusive - child_ns
        )
        if self._stack:
            self._stack[-1][2] += inclusive
        return inclusive

    def finish(
        self, timestamp: Optional[int] = None, total_ns: Optional[int] = None
    ) -> Dict:
        """End the sampled push; fold its breakdown into the aggregates.

        ``total_ns`` should be the root span's inclusive time: exclusive
        stage times then telescope to it *exactly* (tracer bookkeeping
        outside the root span is not part of the tuple's processing).
        Without it, the wall time since :meth:`maybe_start` is used,
        which additionally counts the tracer's own entry/exit overhead.
        """
        if total_ns is None:
            total_ns = time.perf_counter_ns() - self._tuple_start_ns
        self.active = False
        self._stack.clear()
        stages = self._stage_self
        self._stage_self = {}
        for stage, self_ns in stages.items():
            slot = self.stage_totals.get(stage)
            if slot is None:
                self.stage_totals[stage] = [1, self_ns]
            else:
                slot[0] += 1
                slot[1] += self_ns
        self.e2e_count += 1
        self.e2e_total_ns += total_ns
        trace = {
            "timestamp": timestamp,
            "total_ns": total_ns,
            "stages": stages,
        }
        if len(self.traces) < self._max_traces:
            self.traces.append(trace)
        return trace

    # -- reporting ---------------------------------------------------------

    def breakdown(self) -> Dict:
        """Aggregate per-stage exclusive totals vs end-to-end wall time.

        ``coverage`` is Σ stage exclusive / Σ end-to-end — the fraction
        of sampled wall time attributed to a specific operator (the
        remainder is source-level routing + tracer bookkeeping).
        """
        stage_sum = sum(total for _, total in self.stage_totals.values())
        return {
            "sampled": self.e2e_count,
            "e2e_total_ns": self.e2e_total_ns,
            "e2e_mean_ns": (
                self.e2e_total_ns / self.e2e_count if self.e2e_count else 0.0
            ),
            "stage_sum_ns": stage_sum,
            "coverage": (
                stage_sum / self.e2e_total_ns if self.e2e_total_ns else 0.0
            ),
            "stages": {
                stage: {
                    "count": count,
                    "total_ns": total,
                    "mean_ns": total / count if count else 0.0,
                }
                for stage, (count, total) in sorted(self.stage_totals.items())
            },
        }

    # -- cross-process shipping --------------------------------------------

    def snapshot(self, drain_traces: bool = False) -> Dict:
        """A picklable cumulative view; optionally drains the trace list
        (workers drain so repeated shipments don't duplicate entries)."""
        traces = self.traces
        if drain_traces:
            self.traces = []
        else:
            traces = list(traces)
        return {
            "stage_totals": {
                stage: list(slot) for stage, slot in self.stage_totals.items()
            },
            "e2e_count": self.e2e_count,
            "e2e_total_ns": self.e2e_total_ns,
            "traces": traces,
        }


def merge_trace_snapshots(snapshots) -> Dict:
    """Combine worker trace snapshots into one cumulative view."""
    merged: Dict = {
        "stage_totals": {},
        "e2e_count": 0,
        "e2e_total_ns": 0,
        "traces": [],
    }
    for snapshot in snapshots:
        if not snapshot:
            continue
        for stage, (count, total) in snapshot.get("stage_totals", {}).items():
            slot = merged["stage_totals"].get(stage)
            if slot is None:
                merged["stage_totals"][stage] = [count, total]
            else:
                slot[0] += count
                slot[1] += total
        merged["e2e_count"] += snapshot.get("e2e_count", 0)
        merged["e2e_total_ns"] += snapshot.get("e2e_total_ns", 0)
        merged["traces"].extend(snapshot.get("traces", ()))
    merged["traces"] = merged["traces"][:MAX_TRACES]
    return merged


class WireTraceBook:
    """Wire-to-delivery span accounting for trace-stamped push frames.

    A traced push carries a boundary-stamp chain — monotonic clock reads
    taken at each hand-off (client encode, server receipt, pre-ingest,
    post-ingest, post-delivery).  Each wire stage's self-time is the
    difference of two adjacent stamps, so the stage times telescope to
    the end-to-end span *exactly*, by arithmetic identity — there is no
    sampling error to tolerate.  The per-operator breakdown produced by
    :class:`TraceCollector` then nests inside the ``shard`` stage.

    The book keeps unbounded per-stage aggregates (same shape as a
    collector snapshot, so :func:`breakdown_from_snapshot` renders both)
    plus a bounded tail of closed trace records for the flight recorder.
    """

    __slots__ = ("stage_totals", "e2e_count", "e2e_total_ns", "_tail", "_by_id")

    def __init__(self, max_tail: int = MAX_WIRE_TRACES) -> None:
        self.stage_totals: Dict[str, List[int]] = {}
        self.e2e_count = 0
        self.e2e_total_ns = 0
        self._tail: deque = deque(maxlen=max_tail)
        self._by_id: Dict[int, Dict] = {}

    def close(
        self,
        trace_id: int,
        boundaries: Sequence[Tuple[str, int]],
        queries: Sequence[str] = (),
    ) -> Dict:
        """Fold one completed boundary chain into the book.

        ``boundaries`` is the ordered stamp chain ``[(label, t_ns), ...]``
        where entry *i*'s label names the stage that *ends* at stamp *i*
        (the first label is conventionally ``"ingest"`` and carries no
        span).  Returns the closed trace record.
        """
        spans: List[Tuple[str, int]] = []
        for (_, prev_ns), (stage, t_ns) in zip(boundaries, boundaries[1:]):
            span_ns = t_ns - prev_ns
            spans.append((stage, span_ns))
            slot = self.stage_totals.get(stage)
            if slot is None:
                self.stage_totals[stage] = [1, span_ns]
            else:
                slot[0] += 1
                slot[1] += span_ns
        e2e_ns = boundaries[-1][1] - boundaries[0][1] if len(boundaries) > 1 else 0
        self.e2e_count += 1
        self.e2e_total_ns += e2e_ns
        record = {
            "id": trace_id,
            "e2e_ns": e2e_ns,
            "spans": spans,
            "queries": list(queries),
        }
        evicted = None
        if self._tail.maxlen and len(self._tail) == self._tail.maxlen:
            evicted = self._tail[0]
        self._tail.append(record)
        if evicted is not None:
            self._by_id.pop(evicted["id"], None)
        self._by_id[trace_id] = record
        return record

    def attach_detail(self, trace_id: int, detail) -> bool:
        """Hang backend-specific detail (e.g. per-shard worker spans) off
        a closed trace still present in the tail."""
        record = self._by_id.get(trace_id)
        if record is None:
            return False
        record.setdefault("detail", []).append(detail)
        return True

    def tail(self) -> List[Dict]:
        """The most recent closed traces (bounded by ``max_tail``)."""
        return list(self._tail)

    def snapshot(self) -> Dict:
        """Same shape as a :class:`TraceCollector` snapshot, so the
        merge/breakdown helpers apply to wire spans unchanged."""
        return {
            "stage_totals": {
                stage: list(slot) for stage, slot in self.stage_totals.items()
            },
            "e2e_count": self.e2e_count,
            "e2e_total_ns": self.e2e_total_ns,
            "traces": [
                {
                    "timestamp": rec["id"],
                    "total_ns": rec["e2e_ns"],
                    "stages": dict(rec["spans"]),
                }
                for rec in self._tail
            ],
        }


def breakdown_from_snapshot(snapshot: Dict) -> Dict:
    """The :meth:`TraceCollector.breakdown` view of a (merged) snapshot."""
    stage_totals = snapshot.get("stage_totals", {})
    e2e_count = snapshot.get("e2e_count", 0)
    e2e_total = snapshot.get("e2e_total_ns", 0)
    stage_sum = sum(total for _, total in stage_totals.values())
    return {
        "sampled": e2e_count,
        "e2e_total_ns": e2e_total,
        "e2e_mean_ns": e2e_total / e2e_count if e2e_count else 0.0,
        "stage_sum_ns": stage_sum,
        "coverage": stage_sum / e2e_total if e2e_total else 0.0,
        "stages": {
            stage: {
                "count": count,
                "total_ns": total,
                "mean_ns": total / count if count else 0.0,
            }
            for stage, (count, total) in sorted(stage_totals.items())
        },
    }
