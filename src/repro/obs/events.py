"""Structured control-plane event log: ring buffer + JSONL export.

Every control-plane transition the engine makes — query create/delete,
changelog sequence advance, slice create/expire, checkpoint/restore,
fault injection, backpressure stall — is appended as one JSON-able dict
with a monotonically increasing ``seq``, so a run's full control history
can be replayed from the export (the acceptance check for ISSUE 4's
event log).  The buffer is a bounded ring: soak runs keep the newest
``capacity`` events and count what they overwrote.

Workers ship their events to the coordinator incrementally through
:meth:`EventLog.take_new` (a drain cursor riding the ack frames); the
coordinator re-sequences them into its own log, tagging the source
shard, so one merged, ordered history exists per run.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

DEFAULT_CAPACITY = 65_536


class EventLog:
    """An append-only ring of structured control-plane events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[Dict] = deque(maxlen=capacity)
        self._next_seq = 0
        self._ship_cursor = -1

    def emit(self, kind: str, t_ms: Optional[int] = None, **fields) -> Dict:
        """Append one event; returns the stored dict (with its seq)."""
        event = {"seq": self._next_seq, "kind": kind, "t_ms": t_ms}
        event.update(fields)
        self._next_seq += 1
        self._events.append(event)
        return event

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the log's lifetime (including overwritten)."""
        return self._next_seq

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring bound."""
        return self._next_seq - len(self._events)

    def events(self) -> List[Dict]:
        """All retained events, oldest first."""
        return list(self._events)

    def tail(self, n: int) -> List[Dict]:
        """The newest ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def of_kind(self, *kinds: str) -> List[Dict]:
        """Retained events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [event for event in self._events if event["kind"] in wanted]

    # -- shipping (cross-process piggyback) --------------------------------

    def take_new(self, limit: Optional[int] = None) -> List[Dict]:
        """Drain events not yet shipped (up to ``limit``), advancing the
        cursor; the worker calls this when building an ack payload."""
        fresh = [
            event for event in self._events if event["seq"] > self._ship_cursor
        ]
        if limit is not None:
            fresh = fresh[:limit]
        if fresh:
            self._ship_cursor = fresh[-1]["seq"]
        return fresh

    def absorb(self, events: Iterable[Dict], **labels) -> int:
        """Re-emit foreign events into this log (coordinator-side merge).

        Each absorbed event gets a fresh local ``seq`` (arrival order)
        and keeps its origin's sequence as ``src_seq``; ``labels``
        (typically ``shard=N``) tag the source.  Returns the count.
        """
        count = 0
        for event in events:
            fields = {
                k: v for k, v in event.items() if k not in ("seq", "kind", "t_ms")
            }
            fields["src_seq"] = event["seq"]
            fields.update(labels)
            self.emit(event["kind"], t_ms=event.get("t_ms"), **fields)
            count += 1
        return count

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The retained events as one JSON object per line."""
        return "\n".join(
            json.dumps(event, sort_keys=True, default=str)
            for event in self._events
        )

    def write_jsonl(self, path) -> int:
        """Write the retained events to ``path``; returns the count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")
        return len(self._events)
