"""Hierarchical, label-scoped metrics registry (ISSUE 4 tentpole).

Built on the dependency-free primitives in :mod:`repro.minispe.metrics`:
a metric here is a ``(name, labels)`` pair, where labels identify the
scope it was recorded in — ``operator="join:A~B"``, ``shard="2"``,
``query="q17"`` and so on.  :class:`MetricsRegistry` hands out live
:class:`~repro.minispe.metrics.Counter` / ``Gauge`` / ``Histogram``
objects (lazily created, cached per key) so hot paths pay one dict hit
at *instrumentation-site setup* and plain attribute arithmetic at record
time.

Snapshots are plain JSON-able dicts so they cross process boundaries as
pickled ack payloads and land in JSONL/Prometheus exports unchanged:

* counters snapshot to their value;
* gauges snapshot to their value plus a ``merge`` hint (``sum`` for
  additive state like live slices, ``max`` for global facts like the
  query-set width that every shard reports identically);
* histograms snapshot to count/sum/min/max/percentiles plus a small
  deterministic :meth:`~repro.minispe.metrics.Histogram.reservoir`, so
  merged percentiles can be re-estimated from the union of reservoirs.

:func:`merge_snapshots` combines per-shard snapshots into cluster
totals; :func:`relabel_snapshot` stamps a snapshot with extra labels
(the coordinator tags each worker's snapshot with ``shard=N`` before
merging, keeping per-shard stats addressable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.minispe.metrics import Counter, Gauge, Histogram

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]
"""(metric name, sorted ``(label, value)`` pairs)."""

HISTOGRAM_PERCENTILES = (50.0, 90.0, 99.0)
"""Percentiles materialised into every histogram snapshot."""

RESERVOIR_SIZE = 64
"""Order-statistic sketch size shipped per histogram snapshot."""


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    return (name, tuple(sorted(labels.items())))


def render_key(name: str, labels: Dict[str, str]) -> str:
    """Stable flat string for a metric: ``name{a=1,b=2}``."""
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{body}}}"


class MetricsScope:
    """A registry view with a fixed set of base labels.

    Scopes nest — ``registry.scope(shard="2").scope(operator="agg:A")``
    — and every metric created through a scope carries the accumulated
    labels, which is how engine/operator/query/shard hierarchies are
    expressed without a tree structure in the hot path.
    """

    __slots__ = ("_registry", "_labels")

    def __init__(self, registry: "MetricsRegistry", labels: Dict[str, str]) -> None:
        self._registry = registry
        self._labels = labels

    @property
    def labels(self) -> Dict[str, str]:
        """The labels this scope stamps on every metric."""
        return dict(self._labels)

    def scope(self, **labels: str) -> "MetricsScope":
        """A child scope with these labels added."""
        merged = dict(self._labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return MetricsScope(self._registry, merged)

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter in this scope."""
        return self._registry.counter(name, **{**self._labels, **labels})

    def gauge(self, name: str, merge: str = "sum", **labels: str) -> Gauge:
        """Get or create a gauge in this scope."""
        return self._registry.gauge(name, merge=merge, **{**self._labels, **labels})

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create a histogram in this scope."""
        return self._registry.histogram(name, **{**self._labels, **labels})


class MetricsRegistry:
    """Label-scoped counters, gauges, and histograms with snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._gauge_merge: Dict[MetricKey, str] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- creation ----------------------------------------------------------

    def scope(self, **labels: str) -> MetricsScope:
        """A scope stamping ``labels`` on every metric made through it."""
        return MetricsScope(self, {k: str(v) for k, v in labels.items()})

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with these labels."""
        key = _key(name, {k: str(v) for k, v in labels.items()})
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(name)
            self._counters[key] = counter
        return counter

    def gauge(self, name: str, merge: str = "sum", **labels: str) -> Gauge:
        """Get or create the gauge ``name``.

        ``merge`` declares cross-snapshot semantics: ``sum`` for
        additive quantities (state sizes split across shards), ``max``
        for globally replicated facts (registry width, active queries),
        ``last`` for whoever-wrote-last values.
        """
        if merge not in ("sum", "max", "last"):
            raise ValueError(f"unknown gauge merge policy {merge!r}")
        key = _key(name, {k: str(v) for k, v in labels.items()})
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[key] = gauge
            self._gauge_merge[key] = merge
        return gauge

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram ``name`` with these labels."""
        key = _key(name, {k: str(v) for k, v in labels.items()})
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[key] = histogram
        return histogram

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able flat view: rendered key → metric entry."""
        view: Dict[str, dict] = {}
        for (name, labels), counter in self._counters.items():
            view[render_key(name, dict(labels))] = {
                "name": name,
                "labels": dict(labels),
                "type": "counter",
                "value": counter.value,
            }
        for key, gauge in self._gauges.items():
            name, labels = key
            view[render_key(name, dict(labels))] = {
                "name": name,
                "labels": dict(labels),
                "type": "gauge",
                "merge": self._gauge_merge[key],
                "value": gauge.value,
            }
        for (name, labels), histogram in self._histograms.items():
            entry = {
                "name": name,
                "labels": dict(labels),
                "type": "histogram",
                "count": histogram.count,
                "sum": histogram.mean() * histogram.count,
                "min": histogram.minimum(),
                "max": histogram.maximum(),
                "reservoir": histogram.reservoir(RESERVOIR_SIZE),
            }
            quantiles = histogram.quantiles(HISTOGRAM_PERCENTILES)
            for p, value in zip(HISTOGRAM_PERCENTILES, quantiles):
                entry[f"p{p:g}"] = value
            view[render_key(name, dict(labels))] = entry
        return view


def relabel_snapshot(snapshot: Dict[str, dict], **labels: str) -> Dict[str, dict]:
    """A copy of ``snapshot`` with extra labels stamped on every entry."""
    extra = {k: str(v) for k, v in labels.items()}
    out: Dict[str, dict] = {}
    for entry in snapshot.values():
        merged = dict(entry["labels"])
        merged.update(extra)
        copy = dict(entry)
        copy["labels"] = merged
        out[render_key(entry["name"], merged)] = copy
    return out


def _merged_histogram(entries: List[dict]) -> dict:
    first = entries[0]
    reservoir: List[float] = []
    count = 0
    total = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    for entry in entries:
        count += entry["count"]
        total += entry["sum"]
        if entry["count"]:
            minimum = (
                entry["min"] if minimum is None else min(minimum, entry["min"])
            )
            maximum = (
                entry["max"] if maximum is None else max(maximum, entry["max"])
            )
        reservoir.extend(entry.get("reservoir", ()))
    reservoir.sort()
    merged = {
        "name": first["name"],
        "labels": dict(first["labels"]),
        "type": "histogram",
        "count": count,
        "sum": total,
        "min": minimum if minimum is not None else 0.0,
        "max": maximum if maximum is not None else 0.0,
        "reservoir": reservoir[: RESERVOIR_SIZE * 2],
    }
    sketch = Histogram("merged")
    for value in reservoir:
        sketch.record(value)
    for p, value in zip(
        HISTOGRAM_PERCENTILES, sketch.quantiles(HISTOGRAM_PERCENTILES)
    ):
        merged[f"p{p:g}"] = value
    return merged


def merge_snapshots(
    snapshots: Iterable[Dict[str, dict]],
    drop_labels: Tuple[str, ...] = (),
) -> Dict[str, dict]:
    """Combine several snapshots into one.

    Counters sum; gauges follow their ``merge`` hint; histograms merge
    count/sum/min/max and re-estimate percentiles from the reservoir
    union.  ``drop_labels`` removes labels before grouping — merging
    per-shard snapshots with ``drop_labels=("shard",)`` yields cluster
    totals.
    """
    grouped: Dict[str, List[dict]] = {}
    for snapshot in snapshots:
        for entry in snapshot.values():
            labels = {
                k: v for k, v in entry["labels"].items() if k not in drop_labels
            }
            grouped.setdefault(
                render_key(entry["name"], labels), []
            ).append({**entry, "labels": labels})
    merged: Dict[str, dict] = {}
    for key, entries in grouped.items():
        kind = entries[0]["type"]
        if kind == "counter":
            merged[key] = {
                **entries[0],
                "value": sum(entry["value"] for entry in entries),
            }
        elif kind == "gauge":
            policy = entries[0].get("merge", "sum")
            if policy == "max":
                value = max(entry["value"] for entry in entries)
            elif policy == "last":
                value = entries[-1]["value"]
            else:
                value = sum(entry["value"] for entry in entries)
            merged[key] = {**entries[0], "value": value}
        else:
            merged[key] = _merged_histogram(entries)
    return merged
