"""Shared selection: tagging tuples with query-sets (§3.1.2).

One shared selection operator serves *all* queries reading a stream.  For
each tuple it evaluates every active query's predicate once, assembles
the resulting query-set bitset, and appends it to the tuple (as the
record tag ``"qs"``).  Tuples no query is interested in are dropped right
here, which avoids redundant shuffling downstream (§3.2.2).

Consistency with ad-hoc changes is event-time based: a changelog marker
carries the event time of the query change, and a tuple is tagged with
the query view of the epoch *its own timestamp* falls into — even when
bounded out-of-orderness delivers it after a newer changelog.  The
operator therefore keeps a short history of epoch views.

Each epoch view's predicate table is compiled through the semantic-
overlap planner (:mod:`repro.core.planner`): value-identical predicates
dedup to one entry (as before), and *overlapping* — not identical —
predicates are rewritten onto shared sub-plans (covering check +
interval stabbing index + per-query residual filters).  The rewrite is
exact, so the emitted qs-bitsets are byte-identical with the optimizer
on or off.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import operator as _compare

from repro.core.changelog import Changelog
from repro.core.planner import (
    SelectionPlan,
    compile_selection_plan,
    normalize,
)
from repro.core.query import Comparison, FieldPredicate, Predicate, TruePredicate
from repro.minispe.operators import Operator
from repro.minispe.record import ChangelogMarker, Record

_COMPARE_FNS = {
    Comparison.LT: _compare.lt,
    Comparison.GT: _compare.gt,
    Comparison.EQ: _compare.eq,
    Comparison.LE: _compare.le,
    Comparison.GE: _compare.ge,
}
"""Comparison → C-level compare function, for the columnar fast path."""

QS_TAG = "qs"
"""Record tag holding the query-set bits."""

EPOCH_TAG = "epoch"
"""Record tag holding the changelog epoch the tuple was tagged under."""


@dataclass
class _EpochView:
    """The queries watching this stream during one epoch.

    ``predicates`` maps each *distinct* predicate to the bitset of slots
    that use it: queries sharing a predicate are evaluated once and
    their bits OR-ed in together.  ``plan`` is the compiled evaluation
    plan over those pairs — overlapping predicates merged into covering
    groups with residual filters (the §7 sharing optimizer); it is a
    derived cache, never snapshotted.
    """

    start_ms: int
    sequence: int
    predicates: List[Tuple[Predicate, int]]
    """(predicate, slots-bitset) pairs, one entry per distinct predicate."""
    plan: SelectionPlan
    columnar_ok: bool
    """True when every direct predicate can run on field columns."""


class SharedSelectionOperator(Operator):
    """Tags records of one stream with query-set bitsets.

    ``stream`` names the input this operator serves; a query's predicate
    is looked up via ``query.predicate_for(stream)``.
    """

    VIEW_RETENTION_MS = 60_000
    """Epoch views older than this behind the watermark are pruned; it
    bounds metadata growth while leaving generous room for late records."""

    def __init__(
        self,
        stream: str,
        profile: bool = False,
        dedup_predicates: bool = True,
        share_overlapping: bool = True,
        sharing_stats=None,
    ) -> None:
        super().__init__(f"shared_select:{stream}")
        self.stream = stream
        self.sharing_stats = sharing_stats
        """Optional :class:`repro.core.statistics.SharingStatistics`
        collector (shared across this stream's parallel instances)."""
        self.dedup_predicates = dedup_predicates
        """Evaluate a predicate shared by several queries only once.

        This is the paper's future-work sharing optimisation at the
        selection stage; disable for the ablation benchmark."""
        self.share_overlapping = share_overlapping
        """Rewrite overlapping (non-identical) predicates onto shared
        covering groups with residual filters (ISSUE 8); disable to fall
        back to identical-only dedup."""
        self._slot_predicates: Dict[int, Predicate] = {}
        self._views: List[_EpochView] = [self._make_view(0, 0, [])]
        self._view_starts: List[int] = [0]
        self.profile = profile
        self._evaluations = 0
        self._retired_group_stats = {
            "evaluations": 0,
            "cover_skips": 0,
            "index_probes": 0,
            "residual_checks": 0,
        }
        self.records_dropped = 0
        self.profile_ns = 0

    # -- changelog handling ----------------------------------------------------

    def _make_view(
        self,
        start_ms: int,
        sequence: int,
        predicates: List[Tuple[Predicate, int]],
    ) -> _EpochView:
        """Compile one epoch's predicate table into an evaluation plan."""
        plan = compile_selection_plan(
            predicates,
            share_overlapping=self.share_overlapping and self.dedup_predicates,
        )
        columnar_ok = all(
            type(predicate) in (FieldPredicate, TruePredicate)
            or normalize(predicate) is not None
            for predicate, _ in plan.direct
        )
        return _EpochView(
            start_ms=start_ms,
            sequence=sequence,
            predicates=predicates,
            plan=plan,
            columnar_ok=columnar_ok,
        )

    def on_marker(self, marker: ChangelogMarker) -> None:
        self._apply_changelog(marker.changelog, marker.timestamp)
        self.output(marker)

    def _apply_changelog(self, changelog: Changelog, timestamp_ms: int) -> None:
        for deactivation in changelog.deleted:
            self._slot_predicates.pop(deactivation.slot, None)
            if self.sharing_stats is not None:
                self.sharing_stats.forget_slot(deactivation.slot)
        for activation in changelog.created:
            if self.stream in activation.query.streams:
                self._slot_predicates[activation.slot] = (
                    activation.query.predicate_for(self.stream)
                )
            else:
                # A created query that ignores this stream still voids the
                # slot's previous meaning here; deletion above handled the
                # reuse case, so nothing to add.
                self._slot_predicates.pop(activation.slot, None)
        view = self._make_view(
            timestamp_ms, changelog.sequence, self._group_predicates()
        )
        self._views.append(view)
        self._view_starts.append(timestamp_ms)

    def _group_predicates(self) -> List[Tuple[Predicate, int]]:
        """Group slots by distinct predicate (identity for UDFs).

        Hashable value-predicates (the generated ``FieldPredicate`` and
        ``TruePredicate`` dataclasses) deduplicate by value; unhashable
        black-box predicates fall back to one group per slot.
        """
        if not self.dedup_predicates:
            return [
                (predicate, 1 << slot)
                for slot, predicate in sorted(self._slot_predicates.items())
            ]
        groups: Dict[Any, Tuple[Predicate, int]] = {}
        for slot, predicate in sorted(self._slot_predicates.items()):
            try:
                key = (type(predicate), hash(predicate), predicate)
            except TypeError:
                key = ("id", id(predicate))
            existing = groups.get(key)
            if existing is None:
                groups[key] = (predicate, 1 << slot)
            else:
                groups[key] = (existing[0], existing[1] | (1 << slot))
        return list(groups.values())

    # -- tagging ---------------------------------------------------------------

    def process(self, record: Record) -> None:
        started = time.perf_counter_ns() if self.profile else 0
        view = self._view_for(record.timestamp)
        plan = view.plan
        bits = 0
        evaluations = 0
        value = record.value
        for predicate, slots_mask in plan.direct:
            evaluations += 1
            if predicate.evaluate(value):
                bits |= slots_mask
        for group in plan.groups:
            bits |= group.evaluate(value)
        self._evaluations += evaluations
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started
        if bits == 0:
            self.records_dropped += 1
            return
        if self.sharing_stats is not None:
            self.sharing_stats.observe(bits)
        new_tags = dict(record.tags)
        new_tags[QS_TAG] = bits
        new_tags[EPOCH_TAG] = view.sequence
        self.output(
            Record(
                timestamp=record.timestamp,
                value=value,
                key=record.key,
                tags=new_tags,
            )
        )

    def process_batch(self, records: List[Record]) -> None:
        """Vectorized tagging: one epoch lookup per run of timestamps in
        the same view, counters accumulated locally, and all surviving
        records emitted as a single downstream batch."""
        started = time.perf_counter_ns() if self.profile else 0
        view_for = self._view_for
        stats = self.sharing_stats
        evaluations = 0
        dropped = 0
        out: List[Record] = []
        view = None
        view_low = view_high = 0  # timestamp range the cached view covers
        direct: List[Tuple[Predicate, int]] = []
        groups = []
        for record in records:
            timestamp = record.timestamp
            if view is None or not (view_low <= timestamp < view_high):
                view = view_for(timestamp)
                view_low, view_high = self._view_span(view)
                direct = view.plan.direct
                groups = view.plan.groups
            bits = 0
            value = record.value
            for predicate, slots_mask in direct:
                evaluations += 1
                if predicate.evaluate(value):
                    bits |= slots_mask
            for group in groups:
                bits |= group.evaluate(value)
            if bits == 0:
                dropped += 1
                continue
            if stats is not None:
                stats.observe(bits)
            new_tags = dict(record.tags)
            new_tags[QS_TAG] = bits
            new_tags[EPOCH_TAG] = view.sequence
            out.append(Record(timestamp, value, record.key, new_tags))
        self._evaluations += evaluations
        self.records_dropped += dropped
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started
        self.output_batch(out)

    def _bind_columnar(self, plan: SelectionPlan, fields):
        """Compile one plan against a batch's field columns.

        Returns ``(compiled, conj_probes, group_probes)``: ``compiled``
        is the classic (column, compare, constant, slots) tuple list
        over the direct predicates, ``conj_probes`` row-index evaluators
        of normalizable non-field direct predicates (flattened
        conjunctions), ``group_probes`` those of the sharing groups.
        ``None`` means a black-box predicate needs the row value —
        caller falls back to the row path.
        """
        compiled: List[Tuple[Any, Any, Any, int]] = []
        conj_probes = []
        group_probes = []
        for predicate, slots_mask in plan.direct:
            kind = type(predicate)
            if kind is FieldPredicate:
                compiled.append(
                    (
                        fields[predicate.field_index],
                        _COMPARE_FNS[predicate.op],
                        predicate.constant,
                        slots_mask,
                    )
                )
            elif kind is TruePredicate:
                compiled.append((None, None, None, slots_mask))
            else:
                normalized = normalize(predicate)
                if normalized is None:
                    return None
                checks = tuple(
                    (f, iv.start_key, iv.end_key)
                    for f, iv in normalized.constraints
                )

                def probe_row(row: int, _checks=checks, _mask=slots_mask) -> int:
                    for f, start_key, end_key in _checks:
                        if not (start_key <= (fields[f][row], 0) < end_key):
                            return 0
                    return _mask

                conj_probes.append(probe_row)
        for group in plan.groups:
            group_probes.append(group.bind_columns(fields))
        return compiled, conj_probes, group_probes

    def process_columnar(self, batch) -> None:
        """Columnar tagging: predicates run straight on the batch's
        parallel field columns, and a row's value object is built only
        when some query actually wants the row.

        This is the wire-ingest fast path — the binary codec decodes
        frames into columnar :class:`~repro.minispe.record.RecordBatch`
        objects, and for selective queries most rows die here having
        never existed as Python objects.  Sharing groups probe their
        stabbing index on the anchor column directly (the covering scan
        of ISSUE 8).  Black-box (UDF) predicates need the row value, so
        any view holding one falls back to the row-at-a-time path;
        semantics (epoch views by event time, counters, sharing stats,
        output order) are identical either way.
        """
        for view in self._views:
            if not view.columnar_ok:
                self.process_batch(batch.records)
                return
        started = time.perf_counter_ns() if self.profile else 0
        timestamps = batch.timestamps()
        keys = batch.keys()
        fields = batch.field_columns()
        view_for = self._view_for
        stats = self.sharing_stats
        row_value = batch.row_value
        evaluations = 0
        dropped = 0
        out: List[Record] = []
        append = out.append
        view = None
        view_low = view_high = 0
        sequence = 0
        compiled: List[Tuple[Any, Any, Any, int]] = []
        conj_probes = []
        group_probes = []
        for row, timestamp in enumerate(timestamps):
            if view is None or not (view_low <= timestamp < view_high):
                view = view_for(timestamp)
                view_low, view_high = self._view_span(view)
                sequence = view.sequence
                bound = self._bind_columnar(view.plan, fields)
                if bound is None:
                    # A UDF arrived via a mid-batch epoch: replay the
                    # remaining rows through the row path.
                    self._evaluations += evaluations
                    self.records_dropped += dropped
                    if self.profile:
                        self.profile_ns += time.perf_counter_ns() - started
                    self.output_batch(out)
                    self.process_batch(batch.records[row:])
                    return
                compiled, conj_probes, group_probes = bound
            bits = 0
            for column, compare, constant, slots_mask in compiled:
                evaluations += 1
                if column is None or compare(column[row], constant):
                    bits |= slots_mask
            for probe in conj_probes:
                evaluations += 1
                bits |= probe(row)
            for probe in group_probes:
                bits |= probe(row)
            if bits == 0:
                dropped += 1
                continue
            if stats is not None:
                stats.observe(bits)
            append(
                Record(
                    timestamp,
                    row_value(row),
                    keys[row],
                    {QS_TAG: bits, EPOCH_TAG: sequence},
                )
            )
        self._evaluations += evaluations
        self.records_dropped += dropped
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started
        self.output_batch(out)

    def _view_for(self, timestamp_ms: int) -> _EpochView:
        """The epoch view covering ``timestamp_ms`` (event-time lookup)."""
        index = bisect_right(self._view_starts, timestamp_ms) - 1
        return self._views[index]

    def _view_span(self, view: _EpochView) -> Tuple[int, int]:
        """Half-open timestamp interval ``view`` is in force for."""
        starts = self._view_starts
        index = bisect_right(starts, view.start_ms) - 1
        high = (
            starts[index + 1]
            if index + 1 < len(starts)
            else float("inf")
        )
        return view.start_ms, high

    # -- maintenance -------------------------------------------------------------

    def on_watermark(self, watermark) -> None:
        self.prune_views_before(watermark.timestamp - self.VIEW_RETENTION_MS)
        self.output(watermark)

    def _retire_views(self, views: List[_EpochView]) -> None:
        """Fold dropped views' group counters into the lifetime totals."""
        retired = self._retired_group_stats
        for view in views:
            for group in view.plan.groups:
                retired["evaluations"] += group.evaluations
                retired["cover_skips"] += group.cover_skips
                retired["index_probes"] += group.index_probes
                retired["residual_checks"] += group.residual_checks

    def prune_views_before(self, timestamp_ms: int) -> int:
        """Drop epoch views fully superseded before ``timestamp_ms``.

        Keeps at least the view in force at ``timestamp_ms`` so late
        records within the allowed lateness still resolve.  Returns the
        number of views dropped.
        """
        keep_from = max(0, bisect_right(self._view_starts, timestamp_ms) - 1)
        dropped = keep_from
        if dropped:
            self._retire_views(self._views[:keep_from])
            self._views = self._views[keep_from:]
            self._view_starts = self._view_starts[keep_from:]
        return dropped

    # -- introspection -----------------------------------------------------------

    @property
    def predicate_evaluations(self) -> int:
        """Predicate-evaluation units spent, over the operator lifetime.

        Direct predicates count one per tuple as before; a sharing group
        counts one per covering probe (however many members it resolves)
        plus one per residual filter checked — the actual work done, so
        the ablation benches read sharing wins straight off this counter.
        """
        total = self._evaluations + self._retired_group_stats["evaluations"]
        for view in self._views:
            for group in view.plan.groups:
                total += group.evaluations
        return total

    @property
    def active_query_count(self) -> int:
        """Queries currently watching this stream."""
        return len(self._slot_predicates)

    def sharing_group_stats(self) -> Dict[str, Any]:
        """Sharing-optimizer shape and lifetime counters for this stream.

        Structure (group/member/segment counts) describes the *current*
        epoch view; counters aggregate over the operator lifetime,
        including pruned views.
        """
        plan = self._views[-1].plan
        lifetime = dict(self._retired_group_stats)
        for view in self._views:
            for group in view.plan.groups:
                lifetime["evaluations"] += group.evaluations
                lifetime["cover_skips"] += group.cover_skips
                lifetime["index_probes"] += group.index_probes
                lifetime["residual_checks"] += group.residual_checks
        return {
            "groups": len(plan.groups),
            "grouped_slots": plan.grouped_slots,
            "direct_predicates": len(plan.direct),
            "folded_unsatisfiable_slots": bin(plan.folded_slots).count("1"),
            "group_members": [group.member_count for group in plan.groups],
            "group_evaluations": lifetime["evaluations"],
            "cover_skips": lifetime["cover_skips"],
            "index_probes": lifetime["index_probes"],
            "residual_checks": lifetime["residual_checks"],
            "plan": plan.describe(),
        }

    def cost_profile(self) -> Dict[str, Any]:
        """Work units by slot membership, for per-query cost attribution.

        Direct-predicate evaluations (``self._evaluations``, one per
        tuple per direct entry) are split equally across the current
        plan's direct entries — exact within an epoch, since every
        direct predicate runs once per tuple.  Each live covering group
        reports its own probe + residual counters against its member
        mask (``SharingGroup.slots_mask``).  Work from retired epoch
        views is reported as ``unattributed`` — its member masks are
        gone with the views.
        """
        plan = self._views[-1].plan
        direct: List[Dict[str, Any]] = []
        if plan.direct and self._evaluations:
            per_entry = self._evaluations / len(plan.direct)
            direct = [
                {"slots": slots_mask, "evaluations": per_entry}
                for _, slots_mask in plan.direct
            ]
        groups: List[Dict[str, Any]] = []
        group_work: Dict[int, float] = {}
        for view in self._views:
            for group in view.plan.groups:
                work = float(group.evaluations + group.residual_checks)
                if work:
                    group_work[group.slots_mask] = (
                        group_work.get(group.slots_mask, 0.0) + work
                    )
        groups = [
            {"slots": mask, "evaluations": work}
            for mask, work in sorted(group_work.items())
        ]
        retired = self._retired_group_stats
        return {
            "direct": direct,
            "groups": groups,
            "unattributed": float(
                retired["evaluations"] + retired["residual_checks"]
            ),
        }

    def snapshot(self) -> Any:
        # Lifetime work counters travel with the state: a migrated shard
        # must not forget the evaluations it already charged (the
        # cross-shard sharing_summary() merge sums them), and a
        # checkpoint-restore must roll them back to checkpoint time so
        # input-log replay re-accumulates exactly once.
        lifetime = dict(self._retired_group_stats)
        for view in self._views:
            for group in view.plan.groups:
                lifetime["evaluations"] += group.evaluations
                lifetime["cover_skips"] += group.cover_skips
                lifetime["index_probes"] += group.index_probes
                lifetime["residual_checks"] += group.residual_checks
        return {
            "slot_predicates": dict(self._slot_predicates),
            "views": [
                (view.start_ms, view.sequence, list(view.predicates))
                for view in self._views
            ],
            "evaluations": self._evaluations,
            "group_stats": lifetime,
        }

    def restore(self, snapshot: Any) -> None:
        self._slot_predicates = dict(snapshot["slot_predicates"])
        self._views = [
            self._make_view(start, sequence, list(preds))
            for start, sequence, preds in snapshot["views"]
        ]
        self._view_starts = [view.start_ms for view in self._views]
        # Freshly compiled views start their group counters at zero; the
        # snapshot's lifetime totals seed the retired bucket, replacing
        # (not adding to) whatever this operator counted before restore.
        self._evaluations = snapshot.get("evaluations", 0)
        self._retired_group_stats = {
            "evaluations": 0,
            "cover_skips": 0,
            "index_probes": 0,
            "residual_checks": 0,
        }
        self._retired_group_stats.update(snapshot.get("group_stats", {}))
