"""A SQL front-end for the paper's query templates (Figures 7 and 8).

The paper specifies its workload in SQL::

    SELECT * FROM A, B [RANGE v1] [SLICE v2]
    WHERE A.KEY = B.KEY AND A.F1 > 10 AND B.F0 <= 5

    SELECT SUM(A.FIELD1) FROM A [RANGE v1] [SLICE v2]
    WHERE A.F2 >= 7 GROUP BY A.KEY

:func:`parse_query` turns such statements into the corresponding
:mod:`repro.core.query` objects:

* one stream, ``SELECT *`` → :class:`SelectionQuery`;
* one stream, an aggregate → :class:`AggregationQuery` (``RANGE/SLICE``
  time windows or ``SESSION v`` gap windows);
* two streams, ``SELECT *`` → :class:`JoinQuery` (requires the
  ``A.KEY = B.KEY`` equi-join conjunct);
* two or more streams with an aggregate → :class:`ComplexQuery`
  (§4.7); an optional ``AGGREGATE RANGE x [SLICE y]`` clause sets the
  aggregation window, defaulting to the join window.

Field references: ``A.FIELD1 .. A.FIELD5`` use the paper's 1-based
naming (``FIELD1`` is ``fields[0]``); the shorthand ``A.F0 .. A.F4`` is
0-based.  Window values are seconds by default; ``500ms`` is accepted.
Predicates must be a conjunction (``AND``) of field-vs-constant
comparisons, matching the generated workload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    Comparison,
    ComplexQuery,
    FieldPredicate,
    JoinQuery,
    Predicate,
    Query,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)


class SqlError(ValueError):
    """Raised for statements outside the supported template grammar."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+(?:\.\d+)?(?:ms|s)?)"
    r"|(?P<op><=|>=|==|=|<|>)"
    r"|(?P<punct>[(),*.])"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r")"
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "RANGE", "SLICE",
    "SESSION", "KEY", "AGGREGATE",
}

_AGG_FUNCTIONS = {
    "SUM": AggregationKind.SUM,
    "COUNT": AggregationKind.COUNT,
    "MIN": AggregationKind.MIN,
    "MAX": AggregationKind.MAX,
    "AVG": AggregationKind.AVG,
}

_OPS = {
    "=": Comparison.EQ,
    "==": Comparison.EQ,
    "<": Comparison.LT,
    ">": Comparison.GT,
    "<=": Comparison.LE,
    ">=": Comparison.GE,
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | op | punct | word
    text: str
    position: int


def _tokenize(statement: str) -> List[_Token]:
    tokens = []
    position = 0
    while position < len(statement):
        match = _TOKEN_RE.match(statement, position)
        if match is None or match.end() == position:
            remainder = statement[position:].strip()
            if not remainder:
                break
            raise SqlError(
                f"cannot tokenize {remainder[:20]!r} at offset {position}"
            )
        for kind in ("number", "op", "punct", "word"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text, match.start(kind)))
                break
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, statement: str) -> None:
        self.statement = statement
        self.tokens = _tokenize(statement)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError(f"unexpected end of statement: {self.statement!r}")
        self.index += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token and token.kind == "word" and token.text.upper() == word:
            self.index += 1
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            token = self._peek()
            found = token.text if token else "end of statement"
            raise SqlError(f"expected {word}, found {found!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token and token.kind == "punct" and token.text == punct:
            self.index += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            token = self._peek()
            found = token.text if token else "end of statement"
            raise SqlError(f"expected {punct!r}, found {found!r}")

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_word("SELECT")
        aggregate = self._parse_select_list()
        self._expect_word("FROM")
        streams = self._parse_stream_list()
        window = self._parse_window(allow_session=len(streams) == 1)
        agg_window = self._parse_aggregate_window()
        predicates, key_joined = self._parse_where(streams)
        group_by = self._parse_group_by(streams)
        if self._peek() is not None:
            raise SqlError(f"trailing input from {self._peek().text!r}")
        return self._build(
            streams, aggregate, window, agg_window, predicates, key_joined,
            group_by,
        )

    def _parse_select_list(
        self,
    ) -> Optional[Tuple[AggregationKind, Optional[Tuple[str, int]]]]:
        """``*`` → None; ``SUM(A.FIELD1)`` → (kind, field ref)."""
        if self._accept_punct("*"):
            return None
        token = self._next()
        if token.kind != "word" or token.text.upper() not in _AGG_FUNCTIONS:
            raise SqlError(
                f"expected * or an aggregate function, found {token.text!r}"
            )
        kind = _AGG_FUNCTIONS[token.text.upper()]
        self._expect_punct("(")
        if self._accept_punct("*"):
            if kind is not AggregationKind.COUNT:
                raise SqlError(f"{kind.value.upper()}(*) is not supported")
            field_ref = None
        else:
            field_ref = self._parse_field_ref()
        self._expect_punct(")")
        return (kind, field_ref)

    def _parse_stream_list(self) -> List[str]:
        streams = [self._parse_stream_name()]
        while self._accept_punct(","):
            streams.append(self._parse_stream_name())
        if len(set(streams)) != len(streams):
            raise SqlError(f"duplicate stream in FROM: {streams}")
        return streams

    def _parse_stream_name(self) -> str:
        token = self._next()
        if token.kind != "word" or token.text.upper() in _KEYWORDS:
            raise SqlError(f"expected a stream name, found {token.text!r}")
        return token.text

    def _parse_window(self, allow_session: bool) -> Optional[WindowSpec]:
        if self._accept_word("RANGE"):
            length_ms = self._parse_duration()
            slide_ms = length_ms
            if self._accept_word("SLICE"):
                slide_ms = self._parse_duration()
            return WindowSpec.sliding(length_ms, slide_ms)
        if self._accept_word("SESSION"):
            if not allow_session:
                raise SqlError("SESSION windows apply to one-stream queries")
            return WindowSpec.session(self._parse_duration())
        return None

    def _parse_aggregate_window(self) -> Optional[WindowSpec]:
        if self._accept_word("AGGREGATE"):
            window = self._parse_window(allow_session=False)
            if window is None:
                raise SqlError("AGGREGATE must be followed by RANGE [SLICE]")
            return window
        return None

    def _parse_duration(self) -> int:
        token = self._next()
        if token.kind != "number":
            raise SqlError(f"expected a duration, found {token.text!r}")
        text = token.text
        if text.endswith("ms"):
            return int(float(text[:-2]))
        if text.endswith("s"):
            return int(float(text[:-1]) * 1_000)
        return int(float(text) * 1_000)  # bare numbers are seconds

    def _parse_field_ref(self) -> Tuple[str, int]:
        """``A.FIELD1`` (1-based) or ``A.F0`` (0-based) → (stream, index)."""
        stream = self._parse_stream_name()
        self._expect_punct(".")
        token = self._next()
        name = token.text.upper()
        match = re.fullmatch(r"FIELD(\d+)", name)
        if match:
            index = int(match.group(1)) - 1
        else:
            match = re.fullmatch(r"F(\d+)", name)
            if not match:
                raise SqlError(
                    f"expected FIELDn or Fn after {stream}., found {token.text!r}"
                )
            index = int(match.group(1))
        if not 0 <= index < 5:
            raise SqlError(f"field index out of range in {stream}.{token.text}")
        return stream, index

    def _parse_where(
        self, streams: List[str]
    ) -> Tuple[Dict[str, List[FieldPredicate]], bool]:
        """Conjunctive predicates per stream + whether KEYs are joined."""
        predicates: Dict[str, List[FieldPredicate]] = {s: [] for s in streams}
        key_joined = False
        if not self._accept_word("WHERE"):
            return predicates, key_joined
        while True:
            key_conjunct = self._try_parse_key_equality(streams)
            if key_conjunct:
                key_joined = True
            else:
                stream, field_index = self._parse_field_ref()
                if stream not in predicates:
                    raise SqlError(
                        f"stream {stream!r} in WHERE is not in FROM"
                    )
                op_token = self._next()
                if op_token.kind != "op":
                    raise SqlError(
                        f"expected a comparison, found {op_token.text!r}"
                    )
                constant_token = self._next()
                if constant_token.kind != "number":
                    raise SqlError(
                        f"expected a numeric constant, found "
                        f"{constant_token.text!r}"
                    )
                predicates[stream].append(
                    FieldPredicate(
                        field_index,
                        _OPS[op_token.text],
                        float(constant_token.text)
                        if "." in constant_token.text
                        else int(constant_token.text),
                    )
                )
            if not self._accept_word("AND"):
                break
        return predicates, key_joined

    def _try_parse_key_equality(self, streams: List[str]) -> bool:
        """``X.KEY = Y.KEY`` — consumed if present at the cursor."""
        saved = self.index
        try:
            left = self._parse_stream_name()
            self._expect_punct(".")
            if not self._accept_word("KEY"):
                raise SqlError("not a key reference")
            op = self._next()
            if op.kind != "op" or _OPS.get(op.text) is not Comparison.EQ:
                raise SqlError("keys must be compared with =")
            right = self._parse_stream_name()
            self._expect_punct(".")
            self._expect_word("KEY")
        except SqlError:
            self.index = saved
            return False
        if left not in streams or right not in streams:
            raise SqlError(
                f"key join references unknown stream: {left}.KEY = {right}.KEY"
            )
        if left == right:
            raise SqlError("a key join needs two distinct streams")
        return True

    def _parse_group_by(self, streams: List[str]) -> bool:
        if not self._accept_word("GROUP"):
            return False
        self._expect_word("BY")
        # Accept both `GROUP BY A.KEY` and plain `GROUP BY KEY`.
        saved = self.index
        token = self._next()
        if token.kind == "word" and token.text.upper() == "KEY":
            return True
        self.index = saved
        stream = self._parse_stream_name()
        if stream not in streams:
            raise SqlError(f"GROUP BY references unknown stream {stream!r}")
        self._expect_punct(".")
        self._expect_word("KEY")
        return True

    # -- assembly -------------------------------------------------------------

    def _build(
        self,
        streams: List[str],
        aggregate,
        window: Optional[WindowSpec],
        agg_window: Optional[WindowSpec],
        predicates: Dict[str, List[FieldPredicate]],
        key_joined: bool,
        group_by: bool,
    ) -> Query:
        def combined(stream: str) -> Predicate:
            conjuncts = predicates[stream]
            if not conjuncts:
                return TruePredicate()
            if len(conjuncts) == 1:
                return conjuncts[0]
            return ConjunctionPredicate(tuple(conjuncts))

        if len(streams) == 1:
            stream = streams[0]
            if aggregate is None:
                if window is not None:
                    raise SqlError(
                        "SELECT * over one stream is a pure selection; "
                        "windows need an aggregate or a join"
                    )
                return SelectionQuery(stream=stream, predicate=combined(stream))
            if window is None:
                raise SqlError("aggregation queries need RANGE or SESSION")
            if not group_by:
                raise SqlError("aggregation queries need GROUP BY KEY")
            kind, field_ref = aggregate
            return AggregationQuery(
                stream=stream,
                predicate=combined(stream),
                window_spec=window,
                aggregation=self._aggregation_spec(kind, field_ref, streams),
            )

        # Multi-stream: join (SELECT *) or complex (aggregate).
        if not key_joined:
            raise SqlError("multi-stream queries need A.KEY = B.KEY")
        if window is None:
            raise SqlError("join queries need a RANGE window")
        if aggregate is None:
            if len(streams) != 2:
                raise SqlError(
                    "SELECT * joins take exactly two streams; use an "
                    "aggregate for deeper pipelines (§4.7)"
                )
            return JoinQuery(
                left_stream=streams[0],
                right_stream=streams[1],
                left_predicate=combined(streams[0]),
                right_predicate=combined(streams[1]),
                window_spec=window,
            )
        if not group_by:
            raise SqlError("aggregation queries need GROUP BY KEY")
        kind, field_ref = aggregate
        return ComplexQuery(
            join_streams=tuple(streams),
            predicates=tuple(combined(stream) for stream in streams),
            join_window=window,
            aggregation_window=agg_window or window,
            aggregation=self._aggregation_spec(kind, field_ref, streams),
        )

    @staticmethod
    def _aggregation_spec(
        kind: AggregationKind,
        field_ref: Optional[Tuple[str, int]],
        streams: List[str],
    ) -> AggregationSpec:
        if field_ref is None:
            return AggregationSpec(AggregationKind.COUNT)
        stream, index = field_ref
        if stream != streams[0]:
            raise SqlError(
                f"aggregates read the leading stream {streams[0]!r} "
                f"(JoinedTuple field semantics), found {stream!r}"
            )
        return AggregationSpec(kind, field_index=index)


@dataclass(frozen=True)
class ConjunctionPredicate(Predicate):
    """AND of several field predicates (hashable, so dedup still works)."""

    conjuncts: Tuple[FieldPredicate, ...]

    def evaluate(self, value) -> bool:
        for conjunct in self.conjuncts:
            if not conjunct.evaluate(value):
                return False
        return True

    def __str__(self) -> str:
        return " AND ".join(str(conjunct) for conjunct in self.conjuncts)


def parse_query(statement: str) -> Query:
    """Parse one template-grammar SQL statement into a query object.

    Raises :class:`SqlError` with a human-readable message for anything
    outside the supported grammar.
    """
    if not statement or not statement.strip():
        raise SqlError("empty statement")
    return _Parser(statement).parse()
