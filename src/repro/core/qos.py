"""Quality-of-service monitoring (§3.4).

In an ad-hoc multi-query environment, QoS spans more metrics than a
classic SPE benchmark: individual query throughput, overall query
throughput, data throughput, data (event-time) latency, and query
deployment latency.  :class:`QoSMonitor` collects all of them from a
running :class:`~repro.core.engine.AStreamEngine`:

* event-time latency is sampled at the sinks, like AStream's extension
  of Flink's latency markers — the monitor hooks the router's delivery
  callback and periodically samples a tuple, measuring the distance
  between its event time and the current (virtual) processing time;
* deployment latency comes from the engine's deployment events;
* throughput counters come from the per-query channels.

If measurements exceed acceptable boundaries, an external component can
react (elastic scaling is out of scope — §3.4); the monitor exposes
:meth:`violations` for that purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.minispe.metrics import Histogram


@dataclass
class QoSThresholds:
    """Acceptable boundaries; None disables a check."""

    max_event_time_latency_ms: Optional[float] = None
    max_deployment_latency_ms: Optional[float] = None
    min_query_throughput: Optional[float] = None
    max_slo_burn_rate: Optional[float] = None
    """Per-query SLO error-budget burn rate (violating fraction over the
    allowed fraction) above which the query is flagged; the serving
    layer uses the same threshold to apply subscription pressure."""


class QoSMonitor:
    """Samples QoS metrics from an engine's sinks and deployment events.

    ``now_fn`` supplies the current virtual processing time, so latency
    samples measure event-time lag the way the paper's driver does
    (Figure 5: tuple event time vs its emission time from the SUT).
    """

    def __init__(
        self,
        now_fn: Optional[Callable[[], int]] = None,
        sample_every: int = 100,
        thresholds: Optional[QoSThresholds] = None,
    ) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.now_ms = 0
        """Fallback clock when no ``now_fn`` is given; the driver updates
        it every step."""
        self._now_fn = now_fn or (lambda: self.now_ms)
        self._sample_every = sample_every
        self.thresholds = thresholds or QoSThresholds()
        self.latency = Histogram("event_time_latency_ms")
        self.latency_series: List[tuple] = []
        """Timestamped samples ``(now_ms, lag_ms)`` for timeline figures."""
        self.per_query_latency: Dict[str, Histogram] = {}
        self.per_query_delivered: Dict[str, int] = {}
        self.per_query_burn: Dict[str, float] = {}
        """Latest SLO burn rate reported per query (serving layer)."""
        self._since_sample = 0

    # -- wiring ---------------------------------------------------------------

    def on_deliver(self, query_id: str, timestamp: int) -> None:
        """Router delivery hook: count, and periodically sample latency."""
        self.per_query_delivered[query_id] = (
            self.per_query_delivered.get(query_id, 0) + 1
        )
        self._since_sample += 1
        if self._since_sample >= self._sample_every:
            self._since_sample = 0
            now = self._now_fn()
            lag = now - timestamp
            self.latency.record(lag)
            self.latency_series.append((now, lag))
            per_query = self.per_query_latency.get(query_id)
            if per_query is None:
                per_query = Histogram(f"latency:{query_id}")
                self.per_query_latency[query_id] = per_query
            per_query.record(lag)

    def observe_burn(self, query_id: str, burn_rate: float) -> None:
        """Record the latest SLO error-budget burn rate for a query."""
        self.per_query_burn[query_id] = burn_rate

    # -- reporting ----------------------------------------------------------------

    def mean_latency_ms(self) -> float:
        """Mean sampled event-time latency across all queries."""
        return self.latency.mean()

    def slowest_query(self) -> Optional[str]:
        """The query with the fewest delivered results (min-QoS view)."""
        if not self.per_query_delivered:
            return None
        return min(self.per_query_delivered, key=self.per_query_delivered.get)

    def overall_delivered(self) -> int:
        """Results delivered across all queries."""
        return sum(self.per_query_delivered.values())

    def violations(
        self, deployment_latencies_ms: List[float] = ()
    ) -> List[str]:
        """Human-readable threshold violations (empty = QoS holds)."""
        problems = []
        limits = self.thresholds
        if (
            limits.max_event_time_latency_ms is not None
            and self.latency.count
            and self.latency.mean() > limits.max_event_time_latency_ms
        ):
            problems.append(
                f"mean event-time latency {self.latency.mean():.0f}ms exceeds "
                f"{limits.max_event_time_latency_ms:.0f}ms"
            )
        if limits.max_deployment_latency_ms is not None:
            late = [
                latency
                for latency in deployment_latencies_ms
                if latency > limits.max_deployment_latency_ms
            ]
            if late:
                problems.append(
                    f"{len(late)} deployments exceed "
                    f"{limits.max_deployment_latency_ms:.0f}ms"
                )
        if limits.min_query_throughput is not None:
            starved = [
                query_id
                for query_id, delivered in self.per_query_delivered.items()
                if delivered < limits.min_query_throughput
            ]
            if starved:
                problems.append(
                    f"{len(starved)} queries below the minimum result rate"
                )
        if limits.max_slo_burn_rate is not None:
            burning = [
                query_id
                for query_id, burn in self.per_query_burn.items()
                if burn >= limits.max_slo_burn_rate
            ]
            for query_id in sorted(burning):
                problems.append(
                    f"slo_burn: query {query_id} burning error budget at "
                    f"{self.per_query_burn[query_id]:.2f}x "
                    f"(limit {limits.max_slo_burn_rate:.2f}x)"
                )
        return problems
