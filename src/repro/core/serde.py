"""JSON (de)serialization for queries, results, and workload schedules.

Lets workloads live as data: a reviewer can export the exact ad-hoc
schedule an experiment ran (`schedule_to_dict`), commit it as JSON, and
replay it byte-identically later (`schedule_from_dict`) — or author
query populations by hand without writing Python.

Supported predicate forms are the paper's generated ones
(:class:`FieldPredicate`, :class:`TruePredicate`) plus the SQL
front-end's conjunction; black-box callables are rejected with a clear
error (code is not data).

The serving layer (:mod:`repro.serve`) reuses these functions for its
wire frames: queries travel as :func:`query_to_dict` payloads, and
per-query results (selection tuples, join pairs, windowed aggregates)
travel as :func:`output_to_dict` payloads.  Both directions roundtrip
**exactly** — a reconstructed result compares equal to (and ``repr``-s
identically to) the in-process original, which is what lets the wire
tests assert byte-equality against the in-process oracle.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    Comparison,
    ComplexQuery,
    FieldPredicate,
    JoinQuery,
    Predicate,
    Query,
    SelectionQuery,
    TruePredicate,
    WindowKind,
    WindowSpec,
)
from repro.core.sql import ConjunctionPredicate
from repro.workloads.scenarios import ScheduledRequest, WorkloadSchedule


class SerdeError(ValueError):
    """Raised for unserialisable objects or malformed documents."""


# -- predicates ---------------------------------------------------------------

def predicate_to_dict(predicate: Predicate) -> Dict[str, Any]:
    """Serialise a value predicate (rejects black-box callables)."""
    if isinstance(predicate, TruePredicate):
        return {"type": "true"}
    if isinstance(predicate, FieldPredicate):
        return {
            "type": "field",
            "field_index": predicate.field_index,
            "op": predicate.op.value,
            "constant": predicate.constant,
        }
    if isinstance(predicate, ConjunctionPredicate):
        return {
            "type": "and",
            "conjuncts": [
                predicate_to_dict(conjunct) for conjunct in predicate.conjuncts
            ],
        }
    raise SerdeError(
        f"predicate {predicate!r} is not serialisable (black-box callables "
        f"are code, not data)"
    )


def predicate_from_dict(document: Dict[str, Any]) -> Predicate:
    """Inverse of :func:`predicate_to_dict`."""
    kind = document.get("type")
    if kind == "true":
        return TruePredicate()
    if kind == "field":
        return FieldPredicate(
            document["field_index"],
            Comparison(document["op"]),
            document["constant"],
        )
    if kind == "and":
        return ConjunctionPredicate(
            tuple(
                predicate_from_dict(conjunct)
                for conjunct in document["conjuncts"]
            )
        )
    raise SerdeError(f"unknown predicate type {kind!r}")


# -- windows -----------------------------------------------------------------------

def window_to_dict(spec: WindowSpec) -> Dict[str, Any]:
    """Serialise a window spec."""
    if spec.is_session:
        return {"kind": "session", "gap_ms": spec.gap_ms}
    return {
        "kind": spec.kind.value,
        "length_ms": spec.length_ms,
        "slide_ms": spec.slide_ms,
    }


def window_from_dict(document: Dict[str, Any]) -> WindowSpec:
    """Inverse of :func:`window_to_dict`."""
    kind = document.get("kind")
    if kind == "session":
        return WindowSpec.session(document["gap_ms"])
    if kind in (WindowKind.TUMBLING.value, WindowKind.SLIDING.value):
        return WindowSpec.sliding(document["length_ms"], document["slide_ms"])
    raise SerdeError(f"unknown window kind {kind!r}")


def _aggregation_to_dict(spec: AggregationSpec) -> Dict[str, Any]:
    return {"kind": spec.kind.value, "field_index": spec.field_index}


def _aggregation_from_dict(document: Dict[str, Any]) -> AggregationSpec:
    return AggregationSpec(
        AggregationKind(document["kind"]), document["field_index"]
    )


# -- queries ------------------------------------------------------------------------

def query_to_dict(query: Query) -> Dict[str, Any]:
    """Serialise any supported query to a plain dict."""
    if isinstance(query, SelectionQuery):
        return {
            "type": "selection",
            "query_id": query.query_id,
            "stream": query.stream,
            "predicate": predicate_to_dict(query.predicate),
        }
    if isinstance(query, AggregationQuery):
        return {
            "type": "aggregation",
            "query_id": query.query_id,
            "stream": query.stream,
            "predicate": predicate_to_dict(query.predicate),
            "window": window_to_dict(query.window_spec),
            "aggregation": _aggregation_to_dict(query.aggregation),
        }
    if isinstance(query, JoinQuery):
        return {
            "type": "join",
            "query_id": query.query_id,
            "left_stream": query.left_stream,
            "right_stream": query.right_stream,
            "left_predicate": predicate_to_dict(query.left_predicate),
            "right_predicate": predicate_to_dict(query.right_predicate),
            "window": window_to_dict(query.window_spec),
        }
    if isinstance(query, ComplexQuery):
        return {
            "type": "complex",
            "query_id": query.query_id,
            "join_streams": list(query.join_streams),
            "predicates": [
                predicate_to_dict(predicate) for predicate in query.predicates
            ],
            "join_window": window_to_dict(query.join_window),
            "aggregation_window": window_to_dict(query.aggregation_window),
            "aggregation": _aggregation_to_dict(query.aggregation),
        }
    raise SerdeError(f"unsupported query type {type(query).__name__}")


def query_from_dict(document: Dict[str, Any]) -> Query:
    """Inverse of :func:`query_to_dict`."""
    kind = document.get("type")
    if kind == "selection":
        return SelectionQuery(
            stream=document["stream"],
            predicate=predicate_from_dict(document["predicate"]),
            query_id=document["query_id"],
        )
    if kind == "aggregation":
        return AggregationQuery(
            stream=document["stream"],
            predicate=predicate_from_dict(document["predicate"]),
            window_spec=window_from_dict(document["window"]),
            aggregation=_aggregation_from_dict(document["aggregation"]),
            query_id=document["query_id"],
        )
    if kind == "join":
        return JoinQuery(
            left_stream=document["left_stream"],
            right_stream=document["right_stream"],
            left_predicate=predicate_from_dict(document["left_predicate"]),
            right_predicate=predicate_from_dict(document["right_predicate"]),
            window_spec=window_from_dict(document["window"]),
            query_id=document["query_id"],
        )
    if kind == "complex":
        return ComplexQuery(
            join_streams=tuple(document["join_streams"]),
            predicates=tuple(
                predicate_from_dict(predicate)
                for predicate in document["predicates"]
            ),
            join_window=window_from_dict(document["join_window"]),
            aggregation_window=window_from_dict(document["aggregation_window"]),
            aggregation=_aggregation_from_dict(document["aggregation"]),
            query_id=document["query_id"],
        )
    raise SerdeError(f"unknown query type {kind!r}")


# -- result values (wire frames) ----------------------------------------------------

def value_to_dict(value: Any) -> Dict[str, Any]:
    """Serialise one result payload for the wire.

    Covers every value a query channel can deliver: raw
    :class:`~repro.workloads.datagen.DataTuple` rows (selection
    results), :class:`~repro.core.shared_join.JoinedTuple` match pairs
    (parts flatten for cascades), and
    :class:`~repro.core.shared_aggregation.AggregationResult` windowed
    aggregates.  Anything else is rejected — results must stay data.
    """
    from repro.core.shared_aggregation import AggregationResult
    from repro.core.shared_join import JoinedTuple
    from repro.workloads.datagen import DataTuple

    if isinstance(value, DataTuple):
        return {"type": "tuple", "key": value.key, "fields": list(value.fields)}
    if isinstance(value, JoinedTuple):
        return {
            "type": "joined",
            "key": value.key,
            "timestamp": value.timestamp,
            "parts": [value_to_dict(part) for part in value.parts],
        }
    if isinstance(value, AggregationResult):
        return {
            "type": "agg",
            "key": value.key,
            "window": [value.window.start, value.window.end],
            "value": value.value,
        }
    raise SerdeError(
        f"result value {value!r} ({type(value).__name__}) is not serialisable"
    )


def value_from_dict(document: Dict[str, Any]) -> Any:
    """Inverse of :func:`value_to_dict` (exact roundtrip)."""
    from repro.core.shared_aggregation import AggregationResult
    from repro.core.shared_join import JoinedTuple
    from repro.minispe.windows import Window
    from repro.workloads.datagen import DataTuple

    kind = document.get("type")
    if kind == "tuple":
        return DataTuple(key=document["key"], fields=tuple(document["fields"]))
    if kind == "joined":
        return JoinedTuple(
            key=document["key"],
            parts=tuple(
                value_from_dict(part) for part in document["parts"]
            ),
            timestamp=document["timestamp"],
        )
    if kind == "agg":
        start, end = document["window"]
        return AggregationResult(
            key=document["key"],
            window=Window(start=start, end=end),
            value=document["value"],
        )
    raise SerdeError(f"unknown result value type {kind!r}")


def output_to_dict(output) -> Dict[str, Any]:
    """Serialise one :class:`~repro.core.router.QueryOutput`."""
    return {
        "timestamp": output.timestamp,
        "value": value_to_dict(output.value),
    }


def output_from_dict(document: Dict[str, Any]):
    """Inverse of :func:`output_to_dict`."""
    from repro.core.router import QueryOutput

    return QueryOutput(
        timestamp=document["timestamp"],
        value=value_from_dict(document["value"]),
    )


# -- schedules -----------------------------------------------------------------------

def schedule_to_dict(schedule: WorkloadSchedule) -> Dict[str, Any]:
    """Serialise a workload schedule (creations carry full queries)."""
    requests: List[Dict[str, Any]] = []
    for request in schedule.sorted():
        if request.kind == "create":
            requests.append(
                {
                    "at_ms": request.at_ms,
                    "kind": "create",
                    "query": query_to_dict(request.query),
                }
            )
        else:
            requests.append(
                {
                    "at_ms": request.at_ms,
                    "kind": "delete",
                    "query_id": request.query_id,
                }
            )
    return {"name": schedule.name, "requests": requests}


def schedule_from_dict(document: Dict[str, Any]) -> WorkloadSchedule:
    """Inverse of :func:`schedule_to_dict`."""
    requests = []
    for entry in document.get("requests", []):
        if entry["kind"] == "create":
            requests.append(
                ScheduledRequest(
                    at_ms=entry["at_ms"],
                    kind="create",
                    query=query_from_dict(entry["query"]),
                )
            )
        elif entry["kind"] == "delete":
            requests.append(
                ScheduledRequest(
                    at_ms=entry["at_ms"],
                    kind="delete",
                    query_id=entry["query_id"],
                )
            )
        else:
            raise SerdeError(f"unknown request kind {entry.get('kind')!r}")
    return WorkloadSchedule(name=document.get("name", "schedule"),
                            requests=requests)


def save_schedule(schedule: WorkloadSchedule, path) -> None:
    """Write a schedule as JSON to ``path`` (str or Path)."""
    import json
    from pathlib import Path

    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2) + "\n"
    )


def load_schedule(path) -> WorkloadSchedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    import json
    from pathlib import Path

    return schedule_from_dict(json.loads(Path(path).read_text()))
