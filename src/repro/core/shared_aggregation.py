"""Shared windowed aggregation (§3.1.5).

The shared aggregation is the unary sibling of the shared join.  Instead
of materialising input tuples, each window slice keeps *intermediate
aggregation results* per subscribed query and grouping key: a tuple with
query-set ``101`` is folded into Q1's and Q3's partials and discarded.
When a query window completes, the slice partials covering it are merged
— partials shared by overlapping windows of different (or sliding)
queries are thus computed once.

Unlike the join, the aggregation's output cannot be shared with further
downstream shared aggregations (§3.1.5), so results go to the router
only.

Session windows are supported here (the paper: "time- and session-based
windows", §3.1.3): tuples are still tagged and routed once, and the
operator keeps per-query per-key session accumulators merged on the gap
rule, fired when the watermark passes a session's end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.changelog import Changelog, ChangelogTable
from repro.core.query import AggregationSpec, WindowSpec
from repro.core.selection import QS_TAG
from repro.core.slicing import SliceIndex, SliceManager
from repro.minispe.operators import Operator
from repro.minispe.record import ChangelogMarker, Record, Watermark
from repro.minispe.windows import Window


@dataclass(frozen=True)
class AggregationResult:
    """One fired window's aggregate for one key and one query."""

    key: Any
    window: Window
    value: Any


@dataclass
class _SessionState:
    """Per-(slot, key) session windows with accumulators."""

    __slots__ = ("sessions",)

    sessions: List[Tuple[int, int, Any]]
    """(start, end, accumulator), kept merged and sorted."""


class SharedAggregationOperator(Operator):
    """Ad-hoc shared windowed aggregation over one tagged stream."""

    def __init__(self, operator_key: str, profile: bool = False) -> None:
        super().__init__(operator_key)
        self.operator_key = operator_key
        self.profile = profile

        self._slicer = SliceManager()
        self._slices = SliceIndex()
        self._changelogs = ChangelogTable()
        self._specs: Dict[int, AggregationSpec] = {}
        self._subscribed = 0  # bitset of subscribed slots (time windows)

        # Session-window state, per slot.
        self._session_specs: Dict[int, Tuple[WindowSpec, AggregationSpec]] = {}
        self._session_state: Dict[Tuple[int, Any], _SessionState] = {}

        self.bitset_ops = 0
        self.partial_updates = 0
        self.results_emitted = 0
        self.late_records_dropped = 0
        self.profile_ns = 0
        self._last_watermark_ms = -1

        # Telemetry hub, attached by the owning engine when observe mode
        # is on; slice churn is reported from the watermark path only.
        self.obs = None
        self._obs_slices_created = 0
        self._obs_slices_expired = 0

    def _emit_slice_events(self, watermark_ms: int) -> None:
        created = self._slices.created_total
        expired = self._slices.expired_total
        if created != self._obs_slices_created:
            self.obs.events.emit(
                "slice_create",
                t_ms=watermark_ms,
                operator=self.name,
                count=created - self._obs_slices_created,
                live=len(self._slices),
            )
            self._obs_slices_created = created
        if expired != self._obs_slices_expired:
            self.obs.events.emit(
                "slice_expire",
                t_ms=watermark_ms,
                operator=self.name,
                count=expired - self._obs_slices_expired,
                live=len(self._slices),
            )
            self._obs_slices_expired = expired

    # -- changelog handling ----------------------------------------------------

    def on_marker(self, marker: ChangelogMarker) -> None:
        changelog: Changelog = marker.changelog
        self._changelogs.append(changelog)
        for deactivation in changelog.deleted:
            slot = deactivation.slot
            self._slicer.unregister_query(slot)
            self._specs.pop(slot, None)
            self._subscribed &= ~(1 << slot)
            if slot in self._session_specs:
                del self._session_specs[slot]
                stale = [key for key in self._session_state if key[0] == slot]
                for key in stale:
                    del self._session_state[key]
        for activation in changelog.created:
            spec = self._window_for(activation)
            if spec is None:
                continue
            agg_spec = activation.query.aggregation
            if spec.is_session:
                self._session_specs[activation.slot] = (spec, agg_spec)
                self._subscribed |= 1 << activation.slot
            else:
                self._slicer.register_query(
                    activation.slot, spec, activation.created_at_ms
                )
                self._specs[activation.slot] = agg_spec
                self._subscribed |= 1 << activation.slot
        self._slicer.on_epoch(changelog.sequence, marker.timestamp)
        self.output(marker)

    def _window_for(self, activation) -> Optional[WindowSpec]:
        for stage in activation.query.stages():
            if stage.operator == self.operator_key:
                agg_window = getattr(activation.query, "aggregation_window", None)
                if agg_window is not None:
                    return agg_window
                return activation.query.window
        return None

    # -- data path -----------------------------------------------------------

    def process(self, record: Record) -> None:
        query_set = record.tags.get(QS_TAG, 0)
        relevant = query_set & self._subscribed
        self.bitset_ops += 1
        if not relevant:
            return
        started = time.perf_counter_ns() if self.profile else 0
        time_window_bits = relevant & ~self._session_bits()
        if time_window_bits:
            self._fold_time_windows(record, time_window_bits)
        session_bits = relevant & self._session_bits()
        if session_bits:
            self._fold_sessions(record, session_bits)
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started

    def process_batch(self, records: List[Record]) -> None:
        """Vectorized fold: the subscription and session bitsets are
        resolved once per batch instead of once per record."""
        subscribed = self._subscribed
        if not subscribed:
            self.bitset_ops += len(records)
            return
        started = time.perf_counter_ns() if self.profile else 0
        session_bits = self._session_bits()
        time_mask = subscribed & ~session_bits
        session_mask = subscribed & session_bits
        fold_time = self._fold_time_windows
        fold_sessions = self._fold_sessions
        bitset_ops = 0
        for record in records:
            query_set = record.tags.get(QS_TAG, 0)
            bitset_ops += 1
            time_window_bits = query_set & time_mask
            if time_window_bits:
                fold_time(record, time_window_bits)
            relevant_sessions = query_set & session_mask
            if relevant_sessions:
                fold_sessions(record, relevant_sessions)
        self.bitset_ops += bitset_ops
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started

    def _session_bits(self) -> int:
        bits = 0
        for slot in self._session_specs:
            bits |= 1 << slot
        return bits

    def _fold_time_windows(self, record: Record, bits: int) -> None:
        if record.timestamp <= self._last_watermark_ms - self._slicer.max_retention_ms:
            # Beyond any window that could still fire: observable drop.
            self.late_records_dropped += 1
            return
        start, end, epoch = self._slicer.slice_bounds(record.timestamp)
        slice_ = self._slices.get_or_create(start, end, epoch)
        if slice_.store is None:
            slice_.store = {}  # slot -> key -> accumulator
        store: Dict[int, Dict[Any, Any]] = slice_.store
        slot = 0
        value = record.value
        while bits:
            if bits & 1:
                spec = self._specs.get(slot)
                if spec is not None:
                    per_key = store.setdefault(slot, {})
                    acc = per_key.get(record.key)
                    if acc is None:
                        acc = spec.initial()
                    per_key[record.key] = spec.add(acc, value)
                    self.partial_updates += 1
            bits >>= 1
            slot += 1

    def _fold_sessions(self, record: Record, bits: int) -> None:
        slot = 0
        while bits:
            if bits & 1:
                window_spec, agg_spec = self._session_specs[slot]
                self._merge_session(
                    slot, record.key, record.timestamp, record.value,
                    window_spec, agg_spec,
                )
                self.partial_updates += 1
            bits >>= 1
            slot += 1

    def _merge_session(
        self,
        slot: int,
        key: Any,
        timestamp: int,
        value: Any,
        window_spec: WindowSpec,
        agg_spec: AggregationSpec,
    ) -> None:
        state = self._session_state.get((slot, key))
        if state is None:
            state = _SessionState(sessions=[])
            self._session_state[(slot, key)] = state
        proto_start = timestamp
        proto_end = timestamp + window_spec.gap_ms
        acc = agg_spec.add(agg_spec.initial(), value)
        merged: List[Tuple[int, int, Any]] = []
        for start, end, existing in state.sessions:
            if start <= proto_end and proto_start <= end:
                proto_start = min(proto_start, start)
                proto_end = max(proto_end, end)
                acc = agg_spec.merge(acc, existing)
            else:
                merged.append((start, end, existing))
        merged.append((proto_start, proto_end, acc))
        merged.sort()
        state.sessions = merged

    # -- firing ------------------------------------------------------------------

    def on_watermark(self, watermark: Watermark) -> None:
        started = time.perf_counter_ns() if self.profile else 0
        self._last_watermark_ms = watermark.timestamp
        for slot, start, end in self._slicer.due_windows(watermark.timestamp):
            self._fire_time_window(slot, start, end)
        self._fire_sessions(watermark.timestamp)
        horizon = watermark.timestamp - self._slicer.max_retention_ms
        self._slices.expire_before(horizon)
        # Bound metadata growth (see SharedJoinOperator._expire).
        if self._slicer.prune_before(horizon):
            oldest_epoch = self._slicer.timeline.epoch_for(horizon)[0]
            self._changelogs.prune_memo_before(oldest_epoch)
        if self.obs is not None:
            self._emit_slice_events(watermark.timestamp)
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started
        self.output(watermark)

    def _fire_time_window(self, slot: int, start: int, end: int) -> None:
        spec = self._specs.get(slot)
        if spec is None:
            return
        current_epoch = self._changelogs.current_epoch
        merged: Dict[Any, Any] = {}
        for slice_ in self._slices.overlapping(start, end):
            validity = self._changelogs.cl_set(current_epoch, slice_.epoch)
            self.bitset_ops += 1
            if not (validity >> slot) & 1:
                continue
            store = slice_.store or {}
            for key, acc in store.get(slot, {}).items():
                existing = merged.get(key)
                merged[key] = acc if existing is None else spec.merge(existing, acc)
        window = Window(start, end)
        for key in sorted(merged, key=repr):
            self._emit(slot, key, window, spec.finish(merged[key]))

    def _fire_sessions(self, watermark_ms: int) -> None:
        for (slot, key), state in list(self._session_state.items()):
            window_spec, agg_spec = self._session_specs.get(slot, (None, None))
            if window_spec is None:
                continue
            remaining = []
            for start, end, acc in state.sessions:
                if end - 1 <= watermark_ms:
                    self._emit(
                        slot, key, Window(start, end), agg_spec.finish(acc)
                    )
                else:
                    remaining.append((start, end, acc))
            if remaining:
                state.sessions = remaining
            else:
                del self._session_state[(slot, key)]

    def _emit(self, slot: int, key: Any, window: Window, value: Any) -> None:
        self.results_emitted += 1
        self.output(
            Record(
                timestamp=window.max_timestamp(),
                value=AggregationResult(key=key, window=window, value=value),
                key=key,
                tags={QS_TAG: 1 << slot},
            )
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def active_query_count(self) -> int:
        """Queries currently subscribed to this aggregation."""
        return len(self._specs) + len(self._session_specs)

    @property
    def live_slices(self) -> int:
        """Slices currently retained."""
        return len(self._slices)

    def snapshot(self) -> Any:
        import copy

        return copy.deepcopy(
            {
                "slicer": self._slicer,
                "slices": self._slices,
                "changelogs": self._changelogs,
                "specs": self._specs,
                "subscribed": self._subscribed,
                "session_specs": self._session_specs,
                "session_state": self._session_state,
            }
        )

    def restore(self, snapshot: Any) -> None:
        import copy

        state = copy.deepcopy(snapshot)
        self._slicer = state["slicer"]
        self._slices = state["slices"]
        self._changelogs = state["changelogs"]
        self._specs = state["specs"]
        self._subscribed = state["subscribed"]
        self._session_specs = state["session_specs"]
        self._session_state = state["session_state"]
