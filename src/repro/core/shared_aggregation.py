"""Shared windowed aggregation (§3.1.5).

The shared aggregation is the unary sibling of the shared join.  Instead
of materialising input tuples, each window slice keeps *intermediate
aggregation results* per subscribed query and grouping key: a tuple with
query-set ``101`` is folded into Q1's and Q3's partials and discarded.
When a query window completes, the slice partials covering it are merged
— partials shared by overlapping windows of different (or sliding)
queries are thus computed once.

Unlike the join, the aggregation's output cannot be shared with further
downstream shared aggregations (§3.1.5), so results go to the router
only.

Session windows are supported here (the paper: "time- and session-based
windows", §3.1.3): tuples are still tagged and routed once, and the
operator keeps per-query per-key session accumulators merged on the gap
rule, fired when the watermark passes a session's end.

Two storage-plane extensions ride on this operator (ROADMAP item 2):

* **state backends** — with ``state_backend="lsm"`` the per-slice
  accumulator maps live behind :class:`repro.store.SpilledSliceStore`
  views over one spill-to-disk LSM store per instance, so keyed state
  can exceed RAM; snapshots then carry an incremental *manifest*
  (immutable segment paths + per-slice key lists) instead of the
  accumulator values themselves;
* **shared arrangements** — with ``arrangements=True`` every selected
  delta is additionally inserted into a multi-version
  :class:`repro.store.Arrangement` whose compaction frontier follows
  the watermark (bounded by per-query reader leases), and a newly
  created time-window query *attaches* at the frontier: windows that
  predate its creation are folded straight out of the arranged history
  and emitted at deployment time, skipping the cold warm-up wait.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.changelog import Changelog, ChangelogTable
from repro.core.query import AggregationSpec, WindowSpec
from repro.core.selection import QS_TAG
from repro.core.slicing import SliceIndex, SliceManager
from repro.minispe.operators import Operator
from repro.minispe.record import ChangelogMarker, Record, Watermark
from repro.minispe.windows import Window
from repro.store.arrangement import Arrangement, ReaderLease
from repro.store.lsm import materialize_checkpoint
from repro.store.spill import SpilledSliceStore, SpillingStoreHost


@dataclass(frozen=True)
class AggregationResult:
    """One fired window's aggregate for one key and one query."""

    key: Any
    window: Window
    value: Any


@dataclass
class _SessionState:
    """Per-(slot, key) session windows with accumulators."""

    __slots__ = ("sessions",)

    sessions: List[Tuple[int, int, Any]]
    """(start, end, accumulator), kept merged and sorted."""


class SharedAggregationOperator(Operator):
    """Ad-hoc shared windowed aggregation over one tagged stream."""

    def __init__(
        self,
        operator_key: str,
        profile: bool = False,
        state_backend: str = "memory",
        state_dir: Optional[str] = None,
        memtable_entries: int = 16_384,
        arrangements: bool = False,
        arrangement_retention_ms: Optional[int] = None,
        backfill_windows: int = 1,
    ) -> None:
        super().__init__(operator_key)
        self.operator_key = operator_key
        self.profile = profile
        self.state_backend = state_backend
        self._memtable_entries = memtable_entries
        self._state_dir = state_dir
        self._store_host: Optional[SpillingStoreHost] = None
        if state_backend == "lsm":
            self._store_host = SpillingStoreHost(
                state_dir,
                memtable_entries=memtable_entries,
                prefix=operator_key.replace(":", "_").replace("~", "-") + "-",
            )

        self._slicer = SliceManager()
        self._slices = SliceIndex()
        self._changelogs = ChangelogTable()
        self._specs: Dict[int, AggregationSpec] = {}
        self._subscribed = 0  # bitset of subscribed slots (time windows)

        # Session-window state, per slot.
        self._session_specs: Dict[int, Tuple[WindowSpec, AggregationSpec]] = {}
        self._session_state: Dict[Tuple[int, Any], _SessionState] = {}

        # Shared arrangement (attach-without-warm-up; off by default so
        # the byte-equality gates see identical outputs either way).
        self._arrangement: Optional[Arrangement] = (
            Arrangement(operator_key) if arrangements else None
        )
        self._arrangement_retention_ms = arrangement_retention_ms
        self._backfill_windows = backfill_windows
        self._arr_leases: Dict[int, ReaderLease] = {}
        self.backfilled_windows = 0
        self.backfilled_results = 0

        self.bitset_ops = 0
        self.partial_updates = 0
        self.results_emitted = 0
        self.late_records_dropped = 0
        self.profile_ns = 0
        self._last_watermark_ms = -1

        # Telemetry hub, attached by the owning engine when observe mode
        # is on; slice churn is reported from the watermark path only.
        self.obs = None
        self._obs_slices_created = 0
        self._obs_slices_expired = 0

    def _emit_slice_events(self, watermark_ms: int) -> None:
        created = self._slices.created_total
        expired = self._slices.expired_total
        if created != self._obs_slices_created:
            self.obs.events.emit(
                "slice_create",
                t_ms=watermark_ms,
                operator=self.name,
                count=created - self._obs_slices_created,
                live=len(self._slices),
            )
            self._obs_slices_created = created
        if expired != self._obs_slices_expired:
            self.obs.events.emit(
                "slice_expire",
                t_ms=watermark_ms,
                operator=self.name,
                count=expired - self._obs_slices_expired,
                live=len(self._slices),
            )
            self._obs_slices_expired = expired

    # -- changelog handling ----------------------------------------------------

    def on_marker(self, marker: ChangelogMarker) -> None:
        changelog: Changelog = marker.changelog
        self._changelogs.append(changelog)
        for deactivation in changelog.deleted:
            slot = deactivation.slot
            self._slicer.unregister_query(slot)
            self._specs.pop(slot, None)
            self._subscribed &= ~(1 << slot)
            lease = self._arr_leases.pop(slot, None)
            if lease is not None and self._arrangement is not None:
                self._arrangement.release_lease(lease)
            if slot in self._session_specs:
                del self._session_specs[slot]
                stale = [key for key in self._session_state if key[0] == slot]
                for key in stale:
                    del self._session_state[key]
        for activation in changelog.created:
            spec = self._window_for(activation)
            if spec is None:
                continue
            agg_spec = activation.query.aggregation
            if spec.is_session:
                self._session_specs[activation.slot] = (spec, agg_spec)
                self._subscribed |= 1 << activation.slot
            else:
                self._slicer.register_query(
                    activation.slot, spec, activation.created_at_ms
                )
                self._specs[activation.slot] = agg_spec
                self._subscribed |= 1 << activation.slot
                if self._arrangement is not None:
                    self._arr_leases[activation.slot] = (
                        self._arrangement.acquire_lease(
                            activation.query.query_id,
                            floor=activation.created_at_ms,
                        )
                    )
        self._slicer.on_epoch(changelog.sequence, marker.timestamp)
        self.output(marker)
        # Warm attach: the marker has now passed the router (which just
        # learned the new slot->query bindings), so backfilled results
        # emitted here are routable.
        if self._arrangement is not None:
            for activation in changelog.created:
                self._attach_backfill(activation)

    def _window_for(self, activation) -> Optional[WindowSpec]:
        for stage in activation.query.stages():
            if stage.operator == self.operator_key:
                agg_window = getattr(activation.query, "aggregation_window", None)
                if agg_window is not None:
                    return agg_window
                return activation.query.window
        return None

    # -- warm attach (shared arrangements) -------------------------------------

    def _attach_backfill(self, activation) -> None:
        """Emit pre-creation windows for a newly attached query.

        Window anchoring means a cold query's first window is
        ``[created_at, created_at + length)`` — it must wait a full
        window of fresh data before producing anything.  With the
        arrangement on, the windows *ending before* creation are
        computable from history already arranged between the compaction
        frontier and the watermark, filtered by the query's own
        predicate, so the query's first results appear at deployment
        time instead.

        Only plain per-stream aggregation queries backfill: the
        arrangement holds this operator's selected input deltas, which
        for a cascade stage (``agg:A~B``) are join outputs whose history
        only covers previously-subscribed join queries.
        """
        spec = self._window_for(activation)
        if spec is None or spec.is_session:
            return
        if getattr(activation.query, "aggregation_window", None) is not None:
            return
        agg_spec: AggregationSpec = activation.query.aggregation
        predicate = getattr(activation.query, "predicate", None)
        accept = None
        if predicate is not None:
            accept = predicate.evaluate
        created = activation.created_at_ms
        coverage = self._arrangement.coverage_start
        windows: List[Tuple[int, int]] = []
        fire_index = 1
        while len(windows) < self._backfill_windows:
            start = created - fire_index * spec.slide_ms
            end = start + spec.length_ms
            fire_index += 1
            if start < coverage:
                break
            if end - 1 > self._last_watermark_ms:
                continue  # tail of the window hasn't arrived yet
            windows.append((start, end))
        slot = activation.slot
        for start, end in reversed(windows):  # emit oldest-first
            merged = self._arrangement.fold_range(
                start, end, agg_spec.initial, agg_spec.add, accept=accept
            )
            window = Window(start, end)
            self.backfilled_windows += 1
            for key in sorted(merged, key=repr):
                self.backfilled_results += 1
                self._emit(slot, key, window, agg_spec.finish(merged[key]))

    # -- data path -----------------------------------------------------------

    def process(self, record: Record) -> None:
        query_set = record.tags.get(QS_TAG, 0)
        relevant = query_set & self._subscribed
        self.bitset_ops += 1
        if not relevant:
            return
        started = time.perf_counter_ns() if self.profile else 0
        if self._arrangement is not None:
            self._arrangement.insert(
                record.timestamp, record.key, record.value
            )
        time_window_bits = relevant & ~self._session_bits()
        if time_window_bits:
            self._fold_time_windows(record, time_window_bits)
        session_bits = relevant & self._session_bits()
        if session_bits:
            self._fold_sessions(record, session_bits)
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started

    def process_batch(self, records: List[Record]) -> None:
        """Vectorized fold: the subscription and session bitsets are
        resolved once per batch instead of once per record."""
        subscribed = self._subscribed
        if not subscribed:
            self.bitset_ops += len(records)
            return
        started = time.perf_counter_ns() if self.profile else 0
        session_bits = self._session_bits()
        time_mask = subscribed & ~session_bits
        session_mask = subscribed & session_bits
        fold_time = self._fold_time_windows
        fold_sessions = self._fold_sessions
        arrangement = self._arrangement
        bitset_ops = 0
        for record in records:
            query_set = record.tags.get(QS_TAG, 0)
            bitset_ops += 1
            if arrangement is not None and query_set & subscribed:
                arrangement.insert(record.timestamp, record.key, record.value)
            time_window_bits = query_set & time_mask
            if time_window_bits:
                fold_time(record, time_window_bits)
            relevant_sessions = query_set & session_mask
            if relevant_sessions:
                fold_sessions(record, relevant_sessions)
        self.bitset_ops += bitset_ops
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started

    def _session_bits(self) -> int:
        bits = 0
        for slot in self._session_specs:
            bits |= 1 << slot
        return bits

    def _fold_time_windows(self, record: Record, bits: int) -> None:
        if record.timestamp <= self._last_watermark_ms - self._slicer.max_retention_ms:
            # Beyond any window that could still fire: observable drop.
            self.late_records_dropped += 1
            return
        start, end, epoch = self._slicer.slice_bounds(record.timestamp)
        slice_ = self._slices.get_or_create(start, end, epoch)
        if slice_.store is None:
            # slot -> key -> accumulator; a dict-shaped spill view when
            # the lsm backend is active, a plain dict otherwise.
            if self._store_host is not None:
                slice_.store = self._store_host.make_slice_store(start)
            else:
                slice_.store = {}
        store: Dict[int, Dict[Any, Any]] = slice_.store
        slot = 0
        value = record.value
        while bits:
            if bits & 1:
                spec = self._specs.get(slot)
                if spec is not None:
                    per_key = store.setdefault(slot, {})
                    acc = per_key.get(record.key)
                    if acc is None:
                        acc = spec.initial()
                    per_key[record.key] = spec.add(acc, value)
                    self.partial_updates += 1
            bits >>= 1
            slot += 1

    def _fold_sessions(self, record: Record, bits: int) -> None:
        slot = 0
        while bits:
            if bits & 1:
                window_spec, agg_spec = self._session_specs[slot]
                self._merge_session(
                    slot, record.key, record.timestamp, record.value,
                    window_spec, agg_spec,
                )
                self.partial_updates += 1
            bits >>= 1
            slot += 1

    def _merge_session(
        self,
        slot: int,
        key: Any,
        timestamp: int,
        value: Any,
        window_spec: WindowSpec,
        agg_spec: AggregationSpec,
    ) -> None:
        state = self._session_state.get((slot, key))
        if state is None:
            state = _SessionState(sessions=[])
            self._session_state[(slot, key)] = state
        proto_start = timestamp
        proto_end = timestamp + window_spec.gap_ms
        acc = agg_spec.add(agg_spec.initial(), value)
        merged: List[Tuple[int, int, Any]] = []
        for start, end, existing in state.sessions:
            if start <= proto_end and proto_start <= end:
                proto_start = min(proto_start, start)
                proto_end = max(proto_end, end)
                acc = agg_spec.merge(acc, existing)
            else:
                merged.append((start, end, existing))
        merged.append((proto_start, proto_end, acc))
        merged.sort()
        state.sessions = merged

    # -- firing ------------------------------------------------------------------

    def on_watermark(self, watermark: Watermark) -> None:
        started = time.perf_counter_ns() if self.profile else 0
        self._last_watermark_ms = watermark.timestamp
        for slot, start, end in self._slicer.due_windows(watermark.timestamp):
            self._fire_time_window(slot, start, end)
        self._fire_sessions(watermark.timestamp)
        horizon = watermark.timestamp - self._slicer.max_retention_ms
        expired = self._slices.expire_before(horizon)
        if self._store_host is not None:
            # Tombstone expired slices so compaction reclaims the disk.
            for slice_ in expired:
                if isinstance(slice_.store, SpilledSliceStore):
                    slice_.store.drop()
        # Bound metadata growth (see SharedJoinOperator._expire).
        if self._slicer.prune_before(horizon):
            oldest_epoch = self._slicer.timeline.epoch_for(horizon)[0]
            self._changelogs.prune_memo_before(oldest_epoch)
        if self._arrangement is not None:
            self._advance_arrangement(watermark.timestamp)
        if self.obs is not None:
            self._emit_slice_events(watermark.timestamp)
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started
        self.output(watermark)

    def _advance_arrangement(self, watermark_ms: int) -> None:
        """Move reader-lease floors and the compaction frontier.

        Each subscribed slot's lease floor tracks the start of its next
        unfired window — the oldest history that slot could still need.
        The frontier target trails the watermark by the retention bound
        (explicit, or twice the longest active window so a late attacher
        can always backfill at least one full window).
        """
        for slot, lease in self._arr_leases.items():
            query = self._slicer.query(slot)
            if query is None:
                continue
            next_start, _next_end = query.spec.windows_for(
                query.created_at_ms, query.next_fire_index
            )
            lease.advance(next_start)
        retention = self._arrangement_retention_ms
        if retention is None:
            retention = max(2 * self._slicer.max_retention_ms, 1_000)
        self._arrangement.advance_frontier(watermark_ms - retention)

    def _fire_time_window(self, slot: int, start: int, end: int) -> None:
        spec = self._specs.get(slot)
        if spec is None:
            return
        current_epoch = self._changelogs.current_epoch
        merged: Dict[Any, Any] = {}
        for slice_ in self._slices.overlapping(start, end):
            validity = self._changelogs.cl_set(current_epoch, slice_.epoch)
            self.bitset_ops += 1
            if not (validity >> slot) & 1:
                continue
            store = slice_.store or {}
            for key, acc in store.get(slot, {}).items():
                existing = merged.get(key)
                merged[key] = acc if existing is None else spec.merge(existing, acc)
        window = Window(start, end)
        for key in sorted(merged, key=repr):
            self._emit(slot, key, window, spec.finish(merged[key]))

    def _fire_sessions(self, watermark_ms: int) -> None:
        for (slot, key), state in list(self._session_state.items()):
            window_spec, agg_spec = self._session_specs.get(slot, (None, None))
            if window_spec is None:
                continue
            remaining = []
            for start, end, acc in state.sessions:
                if end - 1 <= watermark_ms:
                    self._emit(
                        slot, key, Window(start, end), agg_spec.finish(acc)
                    )
                else:
                    remaining.append((start, end, acc))
            if remaining:
                state.sessions = remaining
            else:
                del self._session_state[(slot, key)]

    def _emit(self, slot: int, key: Any, window: Window, value: Any) -> None:
        self.results_emitted += 1
        self.output(
            Record(
                timestamp=window.max_timestamp(),
                value=AggregationResult(key=key, window=window, value=value),
                key=key,
                tags={QS_TAG: 1 << slot},
            )
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def active_query_count(self) -> int:
        """Queries currently subscribed to this aggregation."""
        return len(self._specs) + len(self._session_specs)

    @property
    def live_slices(self) -> int:
        """Slices currently retained."""
        return len(self._slices)

    def state_store_stats(self) -> Optional[Dict[str, Any]]:
        """Spill-store stats (segments, spilled bytes); None on memory."""
        if self._store_host is None:
            return None
        return self._store_host.stats()

    def arrangement_stats(self) -> Optional[Dict[str, Any]]:
        """Arrangement gauges (+ backfill counters); None when off."""
        if self._arrangement is None:
            return None
        stats = self._arrangement.stats()
        stats["backfilled_windows"] = self.backfilled_windows
        stats["backfilled_results"] = self.backfilled_results
        return stats

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> Any:
        if self._store_host is None:
            state = copy.deepcopy(
                {
                    "slicer": self._slicer,
                    "slices": self._slices,
                    "changelogs": self._changelogs,
                    "specs": self._specs,
                    "subscribed": self._subscribed,
                    "session_specs": self._session_specs,
                    "session_state": self._session_state,
                }
            )
            self._snapshot_arrangement(state)
            return state
        # lsm: metadata plus an incremental segment manifest.  The
        # accumulator values stay in their immutable on-disk segments;
        # the payload carries segment *paths* (and the per-slice key
        # lists needed to rebuild the views), so checkpoint cost scales
        # with the delta written since the last barrier, not with total
        # state size.
        store = self._store_host.store
        for slice_ in self._slices:
            if isinstance(slice_.store, SpilledSliceStore):
                slice_.store.spill_hot()
        if store.stats()["segments"] > _COMPACT_SEGMENTS:
            store.compact()  # background-free compaction at the barrier
        state: Dict[str, Any] = {
            "state_backend": "lsm",
            "slicer": copy.deepcopy(self._slicer),
            "changelogs": copy.deepcopy(self._changelogs),
            "specs": copy.deepcopy(self._specs),
            "subscribed": self._subscribed,
            "session_specs": copy.deepcopy(self._session_specs),
            "session_state": copy.deepcopy(self._session_state),
            "slices_meta": [
                (
                    slice_.start,
                    slice_.end,
                    slice_.epoch,
                    slice_.store.key_manifest()
                    if isinstance(slice_.store, SpilledSliceStore)
                    else None,
                )
                for slice_ in self._slices
            ],
            "created_total": self._slices.created_total,
            "expired_total": self._slices.expired_total,
            "expiry_horizon": self._slices._expiry_horizon_ms,
            "store_checkpoint": store.checkpoint(),
        }
        self._snapshot_arrangement(state)
        return state

    def _snapshot_arrangement(self, state: Dict[str, Any]) -> None:
        if self._arrangement is None:
            return
        state["arrangement"] = copy.deepcopy(self._arrangement)
        state["arrangement_leases"] = {
            slot: lease.lease_id for slot, lease in self._arr_leases.items()
        }

    def restore(self, snapshot: Any) -> None:
        """Restore from either snapshot shape, on either backend.

        Memory-backend snapshots are the materialised dict shape; lsm
        snapshots are manifests.  Elastic resize and recovery may cross
        the two (a memory donor restored into an lsm instance, or an lsm
        checkpoint inspected by a memory one), so both are accepted and
        converted as needed.
        """
        is_manifest = (
            isinstance(snapshot, dict)
            and snapshot.get("state_backend") == "lsm"
        )
        if is_manifest and self._store_host is not None:
            self._restore_manifest(snapshot)
        else:
            if is_manifest:
                snapshot = materialize_agg_snapshot(snapshot)
            self._restore_materialized(snapshot)
        self._relink_arrangement(snapshot)

    def _restore_materialized(self, snapshot: Any) -> None:
        state = copy.deepcopy(snapshot)
        self._slicer = state["slicer"]
        self._changelogs = state["changelogs"]
        self._specs = state["specs"]
        self._subscribed = state["subscribed"]
        self._session_specs = state["session_specs"]
        self._session_state = state["session_state"]
        slices: SliceIndex = state["slices"]
        if self._store_host is None:
            self._slices = slices
            return
        # Re-spill the materialised accumulators into this instance's
        # own store (resize/recovery hand materialised donors around).
        self._store_host.store.clear()
        rebuilt = SliceIndex()
        for slice_ in slices:
            new_slice = rebuilt.get_or_create(
                slice_.start, slice_.end, slice_.epoch
            )
            if not slice_.store:
                continue
            spill = self._store_host.make_slice_store(slice_.start)
            for slot, per_key in slice_.store.items():
                view = spill.setdefault(slot)
                for key, acc in per_key.items():
                    view[key] = acc
            new_slice.store = spill
        rebuilt.created_total = slices.created_total
        rebuilt.expired_total = slices.expired_total
        rebuilt._expiry_horizon_ms = slices._expiry_horizon_ms
        self._slices = rebuilt

    def _restore_manifest(self, snapshot: Dict[str, Any]) -> None:
        """lsm manifest -> lsm instance: adopt segments by path."""
        self._slicer = copy.deepcopy(snapshot["slicer"])
        self._changelogs = copy.deepcopy(snapshot["changelogs"])
        self._specs = copy.deepcopy(snapshot["specs"])
        self._subscribed = snapshot["subscribed"]
        self._session_specs = copy.deepcopy(snapshot["session_specs"])
        self._session_state = copy.deepcopy(snapshot["session_state"])
        self._store_host.store.restore(snapshot["store_checkpoint"])
        rebuilt = SliceIndex()
        for start, end, epoch, manifest in snapshot["slices_meta"]:
            slice_ = rebuilt.get_or_create(start, end, epoch)
            if manifest:
                spill = self._store_host.make_slice_store(start)
                spill.adopt_keys(manifest)
                slice_.store = spill
        rebuilt.created_total = snapshot["created_total"]
        rebuilt.expired_total = snapshot["expired_total"]
        rebuilt._expiry_horizon_ms = snapshot["expiry_horizon"]
        self._slices = rebuilt

    def _relink_arrangement(self, snapshot: Any) -> None:
        if self._arrangement is None:
            return
        payload = (
            snapshot.get("arrangement") if isinstance(snapshot, dict) else None
        )
        if payload is None:
            # Snapshot predates arrangements (or they were off on the
            # donor): start fresh and re-lease the live slots so
            # frontier control resumes immediately.
            self._arrangement = Arrangement(self.operator_key)
            self._arr_leases = {}
            for slot in self._specs:
                query = self._slicer.query(slot)
                floor = query.created_at_ms if query is not None else None
                self._arr_leases[slot] = self._arrangement.acquire_lease(
                    f"slot-{slot}", floor=floor
                )
            return
        self._arrangement = copy.deepcopy(payload)
        self._arr_leases = {}
        for slot, lease_id in snapshot.get("arrangement_leases", {}).items():
            lease = self._arrangement._leases.get(lease_id)
            if lease is not None:
                self._arr_leases[slot] = lease

    def close(self) -> None:
        """Release the spill store (its directory, if operator-owned)."""
        if self._store_host is not None:
            self._store_host.close()


# Compact the spill store at a checkpoint barrier once it holds more than
# this many segments: read amplification stays bounded while most
# checkpoints still ship only the delta segments.
_COMPACT_SEGMENTS = 8


def materialize_agg_snapshot(snapshot: Any) -> Any:
    """Expand an lsm-manifest snapshot into the materialised dict shape.

    Migration splits donor state key-by-key, and a memory-backend
    instance restoring an lsm checkpoint needs plain values; both paths
    call this.  Materialised snapshots pass through unchanged.
    """
    if not (
        isinstance(snapshot, dict) and snapshot.get("state_backend") == "lsm"
    ):
        return snapshot
    materialized = materialize_checkpoint(snapshot["store_checkpoint"])
    slices = SliceIndex()
    for start, end, epoch, manifest in snapshot["slices_meta"]:
        slice_ = slices.get_or_create(start, end, epoch)
        if manifest:
            slice_.store = {
                slot: {
                    key: materialized[(start, slot, key)]
                    for key in keys
                    if (start, slot, key) in materialized
                }
                for slot, keys in manifest.items()
            }
    slices.created_total = snapshot["created_total"]
    slices.expired_total = snapshot["expired_total"]
    slices._expiry_horizon_ms = snapshot["expiry_horizon"]
    out: Dict[str, Any] = {
        "slicer": copy.deepcopy(snapshot["slicer"]),
        "slices": slices,
        "changelogs": copy.deepcopy(snapshot["changelogs"]),
        "specs": copy.deepcopy(snapshot["specs"]),
        "subscribed": snapshot["subscribed"],
        "session_specs": copy.deepcopy(snapshot["session_specs"]),
        "session_state": copy.deepcopy(snapshot["session_state"]),
    }
    if "arrangement" in snapshot:
        out["arrangement"] = copy.deepcopy(snapshot["arrangement"])
        out["arrangement_leases"] = dict(
            snapshot.get("arrangement_leases", {})
        )
    return out
