"""Shared windowed join (§3.1.4, Figure 4f).

One shared join operator executes *all* windowed equi-joins between two
streams.  Incoming tuples (already tagged with query-sets by the shared
selections) are stored once per slice; when the watermark completes a
query window, the operator joins the slice pairs covering that window —
*once* — and keeps the results in a computation history so overlapping
windows of other queries (or later windows of sliding queries) reuse
them instead of recomputing (Figure 4f: at T5 the slice joins are
performed once and reused for Q4, Q5, Q6 and Q7).

Correctness across ad-hoc changes: a pair result's raw query-set is the
AND of the two tuples' query-sets; at emission it is further ANDed with
the changelog-sets between each slice's epoch and the current epoch
(Equation 1), which kills bit positions whose meaning changed — e.g. a
tuple tagged for a deleted query whose slot was reused (§2.1.2's
``10 & 11 & 11`` example).

Storage adapts per §3.1.4/§3.2.3: slices start grouped by query-set
(enabling group-level pruning) and flip to flat lists when the mean
group size drops below ``group_size_threshold`` or the number of active
queries exceeds ``storage_query_threshold``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.changelog import Changelog, ChangelogTable
from repro.core.query import WindowSpec
from repro.core.selection import QS_TAG
from repro.core.slicing import Slice, SliceIndex, SliceManager
from repro.core.storage import (
    GroupedStore,
    StoreKind,
    convert_store,
    make_store,
)
from repro.minispe.operators import TwoInputOperator
from repro.minispe.record import ChangelogMarker, Record, Watermark


@dataclass(frozen=True)
class JoinedTuple:
    """The payload of a shared-join result.

    ``parts`` holds the joined component payloads left-to-right; for
    cascaded n-ary joins the parts flatten, so a three-way join yields
    three parts.  ``fields`` delegates to the first component so a
    downstream aggregation can reference ``A.FIELD1`` as in Figure 8.
    """

    key: Any
    parts: Tuple[Any, ...]
    timestamp: int

    @property
    def fields(self):
        """Field view of the leading component (for aggregation specs)."""
        return self.parts[0].fields


StoredTuple = Tuple[Any, int]
"""(payload, event timestamp) as kept inside slice stores."""

PairResults = Dict[int, List[Tuple[Any, Any, int]]]
"""raw query-set -> [(key, joined payload, joined event timestamp)].

Grouping the computation history by the results' raw query-set lets a
window fire skip whole groups that share no query with the firing slots
— the same pruning idea as the grouped slice store, applied to cached
join results."""


class SharedJoinOperator(TwoInputOperator):
    """Ad-hoc shared windowed equi-join between two tagged streams.

    ``operator_key`` is the stage name queries subscribe with (e.g.
    ``"join:A~B"``); changelog markers carry full query plans, and the
    operator tracks exactly the queries that include this stage.
    """

    def __init__(
        self,
        operator_key: str,
        group_size_threshold: float = 2.0,
        storage_query_threshold: int = 10,
        profile: bool = False,
        enable_history: bool = True,
    ) -> None:
        super().__init__(operator_key)
        self.operator_key = operator_key
        self.group_size_threshold = group_size_threshold
        self.storage_query_threshold = storage_query_threshold
        self.profile = profile
        self.enable_history = enable_history
        """Ablation switch: False recomputes every slice pair per window
        instead of reusing the computation history (§3.2.1 off)."""

        self._slicer = SliceManager()
        self._left = SliceIndex()
        self._right = SliceIndex()
        self._changelogs = ChangelogTable()
        self._store_kind = StoreKind.GROUPED
        # Computation history: (left slice id, right slice id) -> results.
        self._pair_cache: Dict[
            Tuple[Tuple[int, int], Tuple[int, int]], PairResults
        ] = {}
        self._output_slots = 0  # bitset of slots whose final stage is here

        # Introspection / Figure 18 accounting.
        self.bitset_ops = 0
        self.pairs_computed = 0
        self.pairs_reused = 0
        self.tuples_stored = 0
        self.results_emitted = 0
        self.late_records_dropped = 0
        self.profile_ns = 0
        self._last_watermark_ms = -1
        self._forwarded_watermark_ms = -1

        # Telemetry hub, attached by the owning engine when observe mode
        # is on; slice churn events are emitted from the watermark path
        # (never the per-record path) so the overhead stays off-band.
        self.obs = None
        self._obs_slices_created = 0
        self._obs_slices_expired = 0

    def _emit_slice_events(self, watermark_ms: int) -> None:
        created = self._left.created_total + self._right.created_total
        expired = self._left.expired_total + self._right.expired_total
        if created != self._obs_slices_created:
            self.obs.events.emit(
                "slice_create",
                t_ms=watermark_ms,
                operator=self.name,
                count=created - self._obs_slices_created,
                live=len(self._left) + len(self._right),
            )
            self._obs_slices_created = created
        if expired != self._obs_slices_expired:
            self.obs.events.emit(
                "slice_expire",
                t_ms=watermark_ms,
                operator=self.name,
                count=expired - self._obs_slices_expired,
                live=len(self._left) + len(self._right),
            )
            self._obs_slices_expired = expired

    # -- data path ---------------------------------------------------------

    def process_left(self, record: Record) -> None:
        self._store(record, self._left)

    def process_right(self, record: Record) -> None:
        self._store(record, self._right)

    def process_left_batch(self, records: List[Record]) -> None:
        self._store_batch(records, self._left)

    def process_right_batch(self, records: List[Record]) -> None:
        self._store_batch(records, self._right)

    def _store_batch(self, records: List[Record], side: SliceIndex) -> None:
        """Vectorized ingest: the slice (and its store) is resolved once
        per run of timestamps with the same slice bounds — batches are
        near-sorted, so this collapses most per-record index lookups."""
        late_horizon = self._last_watermark_ms - self._slicer.max_retention_ms
        slice_bounds = self._slicer.slice_bounds
        get_or_create = side.get_or_create
        stored = 0
        late = 0
        last_bounds: Optional[Tuple[int, int, int]] = None
        store = None
        for record in records:
            query_set = record.tags.get(QS_TAG, 0)
            if not query_set:
                continue
            timestamp = record.timestamp
            if timestamp <= late_horizon:
                late += 1
                continue
            bounds = slice_bounds(timestamp)
            if bounds != last_bounds:
                slice_ = get_or_create(*bounds)
                if slice_.store is None:
                    slice_.store = make_store(self._store_kind)
                store = slice_.store
                last_bounds = bounds
            store.add(record.key, (record.value, timestamp), query_set)
            stored += 1
        self.tuples_stored += stored
        self.late_records_dropped += late

    def _store(self, record: Record, side: SliceIndex) -> None:
        query_set = record.tags.get(QS_TAG, 0)
        if not query_set:
            return
        if record.timestamp <= self._last_watermark_ms - self._slicer.max_retention_ms:
            # Beyond any window that could still fire: drop, but make the
            # drop observable (a real deployment would alert on this).
            self.late_records_dropped += 1
            return
        start, end, epoch = self._slicer.slice_bounds(record.timestamp)
        slice_ = side.get_or_create(start, end, epoch)
        if slice_.store is None:
            slice_.store = make_store(self._store_kind)
        slice_.store.add(record.key, (record.value, record.timestamp), query_set)
        self.tuples_stored += 1

    # -- changelog handling --------------------------------------------------

    def on_marker(self, marker: ChangelogMarker) -> None:
        changelog: Changelog = marker.changelog
        self._changelogs.append(changelog)
        for deactivation in changelog.deleted:
            self._slicer.unregister_query(deactivation.slot)
            self._output_slots &= ~(1 << deactivation.slot)
        for activation in changelog.created:
            spec = self._window_for(activation)
            if spec is not None:
                self._slicer.register_query(
                    activation.slot, spec, activation.created_at_ms
                )
                if self._is_output_stage(activation):
                    self._output_slots |= 1 << activation.slot
        self._slicer.on_epoch(changelog.sequence, marker.timestamp)
        self._maybe_switch_storage()
        self.output(marker)

    def _window_for(self, activation) -> Optional[WindowSpec]:
        for stage in activation.query.stages():
            if stage.operator == self.operator_key:
                return self._stage_window(activation.query)
        return None

    def _is_output_stage(self, activation) -> bool:
        for stage in activation.query.stages():
            if stage.operator == self.operator_key:
                return stage.is_output
        return False

    @staticmethod
    def _stage_window(query) -> WindowSpec:
        # Complex queries carry a dedicated join window; plain join
        # queries expose it as their (only) window.
        join_window = getattr(query, "join_window", None)
        if join_window is not None:
            return join_window
        return query.window

    def _maybe_switch_storage(self) -> None:
        """The adaptive data structure switch (§3.1.4, §3.2.3)."""
        active = len(self._slicer.queries())
        if self._store_kind is StoreKind.GROUPED:
            if active > self.storage_query_threshold or self._groups_too_small():
                self._switch_storage(StoreKind.LIST)
        elif active <= self.storage_query_threshold // 2:
            # Hysteresis: only fall back to grouped at half the threshold.
            self._switch_storage(StoreKind.GROUPED)

    def _groups_too_small(self) -> bool:
        sizes = []
        for side in (self._left, self._right):
            for slice_ in side:
                if isinstance(slice_.store, GroupedStore) and slice_.store.tuple_count:
                    sizes.append(slice_.store.mean_group_size())
        if not sizes:
            return False
        return sum(sizes) / len(sizes) < self.group_size_threshold

    def _switch_storage(self, kind: StoreKind) -> None:
        self._store_kind = kind
        for side in (self._left, self._right):
            for slice_ in side:
                if slice_.store is not None:
                    slice_.store = convert_store(slice_.store, kind)

    @property
    def store_kind(self) -> StoreKind:
        """The layout new slices are created with."""
        return self._store_kind

    # -- firing ----------------------------------------------------------------

    def on_watermark(self, watermark: Watermark) -> None:
        started = time.perf_counter_ns() if self.profile else 0
        self._last_watermark_ms = watermark.timestamp
        due = self._slicer.due_windows(watermark.timestamp)
        if due:
            # Queries whose windows share exact bounds are emitted in one
            # pass so the shared pair results fan out as a single record.
            grouped: Dict[Tuple[int, int], int] = {}
            for slot, start, end in due:
                grouped[(start, end)] = grouped.get((start, end), 0) | (1 << slot)
            for (start, end), slots_mask in grouped.items():
                self._fire_window(start, end, slots_mask)
        self._expire(watermark.timestamp)
        if self.obs is not None:
            self._emit_slice_events(watermark.timestamp)
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started
        # Watermark holdback: join results carry the newest *component*
        # timestamp, which can be up to one window length older than the
        # input watermark that released them.  Forwarding the input
        # watermark unmodified would make those results late for
        # downstream cascade stages; hold it back by the longest
        # subscribed window (monotonically — retention shrinks when
        # queries leave, the forwarded watermark must not regress).
        held_back = watermark.timestamp - self._slicer.max_retention_ms
        if held_back > self._forwarded_watermark_ms:
            self._forwarded_watermark_ms = held_back
            self.output(Watermark(held_back))

    def _fire_window(self, start: int, end: int, slots_mask: int) -> None:
        current_epoch = self._changelogs.current_epoch
        left_slices = self._left.overlapping(start, end)
        right_slices = self._right.overlapping(start, end)
        for left_slice in left_slices:
            left_validity = self._changelogs.cl_set(current_epoch, left_slice.epoch)
            for right_slice in right_slices:
                validity = left_validity & self._changelogs.cl_set(
                    current_epoch, right_slice.epoch
                )
                self.bitset_ops += 2
                emit_mask = validity & slots_mask
                if not emit_mask:
                    continue
                results = self._pair_results(left_slice, right_slice)
                output = self.output
                for raw_qs, items in results.items():
                    bits = raw_qs & emit_mask
                    self.bitset_ops += 1
                    if not bits:
                        continue
                    tags = {QS_TAG: bits}
                    self.results_emitted += len(items)
                    for key, payload, joined_ts in items:
                        output(Record(joined_ts, payload, key, tags))

    def _pair_results(
        self, left_slice: Slice, right_slice: Slice
    ) -> PairResults:
        """Join two slices once; reuse via the computation history."""
        if not self.enable_history:
            self.pairs_computed += 1
            return self._compute_pair(left_slice, right_slice)
        cache_key = (left_slice.id, right_slice.id)
        cached = self._pair_cache.get(cache_key)
        if cached is not None:
            self.pairs_reused += 1
            return cached
        self.pairs_computed += 1
        results = self._compute_pair(left_slice, right_slice)
        self._pair_cache[cache_key] = results
        return results

    def _compute_pair(
        self, left_slice: Slice, right_slice: Slice
    ) -> PairResults:
        left_store = left_slice.store
        right_store = right_slice.store
        if left_store is None or right_store is None:
            return {}
        results: PairResults = {}
        if isinstance(left_store, GroupedStore) and isinstance(
            right_store, GroupedStore
        ):
            # Group-level pruning: skip group pairs sharing no query.
            for left_qs, left_keys in left_store.groups():
                for right_qs, right_keys in right_store.groups():
                    self.bitset_ops += 1
                    raw = left_qs & right_qs
                    if not raw:
                        continue
                    group = results.setdefault(raw, [])
                    for key, left_values in left_keys.items():
                        right_values = right_keys.get(key)
                        if not right_values:
                            continue
                        for left_value, left_ts in left_values:
                            for right_value, right_ts in right_values:
                                group.append(
                                    self._join_one(
                                        key, left_value, left_ts,
                                        right_value, right_ts,
                                    )
                                )
        else:
            for key in left_store.keys():
                right_items = right_store.items_for_key(key)
                if not right_items:
                    continue
                for (left_value, left_ts), left_qs in left_store.items_for_key(key):
                    for (right_value, right_ts), right_qs in right_items:
                        self.bitset_ops += 1
                        raw = left_qs & right_qs
                        if not raw:
                            continue
                        results.setdefault(raw, []).append(
                            self._join_one(
                                key, left_value, left_ts, right_value, right_ts
                            )
                        )
        return results

    @staticmethod
    def _join_one(
        key: Any,
        left_value: Any,
        left_ts: int,
        right_value: Any,
        right_ts: int,
    ) -> Tuple[Any, Any, int]:
        # Flatten cascaded joins left-to-right.
        left_parts = (
            left_value.parts
            if isinstance(left_value, JoinedTuple)
            else (left_value,)
        )
        right_parts = (
            right_value.parts
            if isinstance(right_value, JoinedTuple)
            else (right_value,)
        )
        joined_ts = max(left_ts, right_ts)
        payload = JoinedTuple(
            key=key, parts=left_parts + right_parts, timestamp=joined_ts
        )
        return (key, payload, joined_ts)

    # -- retention ----------------------------------------------------------------

    def _expire(self, watermark_ms: int) -> None:
        horizon = watermark_ms - self._slicer.max_retention_ms
        expired_ids = set()
        for side in (self._left, self._right):
            for slice_ in side.expire_before(horizon):
                expired_ids.add(slice_.id)
        if expired_ids:
            stale = [
                key
                for key in self._pair_cache
                if key[0] in expired_ids or key[1] in expired_ids
            ]
            for key in stale:
                del self._pair_cache[key]
        # Bound metadata growth for long-running deployments: epochs and
        # changelog-set memo entries behind the retention horizon can no
        # longer be referenced by any live slice or late record.
        if self._slicer.prune_before(horizon):
            oldest_epoch = self._slicer.timeline.epoch_for(horizon)[0]
            self._changelogs.prune_memo_before(oldest_epoch)

    # -- introspection ---------------------------------------------------------------

    @property
    def active_query_count(self) -> int:
        """Queries currently subscribed to this join."""
        return len(self._slicer.queries())

    @property
    def live_slices(self) -> Tuple[int, int]:
        """(left, right) slice counts currently retained."""
        return (len(self._left), len(self._right))

    @property
    def cached_pairs(self) -> int:
        """Entries in the computation history."""
        return len(self._pair_cache)

    def snapshot(self) -> Any:
        import copy

        return copy.deepcopy(
            {
                "slicer": self._slicer,
                "left": self._left,
                "right": self._right,
                "changelogs": self._changelogs,
                "store_kind": self._store_kind,
                "pair_cache": self._pair_cache,
                "output_slots": self._output_slots,
            }
        )

    def restore(self, snapshot: Any) -> None:
        import copy

        state = copy.deepcopy(snapshot)
        self._slicer = state["slicer"]
        self._left = state["left"]
        self._right = state["right"]
        self._changelogs = state["changelogs"]
        self._store_kind = state["store_kind"]
        self._pair_cache = state["pair_cache"]
        self._output_slots = state["output_slots"]
