"""Query specifications: predicates, windows, and query types.

These model the paper's generated workload (Figures 7 and 8) plus the
complex queries of §4.7:

* selection predicates ``field[i] <op> VAL`` with ``<, >, ==, <=, >=``
  (plus arbitrary callables, since AStream can share black-box UDF
  selections that classical multi-query optimization cannot — §6.2);
* window specs ``[RANGE length] [SLICE slide]`` (tumbling when
  ``slide == length``), and session windows with a gap;
* :class:`SelectionQuery` — filter only;
* :class:`AggregationQuery` — ``SELECT agg(field) ... GROUP BY key`` over
  a window (Figure 8);
* :class:`JoinQuery` — windowed equi-join on the partitioning key with a
  per-stream selection predicate (Figure 7);
* :class:`ComplexQuery` — a pipeline of selections, an n-ary windowed
  join (1 ≤ n ≤ 5), and a windowed aggregation (§4.7).

A query's *plan* tells the engine which shared operators serve it; see
:meth:`Query.stages`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


_query_id_counter = itertools.count(1)


def _fresh_query_id(prefix: str) -> str:
    return f"{prefix}-{next(_query_id_counter)}"


class Comparison(enum.Enum):
    """The binary comparison operators of §4.2.2."""

    LT = "<"
    GT = ">"
    EQ = "=="
    LE = "<="
    GE = ">="

    def apply(self, left: Any, right: Any) -> bool:
        """Evaluate ``left <op> right``."""
        if self is Comparison.LT:
            return left < right
        if self is Comparison.GT:
            return left > right
        if self is Comparison.EQ:
            return left == right
        if self is Comparison.LE:
            return left <= right
        return left >= right


class Predicate:
    """Base class for selection predicates."""

    def evaluate(self, value: Any) -> bool:
        """Return True when ``value`` satisfies the predicate."""
        raise NotImplementedError


@dataclass(frozen=True)
class FieldPredicate(Predicate):
    """``fields[field_index] <op> constant`` — the generated predicate form.

    ``value`` objects are expected to expose ``fields`` (a sequence), as
    the workload's :class:`~repro.workloads.datagen.DataTuple` does.
    """

    field_index: int
    op: Comparison
    constant: float

    def __post_init__(self) -> None:
        if self.field_index < 0:
            raise ValueError(
                f"field index must be non-negative, got {self.field_index}"
            )

    def evaluate(self, value: Any) -> bool:
        return self.op.apply(value.fields[self.field_index], self.constant)

    def __str__(self) -> str:
        return f"fields[{self.field_index}] {self.op.value} {self.constant}"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Accept everything (no WHERE clause)."""

    def evaluate(self, value: Any) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


class CallablePredicate(Predicate):
    """Wrap an arbitrary function — a black-box UDF selection."""

    def __init__(self, fn: Callable[[Any], bool], label: str = "udf") -> None:
        self._fn = fn
        self._label = label

    def evaluate(self, value: Any) -> bool:
        return bool(self._fn(value))

    def __str__(self) -> str:
        return self._label


class WindowKind(enum.Enum):
    """Supported window families (§3.1.3)."""

    TUMBLING = "tumbling"
    SLIDING = "sliding"
    SESSION = "session"


@dataclass(frozen=True)
class WindowSpec:
    """A per-query window configuration.

    For time windows, ``length_ms``/``slide_ms`` mirror the templates'
    ``RANGE``/``SLICE`` values; session windows carry ``gap_ms`` only.
    """

    kind: WindowKind
    length_ms: int = 0
    slide_ms: int = 0
    gap_ms: int = 0

    @classmethod
    def tumbling(cls, length_ms: int) -> "WindowSpec":
        """A tumbling window of ``length_ms``."""
        if length_ms <= 0:
            raise ValueError(f"window length must be positive, got {length_ms}")
        return cls(WindowKind.TUMBLING, length_ms=length_ms, slide_ms=length_ms)

    @classmethod
    def sliding(cls, length_ms: int, slide_ms: int) -> "WindowSpec":
        """A sliding window; collapses to tumbling when slide == length."""
        if length_ms <= 0:
            raise ValueError(f"window length must be positive, got {length_ms}")
        if not 0 < slide_ms <= length_ms:
            raise ValueError(
                f"slide must be in (0, length], got slide={slide_ms} "
                f"length={length_ms}"
            )
        if slide_ms == length_ms:
            return cls.tumbling(length_ms)
        return cls(WindowKind.SLIDING, length_ms=length_ms, slide_ms=slide_ms)

    @classmethod
    def session(cls, gap_ms: int) -> "WindowSpec":
        """A session window with inactivity gap ``gap_ms``."""
        if gap_ms <= 0:
            raise ValueError(f"session gap must be positive, got {gap_ms}")
        return cls(WindowKind.SESSION, gap_ms=gap_ms)

    @property
    def is_session(self) -> bool:
        """True for session windows."""
        return self.kind is WindowKind.SESSION

    def retention_ms(self) -> int:
        """How long a tuple can matter to this window after its timestamp."""
        if self.is_session:
            return self.gap_ms
        return self.length_ms

    def make_assigner(self):
        """Build the substrate window assigner for this spec.

        Used by the query-at-a-time baseline, whose jobs run the
        substrate's standard (epoch-aligned) window operators.
        """
        from repro.minispe.windows import (
            SessionWindows,
            SlidingWindows,
            TumblingWindows,
        )

        if self.kind is WindowKind.TUMBLING:
            return TumblingWindows(self.length_ms)
        if self.kind is WindowKind.SLIDING:
            return SlidingWindows(self.length_ms, self.slide_ms)
        return SessionWindows(self.gap_ms)

    def windows_for(self, created_at_ms: int, fire_index: int) -> Tuple[int, int]:
        """The ``fire_index``-th window ``[start, end)`` of an ad-hoc query.

        Ad-hoc query windows are anchored at the query's creation time
        (Figure 4d: windows begin when the query is submitted), so slicing
        is genuinely dynamic — each new query contributes new slice edges.
        """
        if self.is_session:
            raise ValueError("session windows are data-driven, not indexed")
        start = created_at_ms + fire_index * self.slide_ms
        return start, start + self.length_ms

    def __str__(self) -> str:
        if self.is_session:
            return f"session(gap={self.gap_ms}ms)"
        if self.kind is WindowKind.TUMBLING:
            return f"tumbling({self.length_ms}ms)"
        return f"sliding({self.length_ms}ms, {self.slide_ms}ms)"


class AggregationKind(enum.Enum):
    """Aggregation functions supported by the shared aggregation."""

    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregationSpec:
    """``agg(fields[field_index]) GROUP BY key`` (Figure 8)."""

    kind: AggregationKind = AggregationKind.SUM
    field_index: int = 0

    def initial(self) -> Any:
        """Fresh accumulator."""
        if self.kind in (AggregationKind.SUM, AggregationKind.COUNT):
            return 0
        if self.kind is AggregationKind.AVG:
            return (0, 0)  # (sum, count)
        return None  # MIN / MAX start undefined

    def add(self, acc: Any, value: Any) -> Any:
        """Fold one tuple's field into the accumulator."""
        if self.kind is AggregationKind.COUNT:
            return acc + 1
        sample = value.fields[self.field_index]
        if self.kind is AggregationKind.SUM:
            return acc + sample
        if self.kind is AggregationKind.AVG:
            return (acc[0] + sample, acc[1] + 1)
        if acc is None:
            return sample
        if self.kind is AggregationKind.MIN:
            return min(acc, sample)
        return max(acc, sample)

    def merge(self, left: Any, right: Any) -> Any:
        """Combine two accumulators (for cross-slice combination)."""
        if self.kind in (AggregationKind.SUM, AggregationKind.COUNT):
            return left + right
        if self.kind is AggregationKind.AVG:
            return (left[0] + right[0], left[1] + right[1])
        if left is None:
            return right
        if right is None:
            return left
        if self.kind is AggregationKind.MIN:
            return min(left, right)
        return max(left, right)

    def finish(self, acc: Any) -> Any:
        """Extract the final value from an accumulator."""
        if self.kind is AggregationKind.AVG:
            total, count = acc
            return total / count if count else 0.0
        return acc


@dataclass(frozen=True)
class Stage:
    """One shared-operator stage of a query plan.

    ``operator`` names the engine vertex (e.g. ``select:A``, ``join:1``,
    ``agg:A``); the engine subscribes the query's slot at each stage.
    """

    operator: str
    is_output: bool = False
    """True for the stage whose results are routed to the query's sink."""


class Query:
    """Base class for query specifications submitted to an engine."""

    query_id: str
    streams: Tuple[str, ...]

    def stages(self) -> List[Stage]:
        """The shared-operator stages serving this query, in plan order."""
        raise NotImplementedError

    def predicate_for(self, stream: str) -> Predicate:
        """The selection predicate this query applies to ``stream``."""
        raise NotImplementedError

    @property
    def window(self) -> Optional[WindowSpec]:
        """The window of the query's output stage (None for selections)."""
        return None


@dataclass(frozen=True)
class SelectionQuery(Query):
    """Filter one stream with a predicate; results go straight to the sink."""

    stream: str
    predicate: Predicate
    query_id: str = field(default_factory=lambda: _fresh_query_id("sel"))

    @property
    def streams(self) -> Tuple[str, ...]:
        """The single stream this selection reads."""
        return (self.stream,)

    def stages(self) -> List[Stage]:
        return [Stage(f"select:{self.stream}", is_output=True)]

    def predicate_for(self, stream: str) -> Predicate:
        if stream != self.stream:
            raise KeyError(f"query {self.query_id} does not read {stream!r}")
        return self.predicate


@dataclass(frozen=True)
class AggregationQuery(Query):
    """Windowed grouped aggregation over one stream (Figure 8)."""

    stream: str
    predicate: Predicate
    window_spec: WindowSpec
    aggregation: AggregationSpec = AggregationSpec()
    query_id: str = field(default_factory=lambda: _fresh_query_id("agg"))

    @property
    def streams(self) -> Tuple[str, ...]:
        """The single stream this aggregation reads."""
        return (self.stream,)

    @property
    def window(self) -> WindowSpec:
        return self.window_spec

    def stages(self) -> List[Stage]:
        return [
            Stage(f"select:{self.stream}"),
            Stage(f"agg:{self.stream}", is_output=True),
        ]

    def predicate_for(self, stream: str) -> Predicate:
        if stream != self.stream:
            raise KeyError(f"query {self.query_id} does not read {stream!r}")
        return self.predicate


@dataclass(frozen=True)
class JoinQuery(Query):
    """Windowed equi-join of two streams on the key (Figure 7)."""

    left_stream: str
    right_stream: str
    left_predicate: Predicate
    right_predicate: Predicate
    window_spec: WindowSpec
    query_id: str = field(default_factory=lambda: _fresh_query_id("join"))

    def __post_init__(self) -> None:
        if self.left_stream == self.right_stream:
            raise ValueError("self-joins need distinct stream aliases")
        if self.window_spec.is_session:
            raise ValueError("windowed joins use time windows (Figure 7)")

    @property
    def streams(self) -> Tuple[str, ...]:
        """Both joined streams, left first."""
        return (self.left_stream, self.right_stream)

    @property
    def window(self) -> WindowSpec:
        return self.window_spec

    def stages(self) -> List[Stage]:
        return [
            Stage(f"select:{self.left_stream}"),
            Stage(f"select:{self.right_stream}"),
            Stage(f"join:{self.left_stream}~{self.right_stream}", is_output=True),
        ]

    def predicate_for(self, stream: str) -> Predicate:
        if stream == self.left_stream:
            return self.left_predicate
        if stream == self.right_stream:
            return self.right_predicate
        raise KeyError(f"query {self.query_id} does not read {stream!r}")


@dataclass(frozen=True)
class ComplexQuery(Query):
    """Selection + n-ary windowed join + windowed aggregation (§4.7).

    The n-ary join over streams ``S0 .. Sn`` executes as a left-deep
    cascade of shared binary joins (the paper: "the output of the shared
    join operator can be shared with other downstream join operators",
    §3.1.5); the final aggregation runs over the join output.
    """

    join_streams: Tuple[str, ...]
    predicates: Tuple[Predicate, ...]
    join_window: WindowSpec
    aggregation_window: WindowSpec
    aggregation: AggregationSpec = AggregationSpec()
    query_id: str = field(default_factory=lambda: _fresh_query_id("cx"))

    def __post_init__(self) -> None:
        if len(self.join_streams) < 2:
            raise ValueError("a complex query joins at least two streams")
        if len(self.predicates) != len(self.join_streams):
            raise ValueError(
                f"need one predicate per stream: {len(self.predicates)} "
                f"predicates for {len(self.join_streams)} streams"
            )
        if self.join_window.is_session:
            raise ValueError("windowed joins use time windows (Figure 7)")

    @property
    def streams(self) -> Tuple[str, ...]:
        """All joined streams, in cascade order."""
        return self.join_streams

    @property
    def window(self) -> WindowSpec:
        return self.aggregation_window

    @property
    def join_arity(self) -> int:
        """Number of binary join stages in the cascade."""
        return len(self.join_streams) - 1

    def stages(self) -> List[Stage]:
        plan = [Stage(f"select:{stream}") for stream in self.join_streams]
        left = self.join_streams[0]
        for right in self.join_streams[1:]:
            plan.append(Stage(f"join:{left}~{right}"))
            left = f"{left}~{right}"
        plan.append(Stage(f"agg:{left}", is_output=True))
        return plan

    def predicate_for(self, stream: str) -> Predicate:
        for candidate, predicate in zip(self.join_streams, self.predicates):
            if candidate == stream:
                return predicate
        raise KeyError(f"query {self.query_id} does not read {stream!r}")
