"""The AStream engine facade (Figure 2).

:class:`AStreamEngine` wires the shared operators into **one** dataflow
topology that is deployed once and never restarted: ad-hoc queries attach
and detach purely through changelog markers woven into the streams, which
is where AStream's deployment-latency advantage over query-at-a-time
engines comes from (§4.5: "AStream avoids deploying a new streaming
topology for each query.  Instead, it creates and deletes user queries
on-the-fly without affecting the running topology").

Topology layout for streams ``S0 .. Sn`` (each vertex with the cluster's
operator parallelism; R = router)::

    source:Si ──▶ select:Si ──▶ R                      (selection queries)
                     │
                     ├────────▶ agg:Si ──▶ R           (aggregation queries)
                     │
                     └──▶ join:S0~S1 ──▶ R             (join queries)
                              │
                              ├──▶ agg:S0~S1 ──▶ R     (complex queries)
                              └──▶ join:S0~S1~S2 …     (deeper cascades)

All stage names follow :meth:`repro.core.query.Query.stages`, which is
how a submitted query finds its operators.
"""

from __future__ import annotations

import logging
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.changelog import Changelog
from repro.core.query import Query
from repro.core.registry import QueryRegistry, SlotPolicy
from repro.core.router import QueryChannels, QueryOutput, RouterOperator
from repro.core.selection import SharedSelectionOperator
from repro.core.session import QueryRequest, SharedSession
from repro.core.statistics import SharingStatistics
from repro.core.shared_aggregation import SharedAggregationOperator
from repro.core.shared_join import SharedJoinOperator
from repro.minispe.checkpoint import incremental_delta
from repro.minispe.cluster import SimulatedCluster
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.record import (
    ChangelogMarker,
    CheckpointBarrier,
    Record,
    RecordBatch,
    Watermark,
)
from repro.minispe.runtime import JobRuntime
from repro.obs import Observability
from repro.obs.cost import attribute_costs, slots_of

logger = logging.getLogger("repro.core.engine")


@dataclass
class EngineConfig:
    """Tunable knobs of an AStream deployment."""

    streams: Tuple[str, ...] = ("A", "B")
    max_join_arity: int = 1
    """Binary-join cascade depth: 1 supports A⋈B, 4 supports 5-way joins."""
    changelog_batch_size: int = 100
    changelog_timeout_ms: int = 1_000
    parallelism: Optional[int] = None
    """Operator parallelism; default: one instance per cluster node."""
    slot_policy: SlotPolicy = SlotPolicy.REUSE
    group_size_threshold: float = 2.0
    storage_query_threshold: int = 10
    retain_results: bool = True
    profile: bool = False
    enable_slicing: bool = True
    """Ablation switch: False forces per-query windows (no slice sharing)."""
    dedup_predicates: bool = True
    """Evaluate predicates shared by several queries once (selection-level
    sharing; ablation switch)."""
    share_overlapping: bool = True
    """Rewrite *overlapping* (non-identical) selection predicates onto
    shared covering groups with per-query residual filters — the §7
    semantic-overlap optimizer (ISSUE 8).  Exact: outputs are
    byte-identical either way.  Requires ``dedup_predicates``; disable
    for the sharing ablation."""
    log_inputs: bool = False
    """Keep an input log so :meth:`AStreamEngine.checkpoint` /
    :meth:`AStreamEngine.recover` provide exactly-once fault tolerance
    (§3.3: deterministic replay of tuples and changelog markers)."""
    collect_sharing_stats: bool = False
    """Collect runtime query-overlap statistics (§7 future work); read
    them via :meth:`AStreamEngine.sharing_report`."""
    observe: bool = False
    """Enable the :mod:`repro.obs` telemetry subsystem: hierarchical
    metrics, sampled span tracing of the tuple lifecycle, and the
    structured control-plane event log.  Off (the default) compiles the
    instrumentation out of the hot paths — outputs are byte-identical
    either way."""
    obs_sample_every: int = 32
    """Trace every Nth source push when ``observe`` is on."""
    obs_event_capacity: int = 65_536
    """Event-log ring size when ``observe`` is on."""
    state_backend: str = "memory"
    """Physical backend for the shared aggregations' keyed state:
    ``"memory"`` keeps accumulator maps as plain dicts; ``"lsm"`` spills
    them through per-operator append-only segment stores
    (:mod:`repro.store`) so keyed state can exceed RAM and checkpoints
    become incremental segment manifests.  Outputs are byte-identical
    across backends."""
    state_dir: Optional[str] = None
    """Root directory for lsm spill files.  ``None`` (the default) lets
    the engine create a temporary root it removes at shutdown; the
    process backend injects the coordinator's root into workers so
    checkpointed segments stay adoptable across kill/recover."""
    state_memtable_entries: int = 16_384
    """Buffered writes per spill store before a segment flush (lsm)."""
    shared_arrangements: bool = False
    """Maintain a multi-version :class:`repro.store.Arrangement` in each
    shared aggregation and *warm-attach* newly created queries: windows
    that predate a query's creation are backfilled from arranged history
    at deployment time instead of waiting a full window of fresh data.
    Off by default — backfill adds results a cold deployment never
    produces, so the byte-equality gates run without it."""
    arrangement_retention_ms: Optional[int] = None
    """How far behind the watermark arrangements keep exact deltas;
    ``None`` derives twice the longest active window."""

    def __post_init__(self) -> None:
        if len(self.streams) < 1:
            raise ValueError("the engine needs at least one input stream")
        if self.max_join_arity < 1:
            raise ValueError(
                f"max_join_arity must be >= 1, got {self.max_join_arity}"
            )
        if self.state_backend not in ("memory", "lsm"):
            raise ValueError(
                f"unknown state backend {self.state_backend!r} "
                "(expected 'memory' or 'lsm')"
            )

    @property
    def effective_join_arity(self) -> int:
        """Cascade depth actually buildable with the configured streams."""
        return min(self.max_join_arity, max(len(self.streams) - 1, 0))


@dataclass
class EngineCheckpoint:
    """One completed whole-engine checkpoint (state + log offset)."""

    checkpoint_id: int
    log_offset: int
    runtime_state: Dict[str, Dict[int, Any]] = field(repr=False, default_factory=dict)
    channels_state: dict = field(repr=False, default_factory=dict)
    session_state: Any = field(repr=False, default=None)
    last_watermark_ms: int = -1
    stream_watermarks: Dict[str, int] = field(default_factory=dict)


@dataclass
class RecoveryInfo:
    """What one :meth:`AStreamEngine.recover` call actually did."""

    checkpoint_id: Optional[int]
    """Checkpoint restored from (None = cold replay from offset 0)."""
    replayed_elements: int
    """Input-log entries re-pushed through the fresh runtime."""
    restored_queries: int
    """Queries live immediately after state restoration."""


@dataclass
class DeploymentEvent:
    """Bookkeeping for one query creation/deletion, for QoS metrics."""

    query_id: str
    kind: str  # "create" | "delete"
    requested_at_ms: int
    changelog_at_ms: int
    ready_at_ms: int

    @property
    def deployment_latency_ms(self) -> int:
        """Request enqueue → query live (§4.3)."""
        return self.ready_at_ms - self.requested_at_ms


class AStreamEngine:
    """Ad-hoc shared stream processing on the minispe substrate.

    Typical use::

        engine = AStreamEngine(EngineConfig(streams=("A", "B")))
        engine.submit(query, now_ms=0)
        engine.tick(now_ms=1_000)         # flush the session -> changelog
        engine.push("A", ts, tuple_)
        engine.watermark(ts)
        engine.results(query.query_id)
    """

    JOB_NAME = "astream"

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        cluster: Optional[SimulatedCluster] = None,
        on_deliver: Optional[Callable[[str, Record], None]] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.cluster = cluster or SimulatedCluster()
        self.channels = QueryChannels(
            retain_results=self.config.retain_results, on_deliver=on_deliver
        )
        self.session = SharedSession(
            registry=QueryRegistry(self.config.slot_policy),
            batch_size=self.config.changelog_batch_size,
            timeout_ms=self.config.changelog_timeout_ms,
        )
        self._parallelism = (
            self.config.parallelism
            if self.config.parallelism is not None
            else self.cluster.parallelism_for()
        )
        self._sharing_stats: Dict[str, SharingStatistics] = (
            {stream: SharingStatistics() for stream in self.config.streams}
            if self.config.collect_sharing_stats
            else {}
        )
        self._selections: Dict[str, List[SharedSelectionOperator]] = {}
        self._joins: Dict[str, List[SharedJoinOperator]] = {}
        self._aggregations: Dict[str, List[SharedAggregationOperator]] = {}
        self._routers: Dict[str, List[RouterOperator]] = {}
        self._stage_names: set = set()
        # Spill root for the lsm backend.  Created before the graph so
        # operator factories can place their stores under it; owned (and
        # removed at shutdown) only when the caller did not name one —
        # worker processes receive the coordinator's root and never
        # clean it.
        self._state_root: Optional[str] = None
        self._owns_state_root = False
        if self.config.state_backend == "lsm":
            if self.config.state_dir is not None:
                self._state_root = self.config.state_dir
            else:
                self._state_root = tempfile.mkdtemp(prefix="astream-state-")
                self._owns_state_root = True
        self.obs: Optional[Observability] = (
            Observability(
                sample_every=self.config.obs_sample_every,
                event_capacity=self.config.obs_event_capacity,
            )
            if self.config.observe
            else None
        )
        self.graph = self._build_graph()
        self.runtime = self._make_runtime()
        self.cluster.allocate(self.JOB_NAME, self.graph.total_instances())
        self.deployment_events: List[DeploymentEvent] = []
        self._topology_deployed = False
        self._last_watermark_ms = -1
        self._stream_watermarks: Dict[str, int] = {}
        self._pending_requests: List[QueryRequest] = []
        # Exactly-once support (config.log_inputs): a replayable log of
        # everything that entered the dataflow, plus completed checkpoints.
        self._input_log: List[Tuple[str, Any]] = []
        self._input_log_base = 0
        self._next_checkpoint_id = 1
        self._checkpoints: List[EngineCheckpoint] = []
        # Data-path CPU meter for per-query cost attribution.  Metered
        # only under observe/profile so the plain hot path keeps zero
        # clock reads; two perf_counter_ns calls per (batched) push is
        # well inside the >= 0.90x observe-overhead budget.
        self._meter_cpu = self.obs is not None or self.config.profile
        self._ingest_cpu_ns = 0

    # -- topology ------------------------------------------------------------

    def _make_runtime(self) -> JobRuntime:
        """Build the execution backend for :attr:`graph`.

        The default is the in-process :class:`JobRuntime`; subclasses
        (:class:`repro.core.parallel_engine.ProcessAStreamEngine`)
        override this seam to plug in a different
        :class:`~repro.minispe.runtime.ExecutionBackend` without
        touching the engine's control and data paths.  Called once at
        construction and again by :meth:`recover` to redeploy.
        """
        return JobRuntime(self.graph, obs=self.obs)

    def _make_aggregation(self, operator_key: str) -> SharedAggregationOperator:
        """Construct one shared-aggregation instance with the configured
        storage plane (state backend, spill root, arrangements)."""
        config = self.config
        return SharedAggregationOperator(
            operator_key,
            profile=config.profile,
            state_backend=config.state_backend,
            state_dir=self._state_root,
            memtable_entries=config.state_memtable_entries,
            arrangements=config.shared_arrangements,
            arrangement_retention_ms=config.arrangement_retention_ms,
        )

    def _build_graph(self) -> JobGraph:
        config = self.config
        graph = JobGraph(self.JOB_NAME)
        parallelism = self._parallelism

        def register(holder: Dict[str, list], key: str, operator):
            holder.setdefault(key, []).append(operator)
            # Shared operators emit control-plane events (slice
            # create/expire) when the engine observes; None keeps their
            # watermark path unchanged.
            operator.obs = self.obs
            return operator

        def add_router(graph: JobGraph, upstream_vertex: str, stage_key: str):
            name = f"router:{stage_key}"
            graph.add_operator(
                name,
                lambda sk=stage_key: register(
                    self._routers,
                    sk,
                    RouterOperator(sk, self.channels, profile=config.profile),
                ),
                parallelism=parallelism,
            )
            graph.connect(upstream_vertex, name, Partitioning.FORWARD)

        for stream in config.streams:
            graph.add_source(f"source:{stream}")
            select_key = f"select:{stream}"
            graph.add_operator(
                select_key,
                lambda s=stream: register(
                    self._selections,
                    s,
                    SharedSelectionOperator(
                        s,
                        profile=config.profile,
                        dedup_predicates=config.dedup_predicates,
                        share_overlapping=config.share_overlapping,
                        sharing_stats=self._sharing_stats.get(s),
                    ),
                ),
                parallelism=parallelism,
            )
            graph.connect(f"source:{stream}", select_key, Partitioning.REBALANCE)
            self._stage_names.add(select_key)
            add_router(graph, select_key, select_key)

            agg_key = f"agg:{stream}"
            graph.add_operator(
                agg_key,
                lambda k=agg_key: register(
                    self._aggregations,
                    k,
                    self._make_aggregation(k),
                ),
                parallelism=parallelism,
            )
            graph.connect(select_key, agg_key, Partitioning.HASH)
            self._stage_names.add(agg_key)
            add_router(graph, agg_key, agg_key)

        # Left-deep binary-join cascade over the stream order.
        if len(config.streams) >= 2:
            alias = config.streams[0]
            upstream_vertex = f"select:{config.streams[0]}"
            for depth in range(config.effective_join_arity):
                right_stream = config.streams[depth + 1]
                alias = f"{alias}~{right_stream}"
                join_key = f"join:{alias}"
                graph.add_operator(
                    join_key,
                    lambda k=join_key: register(
                        self._joins,
                        k,
                        SharedJoinOperator(
                            k,
                            group_size_threshold=config.group_size_threshold,
                            storage_query_threshold=config.storage_query_threshold,
                            profile=config.profile,
                            enable_history=config.enable_slicing,
                        ),
                    ),
                    parallelism=parallelism,
                )
                graph.connect(
                    upstream_vertex, join_key, Partitioning.HASH, input_index=0
                )
                graph.connect(
                    f"select:{right_stream}",
                    join_key,
                    Partitioning.HASH,
                    input_index=1,
                )
                self._stage_names.add(join_key)
                add_router(graph, join_key, join_key)

                cascade_agg_key = f"agg:{alias}"
                graph.add_operator(
                    cascade_agg_key,
                    lambda k=cascade_agg_key: register(
                        self._aggregations,
                        k,
                        self._make_aggregation(k),
                    ),
                    parallelism=parallelism,
                )
                graph.connect(join_key, cascade_agg_key, Partitioning.HASH)
                self._stage_names.add(cascade_agg_key)
                add_router(graph, cascade_agg_key, cascade_agg_key)

                upstream_vertex = join_key
        return graph

    # -- query control -----------------------------------------------------------

    def submit(self, query: Query, now_ms: int) -> str:
        """Enqueue a query-creation request; returns the query id.

        The query becomes live at the next changelog (see :meth:`tick`).
        """
        self._validate_query(query)
        request = self.session.submit(query, now_ms)
        self._pending_requests.append(request)
        self.tick(now_ms)
        return query.query_id

    def stop(self, query_id: str, now_ms: int) -> None:
        """Enqueue a query-deletion request."""
        request = self.session.stop(query_id, now_ms)
        self._pending_requests.append(request)
        self.tick(now_ms)

    def _validate_query(self, query: Query) -> None:
        for stage in query.stages():
            if stage.operator not in self._stage_names:
                raise ValueError(
                    f"query {query.query_id!r} needs stage "
                    f"{stage.operator!r}, which this engine was not "
                    f"configured with (streams={self.config.streams}, "
                    f"max_join_arity={self.config.max_join_arity})"
                )

    def tick(self, now_ms: int) -> Optional[Changelog]:
        """Advance session time: flush a changelog if batch/timeout is due."""
        changelog = self.session.maybe_flush(now_ms)
        if changelog is not None:
            self._apply_changelog(changelog, now_ms)
        return changelog

    def flush_session(self, now_ms: int) -> List[Changelog]:
        """Force all pending requests into changelogs immediately."""
        changelogs = []
        while True:
            changelog = self.session.flush(now_ms)
            if changelog is None:
                break
            self._apply_changelog(changelog, now_ms)
            changelogs.append(changelog)
        return changelogs

    def _apply_changelog(self, changelog: Changelog, now_ms: int) -> None:
        marker = ChangelogMarker(timestamp=now_ms, changelog=changelog)
        if self.config.log_inputs:
            self._input_log.append(("marker", marker))
        for stream in self.config.streams:
            self.runtime.push(f"source:{stream}", marker)
        ready_at = now_ms + self._deployment_cost_ms(changelog)
        completed = [
            request
            for request in self._pending_requests
            if request.changelog_sequence == changelog.sequence
        ]
        self._pending_requests = [
            request
            for request in self._pending_requests
            if request.changelog_sequence != changelog.sequence
        ]
        for request in completed:
            self.deployment_events.append(
                DeploymentEvent(
                    query_id=request.target_id,
                    kind=request.kind.value,
                    requested_at_ms=request.enqueued_at_ms,
                    changelog_at_ms=now_ms,
                    ready_at_ms=ready_at,
                )
            )
        if self.obs is not None:
            self.obs.events.emit(
                "changelog",
                t_ms=now_ms,
                sequence=changelog.sequence,
                created=[a.query.query_id for a in changelog.created],
                deleted=[d.query_id for d in changelog.deleted],
                width_after=changelog.width_after,
            )
            for request in completed:
                self.obs.events.emit(
                    f"query_{request.kind.value}",
                    t_ms=now_ms,
                    query_id=request.target_id,
                    sequence=changelog.sequence,
                    requested_at_ms=request.enqueued_at_ms,
                    ready_at_ms=ready_at,
                )
            self.obs.registry.histogram("deployment_latency_ms").record(
                ready_at - now_ms
            )

    def _deployment_cost_ms(self, changelog: Changelog) -> int:
        cost_model = self.cluster.cost_model
        cost = cost_model.changelog_ms(changelog.change_count)
        if not self._topology_deployed:
            # The very first changelog pays the physical topology
            # deployment (Figure 10b's tall first bar).
            cost += cost_model.cold_deploy_ms(
                self.graph.total_instances(), self.cluster.spec.nodes
            )
            self._topology_deployed = True
        return cost

    # -- data path -----------------------------------------------------------------

    def _run_push(self, source: str, element) -> None:
        """``runtime.push`` with the optional data-path CPU meter."""
        if not self._meter_cpu:
            self.runtime.push(source, element)
            return
        started = time.perf_counter_ns()
        try:
            self.runtime.push(source, element)
        finally:
            self._ingest_cpu_ns += time.perf_counter_ns() - started

    def push(
        self, stream: str, timestamp: int, value: Any, key: Any = None
    ) -> None:
        """Inject one data tuple into ``stream``."""
        if key is None:
            key = getattr(value, "key", None)
        record = Record(timestamp=timestamp, value=value, key=key)
        if not self.config.log_inputs:
            self._run_push(f"source:{stream}", record)
            return
        self._input_log.append(("record", (stream, record)))
        try:
            self._run_push(f"source:{stream}", record)
        except BaseException:
            # An injected (or real) fault killed this push mid-flight: the
            # element must not be replayed by recovery, because the caller
            # will retry or dead-letter it.  Exactly-once accounting stays
            # with whoever observed the exception.
            self._input_log.pop()
            raise

    def push_many(
        self, stream: str, tuples: List[Tuple[int, Any]], trace=None
    ) -> int:
        """Inject a micro-batch of ``(timestamp, value)`` tuples.

        The batch traverses the dataflow as one :class:`RecordBatch`, so
        partitioning, routing, and operator dispatch are paid once per
        batch instead of once per tuple.  With ``log_inputs`` the whole
        batch is one atomic input-log entry: if a fault kills the push
        mid-batch the entry is un-logged, recovery wipes the partial
        effects, and the caller's whole-batch retry is not a duplicate.
        Returns the number of tuples injected.
        """
        records = [
            Record(
                timestamp=timestamp,
                value=value,
                key=getattr(value, "key", None),
            )
            for timestamp, value in tuples
        ]
        return self.push_records(stream, records, trace=trace)

    def push_records(
        self, stream: str, records: List[Record], trace=None
    ) -> int:
        """Inject a micro-batch of pre-built :class:`Record` objects.

        The zero-rebuild ingest seam: the serving layer's columnar
        decoder materialises records straight from wire columns and
        hands them here, skipping the ``(timestamp, value)`` pair
        round-trip that :meth:`push_many` exists to unpack.  Semantics
        (atomic input-log entry, un-log on mid-batch fault) are
        identical to :meth:`push_many`.
        """
        if not records:
            return 0
        if trace is not None:
            # A wire-traced push always travels as a batch so the trace
            # context has somewhere to ride; force-sample the tracer so
            # the per-operator breakdown lines up with the wire span.
            element = RecordBatch(records, trace=trace)
            if self.obs is not None:
                self.obs.tracer.force_next()
        else:
            element = records[0] if len(records) == 1 else RecordBatch(records)
        if not self.config.log_inputs:
            self._run_push(f"source:{stream}", element)
            return len(records)
        self._input_log.append(("batch", (stream, records)))
        try:
            self._run_push(f"source:{stream}", element)
        except BaseException:
            self._input_log.pop()
            raise
        return len(records)

    def push_batch(self, stream: str, batch: RecordBatch) -> int:
        """Inject one pre-assembled :class:`RecordBatch`.

        The columnar wire-ingest seam: the serving layer's binary
        decoder produces columnar batches whose row objects materialise
        lazily, and this method injects the batch *without touching the
        rows* — a columnar-aware first operator (shared selection) then
        builds objects only for rows some query wants.  Input-log and
        fault semantics match :meth:`push_many`: the batch is one atomic
        log entry, un-logged if a fault kills the push mid-flight, and
        recovery replays the batch element whole.
        """
        count = len(batch)
        if not count:
            return 0
        if batch.trace is not None and self.obs is not None:
            self.obs.tracer.force_next()
        if not self.config.log_inputs:
            self._run_push(f"source:{stream}", batch)
            return count
        self._input_log.append(("element", (stream, batch)))
        try:
            self._run_push(f"source:{stream}", batch)
        except BaseException:
            self._input_log.pop()
            raise
        return count

    def watermark(self, timestamp: int, stream: Optional[str] = None) -> None:
        """Advance event time (fires due windows).

        With ``stream`` given, only that source's watermark advances —
        modelling skewed sources; binary operators hold their event-time
        clock at the minimum across inputs, so a lagging stream delays
        joint window fires (the standard alignment rule).  Without it,
        every stream advances together.
        """
        if stream is None:
            if timestamp <= self._last_watermark_ms:
                return
            self._last_watermark_ms = timestamp
            targets = self.config.streams
        else:
            if stream not in self.config.streams:
                raise KeyError(f"unknown stream {stream!r}")
            if timestamp <= self._stream_watermarks.get(stream, -1):
                return
            targets = (stream,)
        watermark = Watermark(timestamp=timestamp)
        if self.config.log_inputs:
            self._input_log.append(("watermark", (targets, watermark)))
        try:
            for target in targets:
                self._stream_watermarks[target] = max(
                    self._stream_watermarks.get(target, -1), timestamp
                )
                self._run_push(f"source:{target}", watermark)
        except BaseException:
            # A window fire triggered by this watermark hit an injected
            # fault: un-log it so the post-recovery retry is not a
            # duplicate (recovery restores the watermark clocks too).
            if self.config.log_inputs:
                self._input_log.pop()
            raise

    # -- fault tolerance ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Take a consistent engine checkpoint; returns its id.

        Requires ``config.log_inputs``.  A barrier traverses all sources
        (aligned snapshots of every operator instance); channel contents
        and the shared-session state are captured alongside, and the
        input-log offset is recorded so :meth:`recover` can replay the
        suffix (§3.3).
        """
        import copy

        if not self.config.log_inputs:
            raise RuntimeError(
                "checkpointing needs EngineConfig(log_inputs=True)"
            )
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        started_ns = time.perf_counter_ns() if self.obs is not None else 0
        barrier = CheckpointBarrier(timestamp=0, checkpoint_id=checkpoint_id)
        for stream in self.config.streams:
            self.runtime.push(f"source:{stream}", barrier)
        state = self.runtime.completed_checkpoint(checkpoint_id)
        if state is None:
            raise RuntimeError(
                f"checkpoint {checkpoint_id} did not complete on all instances"
            )
        log_offset = self._input_log_base + len(self._input_log)
        self._checkpoints.append(
            EngineCheckpoint(
                checkpoint_id=checkpoint_id,
                log_offset=log_offset,
                runtime_state=state,
                channels_state=self.channels.snapshot(),
                session_state=copy.deepcopy(self.session),
                last_watermark_ms=self._last_watermark_ms,
                stream_watermarks=dict(self._stream_watermarks),
            )
        )
        if self.obs is not None:
            duration_ms = (time.perf_counter_ns() - started_ns) / 1e6
            size_bytes = len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
            delta_segments, delta_bytes = incremental_delta(state)
            registry = self.obs.registry
            registry.counter("checkpoints").inc()
            registry.histogram("checkpoint_duration_ms").record(duration_ms)
            registry.histogram("checkpoint_size_bytes").record(size_bytes)
            if delta_segments:
                registry.histogram("checkpoint_delta_bytes").record(
                    delta_bytes
                )
            self.obs.events.emit(
                "checkpoint",
                checkpoint_id=checkpoint_id,
                log_offset=log_offset,
                size_bytes=size_bytes,
                delta_segments=delta_segments,
                delta_bytes=delta_bytes,
                duration_ms=duration_ms,
            )
            logger.info(
                "checkpoint %d complete: %d bytes in %.2f ms (log offset %d)",
                checkpoint_id,
                size_bytes,
                duration_ms,
                log_offset,
            )
        return checkpoint_id

    def recover(self) -> RecoveryInfo:
        """Simulate failure + recovery: redeploy, restore, replay.

        The running topology is discarded; a fresh one is deployed from
        the same graph, operator state is restored from the latest
        completed checkpoint (or empty, if none), and the input log's
        suffix — records, watermarks, *and* changelog markers, in their
        original interleaving — is replayed.  Outputs equal those of an
        uninterrupted run (exactly-once).  Returns a :class:`RecoveryInfo`
        describing the restored checkpoint and replay size (the
        supervisor's MTTR / replay metrics).

        The shared session is *client-side* state (§3.1.1): it lives
        outside the SPE, so an engine failure does not roll it back.
        Restoring it from the checkpoint would rewind its changelog
        sequence and re-buffer requests whose markers are already in the
        replayed log, producing duplicate changelog sequences after
        recovery — the live session is kept instead, and the marker
        replay brings the fresh operators up to exactly the changelogs
        the session has issued.
        """
        if not self.config.log_inputs:
            raise RuntimeError("recovery needs EngineConfig(log_inputs=True)")
        started_ns = time.perf_counter_ns() if self.obs is not None else 0
        # Fresh instances: clear operator registries so introspection and
        # component stats point at the recovered topology only.
        self._selections.clear()
        self._joins.clear()
        self._aggregations.clear()
        self._routers.clear()
        self.runtime = self._make_runtime()
        checkpoint = self._checkpoints[-1] if self._checkpoints else None
        if checkpoint is not None:
            self.runtime.restore_checkpoint(checkpoint.runtime_state)
            self.channels.restore(checkpoint.channels_state)
            self._last_watermark_ms = checkpoint.last_watermark_ms
            self._stream_watermarks = dict(checkpoint.stream_watermarks)
            offset = checkpoint.log_offset
        else:
            self.channels.restore({"counts": {}, "results": {}})
            self._last_watermark_ms = -1
            self._stream_watermarks = {}
            offset = 0
        # Watermark alignment state is channel-local and dies with the old
        # runtime: re-inject the per-stream watermarks known at the
        # checkpoint so the fresh instances' event-time clocks resume
        # where they were (window refires are impossible — the restored
        # firing schedules already advanced past them).
        for stream, watermark_ms in self._stream_watermarks.items():
            if watermark_ms >= 0:
                self.runtime.push(
                    f"source:{stream}", Watermark(timestamp=watermark_ms)
                )
        # Replay the suffix in original global order.
        if offset < self._input_log_base:
            raise RuntimeError(
                f"input-log offset {offset} was compacted away "
                f"(base is {self._input_log_base})"
            )
        replay = list(self._input_log[offset - self._input_log_base :])
        for kind, payload in replay:
            if kind == "record":
                stream, record = payload
                self.runtime.push(f"source:{stream}", record)
            elif kind == "batch":
                stream, records = payload
                self.runtime.push(
                    f"source:{stream}",
                    records[0] if len(records) == 1 else RecordBatch(records),
                )
            elif kind == "element":
                stream, element = payload
                self.runtime.push(f"source:{stream}", element)
            elif kind == "watermark":
                targets, element = payload
                for stream in targets:
                    self.runtime.push(f"source:{stream}", element)
                    self._stream_watermarks[stream] = max(
                        self._stream_watermarks.get(stream, -1),
                        element.timestamp,
                    )
                if tuple(targets) == tuple(self.config.streams):
                    self._last_watermark_ms = max(
                        self._last_watermark_ms, element.timestamp
                    )
            else:  # marker
                for stream in self.config.streams:
                    self.runtime.push(f"source:{stream}", payload)
        info = RecoveryInfo(
            checkpoint_id=(
                checkpoint.checkpoint_id if checkpoint is not None else None
            ),
            replayed_elements=len(replay),
            restored_queries=self.active_query_count,
        )
        if self.obs is not None:
            duration_ms = (time.perf_counter_ns() - started_ns) / 1e6
            registry = self.obs.registry
            registry.counter("recoveries").inc()
            registry.histogram("restore_duration_ms").record(duration_ms)
            registry.histogram("replayed_elements").record(len(replay))
            self.obs.events.emit(
                "restore",
                checkpoint_id=info.checkpoint_id,
                replayed_elements=info.replayed_elements,
                restored_queries=info.restored_queries,
                duration_ms=duration_ms,
            )
            logger.info(
                "recovered from checkpoint %s: replayed %d elements, "
                "%d queries restored in %.2f ms",
                info.checkpoint_id,
                info.replayed_elements,
                info.restored_queries,
                duration_ms,
            )
        return info

    def compact_input_log(self) -> int:
        """Drop log entries already covered by the latest checkpoint.

        Mirrors :meth:`SourceLog.truncate` at the engine level so soak
        runs with periodic checkpoints keep bounded memory; checkpoints
        older than the latest become unusable and are dropped.  Returns
        the number of reclaimed entries.
        """
        if not self._checkpoints:
            return 0
        checkpoint = self._checkpoints[-1]
        dropped = checkpoint.log_offset - self._input_log_base
        if dropped <= 0:
            return 0
        del self._input_log[:dropped]
        self._input_log_base = checkpoint.log_offset
        self._checkpoints = [checkpoint]
        return dropped

    @property
    def input_log_size(self) -> int:
        """Input-log entries currently retained (post-compaction)."""
        return len(self._input_log)

    @property
    def completed_checkpoints(self) -> int:
        """Number of completed engine checkpoints."""
        return len(self._checkpoints)

    # -- results & stats ---------------------------------------------------------------

    def results(self, query_id: str) -> List[QueryOutput]:
        """Results delivered to a query's channel so far."""
        return self.channels.results(query_id)

    def canonical_results(self, query_id: str) -> List[QueryOutput]:
        """Results in the deterministic cross-backend order.

        Use this when comparing outputs between execution backends: the
        in-process path may emit join matches in store-insertion order,
        and the process backend merges shard channels canonically (see
        :func:`repro.core.router.canonical_order`).
        """
        return self.channels.canonical_results(query_id)

    def result_count(self, query_id: str) -> int:
        """Number of results delivered to a query."""
        return self.channels.count(query_id)

    def result_counts(self) -> Dict[str, int]:
        """Delivered result count per query channel."""
        return {
            query_id: self.channels.count(query_id)
            for query_id in self.channels.query_ids()
        }

    def drain(self) -> None:
        """Wait until all injected input has been fully processed.

        The in-process runtime executes synchronously, so this is a
        no-op; the process backend overrides it to flush frame buffers
        and await worker acknowledgements.  Throughput measurements call
        it before reading the clock so in-flight work is counted.
        """

    @property
    def active_query_count(self) -> int:
        """Queries currently live (post-changelog)."""
        return self.session.registry.active_count

    def component_stats(self) -> Dict[str, float]:
        """Aggregate per-component counters (Figure 18's breakdown)."""
        stats = {
            "predicate_evaluations": 0,
            "selection_dropped": 0,
            "bitset_ops": 0,
            "router_copies": 0,
            "join_pairs_computed": 0,
            "join_pairs_reused": 0,
            "results_emitted": 0,
            "late_records_dropped": 0,
            "selection_ns": 0,
            "shared_op_ns": 0,
            "router_ns": 0,
        }
        for operators in self._selections.values():
            for op in operators:
                stats["predicate_evaluations"] += op.predicate_evaluations
                stats["selection_dropped"] += op.records_dropped
                stats["selection_ns"] += op.profile_ns
        for operators in self._joins.values():
            for op in operators:
                stats["bitset_ops"] += op.bitset_ops
                stats["join_pairs_computed"] += op.pairs_computed
                stats["join_pairs_reused"] += op.pairs_reused
                stats["results_emitted"] += op.results_emitted
                stats["late_records_dropped"] += op.late_records_dropped
                stats["shared_op_ns"] += op.profile_ns
        for operators in self._aggregations.values():
            for op in operators:
                stats["bitset_ops"] += op.bitset_ops
                stats["results_emitted"] += op.results_emitted
                stats["late_records_dropped"] += op.late_records_dropped
                stats["shared_op_ns"] += op.profile_ns
        for operators in self._routers.values():
            for op in operators:
                stats["router_copies"] += op.copies
                stats["router_ns"] += op.profile_ns
        return stats

    # -- observability -----------------------------------------------------------------

    def _refresh_obs_gauges(self) -> None:
        """Pull live operator/engine state into the metrics registry.

        Counters on the operators are plain attributes (kept cheap for
        the data path); snapshotting copies them into labelled gauges so
        one registry snapshot carries the whole engine picture.  Additive
        state merges with ``sum`` across shards; replicated facts
        (registry width, active query count) merge with ``max``.
        """
        registry = self.obs.registry
        for stream, operators in self._selections.items():
            scope = registry.scope(operator=f"select:{stream}")
            for op in operators:
                scope.gauge("predicate_evaluations").set(
                    op.predicate_evaluations
                )
                scope.gauge("records_dropped").set(op.records_dropped)
                scope.gauge("active_query_count", merge="max").set(
                    op.active_query_count
                )
                sharing = op.sharing_group_stats()
                scope.gauge("sharing_groups", merge="max").set(
                    sharing["groups"]
                )
                scope.gauge("sharing_grouped_slots", merge="max").set(
                    sharing["grouped_slots"]
                )
                scope.gauge("sharing_cover_skips").set(
                    sharing["cover_skips"]
                )
                scope.gauge("sharing_residual_checks").set(
                    sharing["residual_checks"]
                )
        for join_key, operators in self._joins.items():
            scope = registry.scope(operator=join_key)
            for op in operators:
                scope.gauge("slices_left").set(len(op._left))
                scope.gauge("slices_right").set(len(op._right))
                scope.gauge("slices_created").set(
                    op._left.created_total + op._right.created_total
                )
                scope.gauge("slices_expired").set(
                    op._left.expired_total + op._right.expired_total
                )
                scope.gauge("tuples_stored").set(op.tuples_stored)
                scope.gauge("pair_cache_size").set(len(op._pair_cache))
                scope.gauge("changelog_table_size").set(len(op._changelogs))
                scope.gauge("pairs_computed").set(op.pairs_computed)
                scope.gauge("pairs_reused").set(op.pairs_reused)
                scope.gauge("results_emitted").set(op.results_emitted)
                scope.gauge("late_records_dropped").set(
                    op.late_records_dropped
                )
                scope.gauge("bitset_ops").set(op.bitset_ops)
        for agg_key, operators in self._aggregations.items():
            scope = registry.scope(operator=agg_key)
            for op in operators:
                scope.gauge("slices").set(len(op._slices))
                scope.gauge("slices_created").set(op._slices.created_total)
                scope.gauge("slices_expired").set(op._slices.expired_total)
                scope.gauge("session_windows").set(len(op._session_state))
                scope.gauge("changelog_table_size").set(len(op._changelogs))
                scope.gauge("partial_updates").set(op.partial_updates)
                scope.gauge("results_emitted").set(op.results_emitted)
                scope.gauge("late_records_dropped").set(
                    op.late_records_dropped
                )
                scope.gauge("bitset_ops").set(op.bitset_ops)
                store_stats = op.state_store_stats()
                if store_stats is not None:
                    scope.gauge("spilled_bytes").set(
                        store_stats["spilled_bytes"]
                    )
                    scope.gauge("spill_segments").set(store_stats["segments"])
                    scope.gauge("spill_memtable_entries").set(
                        store_stats["memtable_entries"]
                    )
                    scope.gauge("spill_flushes").set(store_stats["flushes"])
                arr_stats = op.arrangement_stats()
                if arr_stats is not None:
                    scope.gauge("arrangement_count", merge="max").set(1)
                    scope.gauge("reader_leases").set(
                        arr_stats["reader_leases"]
                    )
                    scope.gauge("arranged_deltas").set(
                        arr_stats["arranged_deltas"]
                    )
                    scope.gauge("arranged_keys").set(
                        arr_stats["arranged_keys"]
                    )
                    scope.gauge("compaction_debt").set(
                        arr_stats["compaction_debt"]
                    )
                    scope.gauge("backfilled_windows").set(
                        arr_stats["backfilled_windows"]
                    )
        for router_key, operators in self._routers.items():
            scope = registry.scope(operator=f"router:{router_key}")
            for op in operators:
                scope.gauge("copies").set(op.copies)
                scope.gauge("fan_out").set(len(op._slot_to_query))
        for vertex, count in self.runtime.records_processed().items():
            registry.gauge("operator_records_in", operator=vertex).set(count)
        registry.gauge("active_queries", merge="max").set(
            self.active_query_count
        )
        registry.gauge("bitset_width", merge="max").set(
            self.session.registry.width
        )
        registry.gauge("input_log_size", merge="max").set(self.input_log_size)
        registry.gauge("completed_checkpoints", merge="max").set(
            self.completed_checkpoints
        )

    def obs_snapshot(self) -> Dict:
        """The engine's full telemetry snapshot (observe mode only)."""
        if self.obs is None:
            raise RuntimeError(
                "telemetry needs EngineConfig(observe=True)"
            )
        self._refresh_obs_gauges()
        return self.obs.snapshot()

    def sharing_report(
        self, limit: int = 10, min_jaccard: float = 0.0
    ) -> List[Tuple[str, str, str, float]]:
        """Most-overlapping query pairs: ``(stream, id_a, id_b, jaccard)``.

        Requires ``config.collect_sharing_stats``.  This is the runtime
        signal the paper's future-work optimizer would group queries by;
        pairs whose slots no longer resolve to live queries are skipped.
        """
        if not self._sharing_stats:
            raise RuntimeError(
                "sharing statistics need "
                "EngineConfig(collect_sharing_stats=True)"
            )
        registry = self.session.registry
        report: List[Tuple[str, str, str, float]] = []
        for stream, stats in self._sharing_stats.items():
            for entry in stats.top_pairs(limit=limit, min_jaccard=min_jaccard):
                query_a = registry.by_slot(entry.slot_a)
                query_b = registry.by_slot(entry.slot_b)
                if query_a is None or query_b is None:
                    continue
                report.append(
                    (
                        stream,
                        query_a.query.query_id,
                        query_b.query.query_id,
                        entry.jaccard,
                    )
                )
        report.sort(key=lambda row: -row[3])
        return report[:limit]

    def sharing_summary(self) -> Dict[str, Dict]:
        """Per-stream shape and counters of the semantic-overlap optimizer.

        Unlike :meth:`sharing_report` (runtime qs-bitset sampling), this
        reflects the *planner's* rewrite: how many covering groups the
        current epoch runs, how many query slots they absorb, and how
        much work the cover checks and residual filters did.  Always
        available; with ``share_overlapping=False`` every stream reports
        zero groups.
        """
        summary: Dict[str, Dict] = {}
        for stream, operators in sorted(self._selections.items()):
            merged = {
                "groups": 0,
                "grouped_slots": 0,
                "direct_predicates": 0,
                "folded_unsatisfiable_slots": 0,
                "group_evaluations": 0,
                "cover_skips": 0,
                "index_probes": 0,
                "residual_checks": 0,
            }
            for op in operators:
                stats = op.sharing_group_stats()
                # Shape is replicated across parallel instances (every
                # instance sees the full slot table): merge with max;
                # counters are additive work: merge with sum.
                for key in (
                    "groups",
                    "grouped_slots",
                    "direct_predicates",
                    "folded_unsatisfiable_slots",
                ):
                    merged[key] = max(merged[key], stats[key])
                for key in (
                    "group_evaluations",
                    "cover_skips",
                    "index_probes",
                    "residual_checks",
                ):
                    merged[key] += stats[key]
            summary[stream] = merged
        return summary

    # -- cost attribution ----------------------------------------------------

    def cost_profile(self) -> Dict:
        """Per-query work-unit weights for CPU cost attribution.

        Each entry names the queries a unit of selection work served:
        direct predicates carry the slot set sharing the (deduplicated)
        predicate, covering groups carry the group's member mask — so
        shared covering-evaluation cost is split across members, per the
        Shared Arrangements accounting argument.  ``engine_cpu_ns`` is
        the measured data-path CPU (observe/profile runs only).  Feed
        the result to :func:`repro.obs.cost.attribute_costs`.
        """
        return self._resolve_cost_profile(self._raw_cost_profile())

    def _raw_cost_profile(self) -> Dict:
        """The slot-mask-keyed cost profile, before query resolution.

        Shard workers ship this form over IPC: their session registries
        are never driven (submits happen coordinator-side, deployments
        ride changelog markers straight into the operators), so only the
        coordinator can map slots back to query ids.
        """
        streams: Dict[str, List[Dict]] = {}
        unattributed = 0.0
        for stream, operators in sorted(self._selections.items()):
            entries: List[Dict] = []
            for op in operators:
                profile = op.cost_profile()
                unattributed += profile.get("unattributed", 0.0)
                for kind in ("direct", "groups"):
                    for unit in profile.get(kind, ()):
                        work = unit["evaluations"]
                        if not work:
                            continue
                        entries.append(
                            {
                                "kind": kind,
                                "slots": unit["slots"],
                                "evaluations": work,
                            }
                        )
            streams[stream] = entries
        return {
            "streams": streams,
            "unattributed_evaluations": unattributed,
            "engine_cpu_ns": self._ingest_cpu_ns,
        }

    def _resolve_cost_profile(self, raw: Dict) -> Dict:
        """Map a raw profile's slot masks to live query ids.

        Work whose slots no longer resolve (the queries were deleted
        mid-epoch) moves to the unattributed bucket.
        """
        registry = self.session.registry

        def queries_for(mask: int) -> List[str]:
            out = []
            for slot in slots_of(mask):
                entry = registry.by_slot(slot)
                if entry is not None:
                    out.append(entry.query.query_id)
            return out

        streams: Dict[str, List[Dict]] = {}
        unattributed = float(raw.get("unattributed_evaluations", 0) or 0)
        for stream, entries in raw.get("streams", {}).items():
            resolved: List[Dict] = []
            for entry in entries:
                if "slots" not in entry:
                    resolved.append(entry)
                    continue
                members = queries_for(entry["slots"])
                if not members:
                    unattributed += entry["evaluations"]
                    continue
                resolved.append(
                    {
                        "kind": entry["kind"],
                        "queries": members,
                        "evaluations": entry["evaluations"],
                    }
                )
            streams[stream] = resolved
        return {
            "streams": streams,
            "unattributed_evaluations": unattributed,
            "engine_cpu_ns": raw.get("engine_cpu_ns", 0),
        }

    def cost_attribution(self) -> Dict:
        """Measured engine CPU split across queries (shared work split
        over group members); shares sum to the metered total exactly."""
        profile = self.cost_profile()
        return attribute_costs(profile.get("engine_cpu_ns", 0), profile)

    def selection_operators(self, stream: str) -> List[SharedSelectionOperator]:
        """Live shared-selection instances for a stream."""
        return self._selections.get(stream, [])

    def join_operators(self, join_key: str) -> List[SharedJoinOperator]:
        """Live shared-join instances for a cascade stage."""
        return self._joins.get(join_key, [])

    def aggregation_operators(self, agg_key: str) -> List[SharedAggregationOperator]:
        """Live shared-aggregation instances for a stage."""
        return self._aggregations.get(agg_key, [])

    def state_summary(self) -> Dict[str, Any]:
        """Storage-plane rollup across the live shared aggregations.

        Aggregates the spill-store stats (lsm backend) and the
        arrangement gauges (shared arrangements) of every in-process
        aggregation instance — the numbers the serve layer and the
        inspector panel surface.
        """
        summary: Dict[str, Any] = {
            "state_backend": self.config.state_backend,
            "shared_arrangements": self.config.shared_arrangements,
            "spilled_bytes": 0,
            "spill_segments": 0,
            "spill_entries": 0,
            "spill_flushes": 0,
            "spill_compactions": 0,
            "arrangement_count": 0,
            "reader_leases": 0,
            "arranged_deltas": 0,
            "arranged_keys": 0,
            "compaction_debt": 0,
            "backfilled_windows": 0,
            "backfilled_results": 0,
        }
        for operators in self._aggregations.values():
            for op in operators:
                store_stats = op.state_store_stats()
                if store_stats is not None:
                    summary["spilled_bytes"] += store_stats["spilled_bytes"]
                    summary["spill_segments"] += store_stats["segments"]
                    summary["spill_entries"] += store_stats["entries"]
                    summary["spill_flushes"] += store_stats["flushes"]
                    summary["spill_compactions"] += store_stats["compactions"]
                arr_stats = op.arrangement_stats()
                if arr_stats is not None:
                    summary["arrangement_count"] += 1
                    summary["reader_leases"] += arr_stats["reader_leases"]
                    summary["arranged_deltas"] += arr_stats["arranged_deltas"]
                    summary["arranged_keys"] += arr_stats["arranged_keys"]
                    summary["compaction_debt"] += arr_stats["compaction_debt"]
                    summary["backfilled_windows"] += arr_stats[
                        "backfilled_windows"
                    ]
                    summary["backfilled_results"] += arr_stats[
                        "backfilled_results"
                    ]
        return summary

    def describe(self) -> str:
        """Human-readable topology and query-population summary."""
        lines = [
            f"AStream topology ({len(self.graph.vertices)} vertices, "
            f"parallelism {self._parallelism}, "
            f"{self.graph.total_instances()} instances on "
            f"{self.cluster.spec.nodes} nodes)",
        ]
        for name in self.graph.topological_order():
            vertex = self.graph.vertices[name]
            if vertex.is_source:
                lines.append(f"  {name}  (source)")
                continue
            inputs = ", ".join(
                f"{edge.source}[{edge.partitioning.value}]"
                for edge in self.graph.in_edges(name)
            )
            lines.append(f"  {name}  <- {inputs}")
        active = self.session.registry.active()
        lines.append(
            f"queries: {len(active)} active, "
            f"width {self.session.registry.width}, "
            f"{self.session.pending_count} pending"
        )
        for entry in active:
            lines.append(
                f"  slot {entry.slot}: {entry.query.query_id} "
                f"({type(entry.query).__name__}, "
                f"created t={entry.created_at_ms}ms)"
            )
        return "\n".join(lines)

    def shutdown(self) -> None:
        """Release cluster slots, close operators, drop owned spill files."""
        self.runtime.close()
        self.cluster.release(self.JOB_NAME)
        if self._owns_state_root and self._state_root is not None:
            shutil.rmtree(self._state_root, ignore_errors=True)
            self._state_root = None
