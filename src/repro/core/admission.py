"""QoS-driven admission control for ad-hoc queries.

§3.4 ends with: "If measurements for a particular metric are beyond
acceptable boundaries, new resources can be added; however, elastic
scaling is out of the scope of this paper."  Without elastic scaling,
the remaining lever a multi-tenant operator has is *admission*: refuse
or defer new ad-hoc queries while the running population's QoS is at
risk, instead of letting one tenant degrade everyone.

:class:`AdmissionController` sits in front of an
:class:`~repro.core.engine.AStreamEngine`:

* **admit** — QoS healthy and below the population cap: forward to the
  shared session;
* **defer** — a soft limit tripped (e.g. event-time latency over the
  threshold): the request is parked and retried on :meth:`retry_deferred`
  once the metrics recover;
* **reject** — a hard limit tripped (population cap reached).

Deletions are always admitted — they can only help QoS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engine import AStreamEngine
from repro.core.planner import sharing_affinity_key
from repro.core.qos import QoSMonitor
from repro.core.query import Query


class AdmissionDecision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    DEFER = "defer"
    REJECT = "reject"


@dataclass
class AdmissionPolicy:
    """Operator-configured limits."""

    max_active_queries: Optional[int] = None
    """Hard cap on concurrently active queries (None = unlimited)."""
    defer_on_qos_violation: bool = True
    """Park new queries while QoS thresholds are violated."""
    max_deferred: int = 1_000
    """Beyond this many parked requests, further queries are rejected."""


@dataclass
class _DeferredRequest:
    query: Query
    requested_at_ms: int


@dataclass
class PlacementPolicy:
    """Admission-time placement over shard groups (ISSUE 6).

    "Process Faster, Pay Less"-style cost-based isolation: queries whose
    final plan stage is shared co-locate on the same shard group (their
    slices, partials, and join pairs are literally the same state, so
    spreading them would duplicate it), while expensive outliers — long
    retention windows or multi-stream joins — are steered to the
    least-loaded group so one heavy tenant cannot degrade a whole
    sharing cluster.
    """

    shard_groups: int = 1
    """Isolation domains available to the placer."""
    isolate_retention_ms: int = 60_000
    """Windows retaining at least this much state count as expensive."""
    isolate_stream_count: int = 2
    """Queries reading at least this many streams count as expensive."""


@dataclass
class Placement:
    """Where one admitted query landed and why."""

    query_id: str
    group: int
    affinity_key: str
    expensive: bool


class QueryPlacer:
    """Assigns admitted queries to shard groups by sharing affinity.

    Deterministic and purely bookkeeping-driven: same admission order →
    same placements.  The group index is advisory (the current process
    backend shards by key, not by query), but the serve layer surfaces
    placements so operators can see which tenants share an isolation
    domain, and future multi-pool backends can bind groups to pools.
    """

    def __init__(self, policy: Optional[PlacementPolicy] = None) -> None:
        self.policy = policy or PlacementPolicy()
        groups = max(1, self.policy.shard_groups)
        self._loads = [0] * groups
        self._expensive_counts = [0] * groups
        self._affinity_home: Dict[str, int] = {}
        self._placements: Dict[str, Placement] = {}

    def _is_expensive(self, query: Query) -> bool:
        policy = self.policy
        if len(query.streams) >= policy.isolate_stream_count:
            return True
        window = query.window
        return (
            window is not None
            and window.retention_ms() >= policy.isolate_retention_ms
        )

    def _least_loaded(self, weights: List[int]) -> int:
        return min(
            range(len(self._loads)),
            key=lambda group: (weights[group], self._loads[group], group),
        )

    def place(self, query: Query) -> Placement:
        """Pick the group for one admitted query and record it.

        The affinity key comes from the semantic-overlap planner: the
        final plan stage plus the anchor fields of the query's
        normalized predicates, so queries the selection optimizer can
        merge into one covering group land on the same shard group
        (their covering scan, stabbing index, and downstream state are
        literally shared).  Unconstrained and UDF predicates keep the
        bare stage key.
        """
        affinity_key = sharing_affinity_key(query)
        expensive = self._is_expensive(query)
        if expensive:
            group = self._least_loaded(self._expensive_counts)
            self._expensive_counts[group] += 1
        elif affinity_key in self._affinity_home:
            group = self._affinity_home[affinity_key]
        else:
            group = self._least_loaded([0] * len(self._loads))
            self._affinity_home[affinity_key] = group
        self._loads[group] += 1
        placement = Placement(
            query_id=query.query_id,
            group=group,
            affinity_key=affinity_key,
            expensive=expensive,
        )
        self._placements[query.query_id] = placement
        return placement

    def release(self, query_id: str) -> None:
        """Forget a stopped query's placement (frees its group load)."""
        placement = self._placements.pop(query_id, None)
        if placement is None:
            return
        self._loads[placement.group] -= 1
        if placement.expensive:
            self._expensive_counts[placement.group] -= 1

    def placements(self) -> Dict[str, Tuple[int, str, bool]]:
        """query_id → (group, affinity_key, expensive), for stats frames."""
        return {
            query_id: (p.group, p.affinity_key, p.expensive)
            for query_id, p in sorted(self._placements.items())
        }

    @property
    def group_loads(self) -> List[int]:
        """Active queries per shard group."""
        return list(self._loads)


class AdmissionController:
    """Gates ad-hoc query creations on live QoS measurements."""

    def __init__(
        self,
        engine: AStreamEngine,
        qos: QoSMonitor,
        policy: Optional[AdmissionPolicy] = None,
        placer: Optional[QueryPlacer] = None,
    ) -> None:
        self.engine = engine
        self.qos = qos
        self.policy = policy or AdmissionPolicy()
        self.placer = placer
        """Optional admission-time placement over shard groups."""
        self.deferred: List[_DeferredRequest] = []
        self.admitted_total = 0
        self.rejected_total = 0
        self.deferred_total = 0
        self.shedding = False
        """While True, every new creation is deferred regardless of the
        current QoS reading — set by the fault supervisor when violations
        persist after a recovery (§3.4's "external component")."""

    # -- load shedding (supervisor escalation) -------------------------------

    def enter_shedding(self) -> None:
        """Park all new query creations until :meth:`exit_shedding`."""
        self.shedding = True

    def exit_shedding(self, now_ms: int) -> int:
        """Resume admissions; re-runs the parked queue, returns admits."""
        self.shedding = False
        return self.retry_deferred(now_ms)

    # -- intake ---------------------------------------------------------------

    def submit(self, query: Query, now_ms: int) -> AdmissionDecision:
        """Admit, defer, or reject one query-creation request."""
        decision = self._decide()
        if decision is AdmissionDecision.ADMIT:
            self.engine.submit(query, now_ms)
            self.admitted_total += 1
            if self.placer is not None:
                self.placer.place(query)
        elif decision is AdmissionDecision.DEFER:
            self.deferred.append(_DeferredRequest(query, now_ms))
            self.deferred_total += 1
        else:
            self.rejected_total += 1
        return decision

    def stop(self, query_id: str, now_ms: int) -> None:
        """Deletions always pass through (they relieve pressure)."""
        parked = [
            request
            for request in self.deferred
            if request.query.query_id == query_id
        ]
        if parked:
            self.deferred = [
                request
                for request in self.deferred
                if request.query.query_id != query_id
            ]
            return
        self.engine.stop(query_id, now_ms)
        if self.placer is not None:
            self.placer.release(query_id)

    def _decide(self) -> AdmissionDecision:
        policy = self.policy
        pending = self.engine.session.pending_count
        active = self.engine.active_query_count + pending
        if (
            policy.max_active_queries is not None
            and active >= policy.max_active_queries
        ):
            return AdmissionDecision.REJECT
        if self.shedding:
            if len(self.deferred) >= policy.max_deferred:
                return AdmissionDecision.REJECT
            return AdmissionDecision.DEFER
        if policy.defer_on_qos_violation and self._qos_violated():
            if len(self.deferred) >= policy.max_deferred:
                return AdmissionDecision.REJECT
            return AdmissionDecision.DEFER
        return AdmissionDecision.ADMIT

    def _qos_violated(self) -> bool:
        latencies = [
            float(event.deployment_latency_ms)
            for event in self.engine.deployment_events
            if event.kind == "create"
        ]
        return bool(self.qos.violations(latencies))

    # -- recovery ----------------------------------------------------------------

    def retry_deferred(self, now_ms: int) -> int:
        """Re-run admission for parked requests; returns how many got in."""
        admitted = 0
        still_parked: List[_DeferredRequest] = []
        for request in self.deferred:
            if self._decide() is AdmissionDecision.ADMIT:
                self.engine.submit(request.query, now_ms)
                self.admitted_total += 1
                if self.placer is not None:
                    self.placer.place(request.query)
                admitted += 1
            else:
                still_parked.append(request)
        self.deferred = still_parked
        return admitted

    @property
    def deferred_count(self) -> int:
        """Requests currently parked."""
        return len(self.deferred)
