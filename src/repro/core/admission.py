"""QoS-driven admission control for ad-hoc queries.

§3.4 ends with: "If measurements for a particular metric are beyond
acceptable boundaries, new resources can be added; however, elastic
scaling is out of the scope of this paper."  Without elastic scaling,
the remaining lever a multi-tenant operator has is *admission*: refuse
or defer new ad-hoc queries while the running population's QoS is at
risk, instead of letting one tenant degrade everyone.

:class:`AdmissionController` sits in front of an
:class:`~repro.core.engine.AStreamEngine`:

* **admit** — QoS healthy and below the population cap: forward to the
  shared session;
* **defer** — a soft limit tripped (e.g. event-time latency over the
  threshold): the request is parked and retried on :meth:`retry_deferred`
  once the metrics recover;
* **reject** — a hard limit tripped (population cap reached).

Deletions are always admitted — they can only help QoS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.engine import AStreamEngine
from repro.core.qos import QoSMonitor
from repro.core.query import Query


class AdmissionDecision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    DEFER = "defer"
    REJECT = "reject"


@dataclass
class AdmissionPolicy:
    """Operator-configured limits."""

    max_active_queries: Optional[int] = None
    """Hard cap on concurrently active queries (None = unlimited)."""
    defer_on_qos_violation: bool = True
    """Park new queries while QoS thresholds are violated."""
    max_deferred: int = 1_000
    """Beyond this many parked requests, further queries are rejected."""


@dataclass
class _DeferredRequest:
    query: Query
    requested_at_ms: int


class AdmissionController:
    """Gates ad-hoc query creations on live QoS measurements."""

    def __init__(
        self,
        engine: AStreamEngine,
        qos: QoSMonitor,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.engine = engine
        self.qos = qos
        self.policy = policy or AdmissionPolicy()
        self.deferred: List[_DeferredRequest] = []
        self.admitted_total = 0
        self.rejected_total = 0
        self.deferred_total = 0
        self.shedding = False
        """While True, every new creation is deferred regardless of the
        current QoS reading — set by the fault supervisor when violations
        persist after a recovery (§3.4's "external component")."""

    # -- load shedding (supervisor escalation) -------------------------------

    def enter_shedding(self) -> None:
        """Park all new query creations until :meth:`exit_shedding`."""
        self.shedding = True

    def exit_shedding(self, now_ms: int) -> int:
        """Resume admissions; re-runs the parked queue, returns admits."""
        self.shedding = False
        return self.retry_deferred(now_ms)

    # -- intake ---------------------------------------------------------------

    def submit(self, query: Query, now_ms: int) -> AdmissionDecision:
        """Admit, defer, or reject one query-creation request."""
        decision = self._decide()
        if decision is AdmissionDecision.ADMIT:
            self.engine.submit(query, now_ms)
            self.admitted_total += 1
        elif decision is AdmissionDecision.DEFER:
            self.deferred.append(_DeferredRequest(query, now_ms))
            self.deferred_total += 1
        else:
            self.rejected_total += 1
        return decision

    def stop(self, query_id: str, now_ms: int) -> None:
        """Deletions always pass through (they relieve pressure)."""
        parked = [
            request
            for request in self.deferred
            if request.query.query_id == query_id
        ]
        if parked:
            self.deferred = [
                request
                for request in self.deferred
                if request.query.query_id != query_id
            ]
            return
        self.engine.stop(query_id, now_ms)

    def _decide(self) -> AdmissionDecision:
        policy = self.policy
        pending = self.engine.session.pending_count
        active = self.engine.active_query_count + pending
        if (
            policy.max_active_queries is not None
            and active >= policy.max_active_queries
        ):
            return AdmissionDecision.REJECT
        if self.shedding:
            if len(self.deferred) >= policy.max_deferred:
                return AdmissionDecision.REJECT
            return AdmissionDecision.DEFER
        if policy.defer_on_qos_violation and self._qos_violated():
            if len(self.deferred) >= policy.max_deferred:
                return AdmissionDecision.REJECT
            return AdmissionDecision.DEFER
        return AdmissionDecision.ADMIT

    def _qos_violated(self) -> bool:
        latencies = [
            float(event.deployment_latency_ms)
            for event in self.engine.deployment_events
            if event.kind == "create"
        ]
        return bool(self.qos.violations(latencies))

    # -- recovery ----------------------------------------------------------------

    def retry_deferred(self, now_ms: int) -> int:
        """Re-run admission for parked requests; returns how many got in."""
        admitted = 0
        still_parked: List[_DeferredRequest] = []
        for request in self.deferred:
            if self._decide() is AdmissionDecision.ADMIT:
                self.engine.submit(request.query, now_ms)
                self.admitted_total += 1
                admitted += 1
            else:
                still_parked.append(request)
        self.deferred = still_parked
        return admitted

    @property
    def deferred_count(self) -> int:
        """Requests currently parked."""
        return len(self.deferred)
