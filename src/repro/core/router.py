"""The router: fanning results out to per-query channels (§3.1.6).

Routing information is encoded in each result tuple's query-set: the
router copies the tuple to the output channel of every query whose bit is
set *and* whose final plan stage is the upstream operator.  This is the
only place AStream copies data (§3.2.2) — intermediate results flowing to
downstream shared joins are forwarded by reference on a separate edge —
and with many concurrent queries this copy becomes the dominant overhead
component (Figure 18a).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.changelog import Changelog
from repro.core.selection import QS_TAG
from repro.minispe.operators import Operator
from repro.minispe.record import ChangelogMarker, Record, Watermark


@dataclass
class QueryOutput:
    """One delivered result on a query's channel."""

    timestamp: int
    value: Any


def canonical_order(outputs: List[QueryOutput]) -> List[QueryOutput]:
    """Results in the deterministic merge order: event time, then value.

    Within one channel, ties on timestamp are broken by the stable
    ``repr`` of the value.  Result values here are tuples of ints/strings
    (aggregates, joined pairs), whose ``repr`` is injective, so two
    entries compare equal only when they are the same result.  That makes
    the canonical form independent of arrival order — the property the
    process backend relies on to merge per-shard channels byte-identically
    to the in-process path (which may interleave join matches in
    store-insertion order).
    """
    return sorted(outputs, key=lambda output: (output.timestamp, repr(output.value)))


def merge_channel_snapshots(snapshots: List[dict], retain_results: bool) -> dict:
    """Merge per-shard :meth:`QueryChannels.snapshot` payloads into one.

    Counts are summed per query; retained result lists are concatenated
    and put in canonical order, so the merged snapshot is deterministic
    regardless of shard count or collection order.
    """
    counts: Dict[str, int] = {}
    results: Dict[str, List[QueryOutput]] = {}
    for snapshot in snapshots:
        for query_id, count in snapshot["counts"].items():
            counts[query_id] = counts.get(query_id, 0) + count
        if retain_results:
            for query_id, outputs in snapshot["results"].items():
                results.setdefault(query_id, []).extend(outputs)
    return {
        "counts": counts,
        "results": {
            query_id: canonical_order(outputs)
            for query_id, outputs in results.items()
        },
    }


class QueryChannels:
    """Per-query output channels shared by all router instances.

    The harness wires ``on_deliver`` to timestamp deliveries for
    event-time latency (§3.4 extends Flink's latency markers the same
    way: sample tuples at the sink and report to the job manager).
    """

    def __init__(
        self,
        retain_results: bool = True,
        on_deliver: Optional[Callable[[str, Record], None]] = None,
    ) -> None:
        self.retain_results = retain_results
        self.on_deliver = on_deliver
        self._results: Dict[str, List[QueryOutput]] = {}
        self._counts: Dict[str, int] = {}
        self._taps: Dict[str, List[Callable[[str, int, Any], None]]] = {}
        """Per-query subscription taps (the serving layer's streaming
        seam): each registered callable sees every delivery for its
        query as ``(query_id, timestamp, value)``, before retention."""

    def open_channel(self, query_id: str) -> None:
        """Create the channel for a newly deployed query."""
        if self.retain_results:
            self._results.setdefault(query_id, [])
        self._counts.setdefault(query_id, 0)

    def close_channel(self, query_id: str) -> None:
        """Stop delivering to a deleted query (results stay readable)."""
        # Counts and results are retained so the harness can read them
        # after the query stopped; new deliveries simply stop arriving
        # because the router drops the slot mapping.

    def deliver(self, query_id: str, timestamp: int, value: Any) -> None:
        """Copy one result tuple onto a query's channel."""
        self._counts[query_id] = self._counts.get(query_id, 0) + 1
        if self.retain_results:
            self._results.setdefault(query_id, []).append(
                QueryOutput(timestamp=timestamp, value=value)
            )
        if self._taps:
            for tap in self._taps.get(query_id, ()):
                tap(query_id, timestamp, value)
        if self.on_deliver is not None:
            self.on_deliver(query_id, timestamp)

    def add_tap(
        self, query_id: str, tap: Callable[[str, int, Any], None]
    ) -> None:
        """Register a streaming tap for one query's deliveries.

        Taps see ``(query_id, timestamp, value)`` synchronously on every
        delivery; the serving layer uses them to fan results out to live
        subscriptions without re-reading retained channels.  The hot
        path pays one truthiness check while no taps exist.
        """
        self._taps.setdefault(query_id, []).append(tap)

    def remove_tap(
        self, query_id: str, tap: Callable[[str, int, Any], None]
    ) -> None:
        """Unregister a previously added tap (no-op when absent)."""
        taps = self._taps.get(query_id)
        if not taps:
            return
        try:
            taps.remove(tap)
        except ValueError:
            return
        if not taps:
            del self._taps[query_id]

    def results(self, query_id: str) -> List[QueryOutput]:
        """All results delivered to ``query_id`` so far."""
        return self._results.get(query_id, [])

    def canonical_results(self, query_id: str) -> List[QueryOutput]:
        """Results for ``query_id`` in the deterministic merge order.

        Use this (not :meth:`results`) when comparing outputs across
        execution backends: see :func:`canonical_order`.
        """
        return canonical_order(self._results.get(query_id, []))

    def count(self, query_id: str) -> int:
        """Number of results delivered to ``query_id``."""
        return self._counts.get(query_id, 0)

    def total_delivered(self) -> int:
        """Results delivered across all queries."""
        return sum(self._counts.values())

    def query_ids(self) -> List[str]:
        """All channels ever opened."""
        return list(self._counts.keys())

    def snapshot(self) -> dict:
        """Channel state for an engine checkpoint.

        In count-only mode (``retain_results=False``) no result lists
        exist, so the snapshot carries counts alone.
        """
        return {
            "counts": dict(self._counts),
            "results": (
                {
                    query_id: list(outputs)
                    for query_id, outputs in self._results.items()
                }
                if self.retain_results
                else {}
            ),
        }

    def restore(self, snapshot: dict) -> None:
        """Reset channels to a checkpointed state (recovery)."""
        self._counts = dict(snapshot["counts"])
        if self.retain_results:
            self._results = {
                query_id: list(outputs)
                for query_id, outputs in snapshot["results"].items()
            }
        else:
            self._results = {}


class RouterOperator(Operator):
    """Routes tagged result tuples from one shared operator to channels.

    ``upstream_key`` is the stage whose outputs this router serves; only
    queries whose *output* stage is that operator are routed here, so
    intermediate join results heading to downstream shared operators are
    not copied (§3.2.2).
    """

    def __init__(
        self,
        upstream_key: str,
        channels: QueryChannels,
        profile: bool = False,
    ) -> None:
        super().__init__(f"router:{upstream_key}")
        self.upstream_key = upstream_key
        self.channels = channels
        self.profile = profile
        self._slot_to_query: Dict[int, str] = {}
        self._output_slots = 0
        # Routing table: masked query-set bits -> destination channel ids.
        # Valid for one changelog sequence; rebuilding it lazily per
        # distinct bitset replaces the per-record bit-walk — with many
        # queries the same bitsets recur for thousands of records between
        # changelogs, so the walk is paid once per (epoch, bitset).
        self._route_table: Dict[int, Tuple[str, ...]] = {}
        self.copies = 0
        self.profile_ns = 0

    # -- changelog handling ----------------------------------------------------

    def on_marker(self, marker: ChangelogMarker) -> None:
        changelog: Changelog = marker.changelog
        self._route_table.clear()  # slot meanings change with the changelog
        for deactivation in changelog.deleted:
            if deactivation.slot in self._slot_to_query:
                del self._slot_to_query[deactivation.slot]
                self._output_slots &= ~(1 << deactivation.slot)
                self.channels.close_channel(deactivation.query_id)
        for activation in changelog.created:
            if self._is_output_here(activation):
                self._slot_to_query[activation.slot] = activation.query.query_id
                self._output_slots |= 1 << activation.slot
                self.channels.open_channel(activation.query.query_id)
        self.output(marker)

    def _is_output_here(self, activation) -> bool:
        for stage in activation.query.stages():
            if stage.operator == self.upstream_key:
                return stage.is_output
        return False

    # -- data path -----------------------------------------------------------

    def process(self, record: Record) -> None:
        bits = record.tags.get(QS_TAG, 0) & self._output_slots
        if not bits:
            return
        started = time.perf_counter_ns() if self.profile else 0
        deliver = self.channels.deliver
        timestamp = record.timestamp
        value = record.value
        queries = self._route_table.get(bits)
        if queries is None:
            queries = self._build_route(bits)
        for query_id in queries:
            # Ship a copy to the query's own channel: physically
            # different channels require one copy per query (§3.2.2).
            deliver(query_id, timestamp, value)
        self.copies += len(queries)
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started

    def process_batch(self, records: List[Record]) -> None:
        started = time.perf_counter_ns() if self.profile else 0
        output_slots = self._output_slots
        route_table = self._route_table
        deliver = self.channels.deliver
        build = self._build_route
        copies = 0
        for record in records:
            bits = record.tags.get(QS_TAG, 0) & output_slots
            if not bits:
                continue
            queries = route_table.get(bits)
            if queries is None:
                queries = build(bits)
            timestamp = record.timestamp
            value = record.value
            for query_id in queries:
                deliver(query_id, timestamp, value)
            copies += len(queries)
        self.copies += copies
        if self.profile:
            self.profile_ns += time.perf_counter_ns() - started

    def _build_route(self, bits: int) -> Tuple[str, ...]:
        """Resolve a masked bitset to channel ids and memoise it for the
        current changelog sequence (slot ascending, matching the
        per-record bit-walk order)."""
        slot_to_query = self._slot_to_query
        queries = []
        remaining = bits
        slot = 0
        while remaining:
            if remaining & 1:
                queries.append(slot_to_query[slot])
            remaining >>= 1
            slot += 1
        resolved = tuple(queries)
        self._route_table[bits] = resolved
        return resolved

    def on_watermark(self, watermark: Watermark) -> None:
        # Routers are terminal vertices; nothing to forward.
        pass

    # -- introspection ---------------------------------------------------------

    @property
    def routed_query_count(self) -> int:
        """Queries currently routed by this instance."""
        return len(self._slot_to_query)

    def snapshot(self) -> Any:
        return {
            "slot_to_query": dict(self._slot_to_query),
            "output_slots": self._output_slots,
        }

    def restore(self, snapshot: Any) -> None:
        self._slot_to_query = dict(snapshot["slot_to_query"])
        self._output_slots = snapshot["output_slots"]
        self._route_table.clear()
