"""AStream: the paper's contribution — ad-hoc shared stream processing.

This package implements the shared-computation layer of Karimov, Rabl &
Markl, *AStream: Ad-hoc Shared Stream Processing* (SIGMOD 2019) on top of
the :mod:`repro.minispe` substrate:

* :mod:`repro.core.bitset` — query-set bitsets (§2.1.1);
* :mod:`repro.core.query` — query specifications (selection predicates,
  window specs, join/aggregation/complex queries);
* :mod:`repro.core.registry` — query-slot allocation with bit reuse
  (Figure 3c) and the naive append-only policy for ablation (Figure 3b);
* :mod:`repro.core.changelog` — changelogs, changelog-sets, and the
  Equation 1 dynamic program (Figure 4b/4c);
* :mod:`repro.core.session` — the shared session: request batching and
  changelog generation (§3.1.1);
* :mod:`repro.core.selection` — shared selection, tagging tuples with
  query-sets (§3.1.2);
* :mod:`repro.core.slicing` — dynamic window slicing (§3.1.3, Figure 4e);
* :mod:`repro.core.storage` — per-slice tuple stores: grouped-by-query-set
  vs flat list, with the adaptive switch heuristic (§3.1.4, §3.2.3);
* :mod:`repro.core.shared_join` — incremental shared windowed join with a
  pairwise computation history (§3.1.4, Figure 4f);
* :mod:`repro.core.shared_aggregation` — shared windowed aggregation with
  per-slice per-query partials (§3.1.5);
* :mod:`repro.core.router` — routing result tuples to per-query channels
  (§3.1.6);
* :mod:`repro.core.engine` — the user-facing :class:`AStreamEngine`
  facade wiring everything into one never-redeployed topology (Figure 2);
* :mod:`repro.core.qos` — quality-of-service metrics (§3.4).
"""

from repro.core.bitset import QuerySet
from repro.core.changelog import Changelog, ChangelogTable, QueryActivation
from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    AggregationQuery,
    AggregationSpec,
    ComplexQuery,
    FieldPredicate,
    JoinQuery,
    Predicate,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.core.registry import QueryRegistry, SlotPolicy
from repro.core.serde import (
    SerdeError,
    load_schedule,
    query_from_dict,
    query_to_dict,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.session import QueryRequest, SharedSession
from repro.core.sql import SqlError, parse_query
from repro.core.statistics import SharingStatistics

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AStreamEngine",
    "AggregationQuery",
    "AggregationSpec",
    "Changelog",
    "ChangelogTable",
    "ComplexQuery",
    "EngineConfig",
    "FieldPredicate",
    "JoinQuery",
    "Predicate",
    "QueryActivation",
    "QueryRegistry",
    "QueryRequest",
    "QuerySet",
    "SelectionQuery",
    "SerdeError",
    "SharedSession",
    "SharingStatistics",
    "SlotPolicy",
    "SqlError",
    "TruePredicate",
    "WindowSpec",
    "load_schedule",
    "parse_query",
    "query_from_dict",
    "query_to_dict",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]
