"""Query-slot allocation (paper §2.1.2, Figure 3).

Every active query occupies one bit position — a *slot* — in all
query-sets.  When a query is deleted its slot becomes reusable; AStream
assigns freed slots to new queries to keep query-sets compact
(Figure 3c).  The naive alternative — append-only indices, never reusing
a deleted query's position (Figure 3b) — is kept as
:attr:`SlotPolicy.APPEND_ONLY` for the ablation benchmark: it produces
ever-wider, sparse bitsets whose bitwise operations slow down over time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.query import Query


class SlotPolicy(enum.Enum):
    """How slots of deleted queries are handled."""

    REUSE = "reuse"
    """AStream's policy: lowest freed slot first (Figure 3c)."""

    APPEND_ONLY = "append_only"
    """Naive policy: every query gets a fresh index (Figure 3b)."""


@dataclass
class ActiveQuery:
    """Registry entry for one running query."""

    query: Query
    slot: int
    created_at_ms: int
    created_epoch: int
    """Index of the changelog epoch that created this query."""


class QueryRegistry:
    """Tracks active queries and their slot assignments.

    The registry lives client-side in the shared session; shared operators
    receive its updates through changelog markers and mirror the relevant
    subset.
    """

    def __init__(self, policy: SlotPolicy = SlotPolicy.REUSE) -> None:
        self.policy = policy
        self._by_slot: Dict[int, ActiveQuery] = {}
        self._by_id: Dict[str, ActiveQuery] = {}
        self._free_slots: List[int] = []
        self._width = 0

    # -- allocation ----------------------------------------------------------

    def register(
        self, query: Query, created_at_ms: int, created_epoch: int
    ) -> ActiveQuery:
        """Allocate a slot for ``query`` and mark it active."""
        if query.query_id in self._by_id:
            raise ValueError(f"query {query.query_id!r} is already registered")
        slot = self._allocate_slot()
        entry = ActiveQuery(
            query=query,
            slot=slot,
            created_at_ms=created_at_ms,
            created_epoch=created_epoch,
        )
        self._by_slot[slot] = entry
        self._by_id[query.query_id] = entry
        return entry

    def unregister(self, query_id: str) -> ActiveQuery:
        """Remove a query; its slot becomes reusable under REUSE policy."""
        entry = self._by_id.pop(query_id, None)
        if entry is None:
            raise KeyError(f"query {query_id!r} is not registered")
        del self._by_slot[entry.slot]
        if self.policy is SlotPolicy.REUSE:
            self._free_slots.append(entry.slot)
            self._free_slots.sort(reverse=True)  # pop() yields the lowest
        return entry

    def _allocate_slot(self) -> int:
        if self.policy is SlotPolicy.REUSE and self._free_slots:
            return self._free_slots.pop()
        slot = self._width
        self._width += 1
        return slot

    # -- lookups -------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of slots ever allocated (the query-set width)."""
        return self._width

    @property
    def active_count(self) -> int:
        """Number of currently active queries."""
        return len(self._by_id)

    def by_slot(self, slot: int) -> Optional[ActiveQuery]:
        """The active query at ``slot``, or None."""
        return self._by_slot.get(slot)

    def by_id(self, query_id: str) -> Optional[ActiveQuery]:
        """The active query named ``query_id``, or None."""
        return self._by_id.get(query_id)

    def active(self) -> List[ActiveQuery]:
        """All active queries, ordered by slot."""
        return [self._by_slot[slot] for slot in sorted(self._by_slot)]

    def active_mask(self) -> int:
        """Bitset of currently occupied slots."""
        mask = 0
        for slot in self._by_slot:
            mask |= 1 << slot
        return mask

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._by_id

    def __repr__(self) -> str:
        return (
            f"QueryRegistry(policy={self.policy.value}, "
            f"active={self.active_count}, width={self._width})"
        )
