"""Query-set bitsets (paper §2.1.1).

AStream extends SharedDB's data model: every tuple carries the set of
query IDs potentially interested in it, encoded as a bitset — the
*query-set*.  Bit *i* corresponds to query slot *i* (slots are assigned by
:class:`repro.core.registry.QueryRegistry`).  Two tuples are joined or
aggregated together only if the bitwise AND of their query-sets is
non-zero, which is how redundant computation is avoided.

Hot paths inside the shared operators work on raw Python ints (arbitrary
precision makes them natural bitsets); :class:`QuerySet` is the typed,
immutable wrapper for the public API, tests, and display.  The paper
prints query-sets with slot 0 leftmost (e.g. Figure 3a: ``10`` means
"only Q1"); :meth:`QuerySet.to_paper_string` follows that convention.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class QuerySet:
    """An immutable set of query slots backed by an int bitset."""

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0) -> None:
        if bits < 0:
            raise ValueError(f"query-set bits must be non-negative, got {bits}")
        self._bits = bits

    # -- constructors --------------------------------------------------------

    @classmethod
    def of(cls, *slots: int) -> "QuerySet":
        """Build a query-set containing exactly ``slots``."""
        return cls.from_slots(slots)

    @classmethod
    def from_slots(cls, slots: Iterable[int]) -> "QuerySet":
        """Build a query-set from an iterable of slot indices."""
        bits = 0
        for slot in slots:
            if slot < 0:
                raise ValueError(f"slot indices must be non-negative, got {slot}")
            bits |= 1 << slot
        return cls(bits)

    @classmethod
    def from_paper_string(cls, text: str) -> "QuerySet":
        """Parse the paper's notation: slot 0 is the *leftmost* character."""
        bits = 0
        for slot, char in enumerate(text):
            if char == "1":
                bits |= 1 << slot
            elif char != "0":
                raise ValueError(f"invalid query-set string {text!r}")
        return cls(bits)

    @classmethod
    def all_of(cls, width: int) -> "QuerySet":
        """A query-set with the first ``width`` slots all set."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        return cls((1 << width) - 1)

    # -- accessors -----------------------------------------------------------

    @property
    def bits(self) -> int:
        """The raw int bitset (bit *i* ↔ slot *i*)."""
        return self._bits

    def contains(self, slot: int) -> bool:
        """Return True if ``slot`` is in this query-set."""
        return bool(self._bits >> slot & 1)

    def is_empty(self) -> bool:
        """True when no slot is set."""
        return self._bits == 0

    def count(self) -> int:
        """Number of slots set (population count)."""
        return self._bits.bit_count()

    def slots(self) -> List[int]:
        """The set slot indices in ascending order."""
        return list(self)

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        slot = 0
        while bits:
            if bits & 1:
                yield slot
            bits >>= 1
            slot += 1

    # -- algebra -------------------------------------------------------------

    def intersect(self, other: "QuerySet") -> "QuerySet":
        """Bitwise AND — the queries shared by both sets (§2.1.1)."""
        return QuerySet(self._bits & other._bits)

    def union(self, other: "QuerySet") -> "QuerySet":
        """Bitwise OR."""
        return QuerySet(self._bits | other._bits)

    def minus(self, other: "QuerySet") -> "QuerySet":
        """Slots in self but not in other."""
        return QuerySet(self._bits & ~other._bits)

    def with_slot(self, slot: int) -> "QuerySet":
        """A copy with ``slot`` added."""
        if slot < 0:
            raise ValueError(f"slot indices must be non-negative, got {slot}")
        return QuerySet(self._bits | (1 << slot))

    def without_slot(self, slot: int) -> "QuerySet":
        """A copy with ``slot`` removed."""
        return QuerySet(self._bits & ~(1 << slot))

    def shares_any(self, other: "QuerySet") -> bool:
        """True if the two sets share at least one query."""
        return bool(self._bits & other._bits)

    __and__ = intersect
    __or__ = union
    __sub__ = minus

    # -- display / equality ----------------------------------------------------

    def to_paper_string(self, width: int) -> str:
        """Render as in the paper's figures: slot 0 leftmost."""
        return "".join(
            "1" if self.contains(slot) else "0" for slot in range(width)
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QuerySet):
            return self._bits == other._bits
        if isinstance(other, int):
            return self._bits == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __bool__(self) -> bool:
        return self._bits != 0

    def __repr__(self) -> str:
        return f"QuerySet({{{', '.join(map(str, self))}}})"


def extend_mask(mask: int, width: int, target_width: int) -> int:
    """Extend an *unchanged-bits* mask from ``width`` to ``target_width``.

    Changelog-set masks use "bit set = position unchanged" semantics
    (§2.1.2).  Slots that did not exist when a mask was generated must be
    treated as *unchanged* by that changelog — the changelog that later
    creates them clears the bit — so extension pads with ones.
    """
    if target_width < width:
        raise ValueError(
            f"cannot shrink mask from width {width} to {target_width}"
        )
    padding = ((1 << target_width) - 1) & ~((1 << width) - 1)
    return mask | padding
