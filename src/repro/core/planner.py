"""Semantic-overlap multi-query planner (§7 future work, ISSUE 8).

AStream's conclusion sketches a cost-based optimizer that groups
*similar* — not only identical — queries.  This module supplies the
machinery: incoming predicates (from serde docs and SQL alike) are
normalized into a canonical **interval form** (conjunction flattening +
constant folding over ``FieldPredicate``/``Comparison``), compared for
**subsumption** (``x >= 50`` ⊑ ``x >= 25``) and **overlap** (ranges that
share tuples), and rewritten onto **shared sub-plans**: one covering
scan per overlap group plus per-query residual refinement.

The rewrite is *exact*, not approximate.  A group's covering predicate
is the hull of its members, so ``cover(t) ∧ member(t) ≡ member(t)`` for
every member — the qs-bitsets the shared selection emits are
byte-identical to evaluating every predicate independently.  Sharing
changes only the work needed to compute them:

* **cover check** — one hull comparison rejects tuples outside the whole
  group (the "covering scan");
* **interval stabbing index** — member intervals on the group's anchor
  field are cut into segments with precomputed slot bitsets, so one
  ``bisect`` resolves *all* single-field members at once;
* **residual filters** — members with constraints on further fields
  (flattened conjunctions) are refined per query with cheap bound
  checks.

Interval endpoints live in a totally ordered *key space* that encodes
open/closed bounds without epsilon hacks: the value ``v`` probes at key
``(v, 0)``, an interval maps to the half-open key range
``[start_key, end_key)`` with ``start_key = (low, 0)`` when the low
bound is inclusive and ``(low, 1)`` when exclusive (and symmetrically
``end_key = (high, 1)`` inclusive / ``(high, 0)`` exclusive).  Interval
membership, emptiness, overlap, and the stabbing segmentation all reduce
to tuple comparisons in that space.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import (
    Comparison,
    FieldPredicate,
    Predicate,
    Query,
    TruePredicate,
)

_INF = float("inf")

_Key = Tuple[float, int]
"""A point in the bound-encoding key space (see module docstring)."""


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """One field's admissible value range ``low .. high`` with bound kinds."""

    low: float = -_INF
    low_inclusive: bool = False
    high: float = _INF
    high_inclusive: bool = False

    @property
    def start_key(self) -> _Key:
        """First key-space point inside the interval."""
        return (self.low, 0 if self.low_inclusive else 1)

    @property
    def end_key(self) -> _Key:
        """First key-space point past the interval."""
        return (self.high, 1 if self.high_inclusive else 0)

    @property
    def is_empty(self) -> bool:
        """True when no value can satisfy the interval."""
        return self.start_key >= self.end_key

    @property
    def is_full(self) -> bool:
        """True when every value satisfies the interval (no bounds)."""
        return self.low == -_INF and self.high == _INF

    def contains_value(self, value: Any) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.start_key <= (value, 0) < self.end_key

    def contains(self, other: "Interval") -> bool:
        """Region containment: every value of ``other`` is in ``self``."""
        if other.is_empty:
            return True
        return (
            self.start_key <= other.start_key
            and other.end_key <= self.end_key
        )

    def intersect(self, other: "Interval") -> "Interval":
        """The conjunction of both bounds (may be empty)."""
        low, low_inc = max(
            (self.low, not self.low_inclusive),
            (other.low, not other.low_inclusive),
        )
        high, high_inc = min(
            (self.high, self.high_inclusive),
            (other.high, other.high_inclusive),
        )
        return Interval(low, not low_inc, high, bool(high_inc))

    def overlaps(self, other: "Interval") -> bool:
        """True when some value satisfies both intervals."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.start_key < other.end_key
            and other.start_key < self.end_key
        )

    def hull(self, other: "Interval") -> "Interval":
        """The smallest interval containing both (the covering bound)."""
        low, low_inc = min(
            (self.low, not self.low_inclusive),
            (other.low, not other.low_inclusive),
        )
        high, high_inc = max(
            (self.high, self.high_inclusive),
            (other.high, other.high_inclusive),
        )
        return Interval(low, not low_inc, high, bool(high_inc))

    def __str__(self) -> str:
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return f"{left}{self.low}, {self.high}{right}"


_OP_INTERVALS = {
    Comparison.LT: lambda c: Interval(high=c, high_inclusive=False),
    Comparison.LE: lambda c: Interval(high=c, high_inclusive=True),
    Comparison.GT: lambda c: Interval(low=c, low_inclusive=False),
    Comparison.GE: lambda c: Interval(low=c, low_inclusive=True),
    Comparison.EQ: lambda c: Interval(c, True, c, True),
}


# ---------------------------------------------------------------------------
# Normal form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NormalizedPredicate:
    """Canonical conjunction-of-intervals form of a value predicate.

    ``constraints`` maps each constrained field (sorted, deduplicated —
    repeated conjuncts over one field are folded by intersection) to its
    interval.  An empty constraint tuple with ``satisfiable=True`` is
    the normalized ``TruePredicate``; ``satisfiable=False`` marks a
    contradiction folded to constant false (e.g. ``x > 5 AND x < 3``).
    """

    constraints: Tuple[Tuple[int, Interval], ...] = ()
    satisfiable: bool = True

    @property
    def canonical_key(self) -> Tuple:
        """Representation-independent identity: equal regions, equal keys.

        The same query written as a serde doc, as SQL, or with its
        conjuncts permuted lands on the same key — this is what makes
        sharing groups representation-independent.
        """
        if not self.satisfiable:
            return ("unsat",)
        return tuple(
            (f, iv.low, iv.low_inclusive, iv.high, iv.high_inclusive)
            for f, iv in self.constraints
        )

    @property
    def anchor_field(self) -> Optional[int]:
        """The lowest constrained field index (None when unconstrained)."""
        return self.constraints[0][0] if self.constraints else None

    def interval_for(self, field_index: int) -> Interval:
        """The constraint on one field (full interval when absent)."""
        for f, interval in self.constraints:
            if f == field_index:
                return interval
        return Interval()

    def evaluate(self, value: Any) -> bool:
        """Semantics of the normal form (must match the source predicate)."""
        if not self.satisfiable:
            return False
        for f, interval in self.constraints:
            if not interval.contains_value(value.fields[f]):
                return False
        return True

    def __str__(self) -> str:
        if not self.satisfiable:
            return "false"
        if not self.constraints:
            return "true"
        return " AND ".join(
            f"fields[{f}] in {iv}" for f, iv in self.constraints
        )


def _conjuncts_of(predicate: Predicate) -> Optional[List[FieldPredicate]]:
    """Flatten a predicate into field-comparison conjuncts, or None."""
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, FieldPredicate):
        return [predicate]
    conjuncts = getattr(predicate, "conjuncts", None)
    if conjuncts is None:
        return None  # black-box UDF or unknown type: not normalizable
    flat: List[FieldPredicate] = []
    for part in conjuncts:
        sub = _conjuncts_of(part)
        if sub is None:
            return None
        flat.extend(sub)
    return flat


def normalize(predicate: Predicate) -> Optional[NormalizedPredicate]:
    """Canonicalize a predicate, or None for black-box (UDF) predicates.

    Conjunctions are flattened, per-field bounds intersected (constant
    folding), and contradictions collapse to the unsatisfiable form.
    """
    conjuncts = _conjuncts_of(predicate)
    if conjuncts is None:
        return None
    by_field: Dict[int, Interval] = {}
    for conjunct in conjuncts:
        interval = _OP_INTERVALS[conjunct.op](conjunct.constant)
        current = by_field.get(conjunct.field_index)
        by_field[conjunct.field_index] = (
            interval if current is None else current.intersect(interval)
        )
    constraints = []
    for field_index in sorted(by_field):
        interval = by_field[field_index]
        if interval.is_empty:
            return NormalizedPredicate(constraints=(), satisfiable=False)
        if not interval.is_full:
            constraints.append((field_index, interval))
    return NormalizedPredicate(constraints=tuple(constraints))


def subsumes(p: NormalizedPredicate, q: NormalizedPredicate) -> bool:
    """True when ``p`` contains ``q``: every tuple matching q matches p."""
    if not q.satisfiable:
        return True
    if not p.satisfiable:
        return False
    for field_index, p_interval in p.constraints:
        if not p_interval.contains(q.interval_for(field_index)):
            return False
    return True


def overlaps(p: NormalizedPredicate, q: NormalizedPredicate) -> bool:
    """True when some tuple satisfies both predicates."""
    if not (p.satisfiable and q.satisfiable):
        return False
    for field_index, p_interval in p.constraints:
        if not p_interval.overlaps(q.interval_for(field_index)):
            return False
    return True


def covering(members: Sequence[NormalizedPredicate]) -> NormalizedPredicate:
    """The per-field hull of ``members`` — subsumes every one of them.

    A field appears in the cover only when *every* member constrains it
    (a member without the constraint admits the whole axis, so the hull
    there is unbounded).
    """
    live = [m for m in members if m.satisfiable]
    if not live:
        return NormalizedPredicate(constraints=(), satisfiable=False)
    shared_fields = set(f for f, _ in live[0].constraints)
    for member in live[1:]:
        shared_fields &= set(f for f, _ in member.constraints)
    constraints = []
    for field_index in sorted(shared_fields):
        hull = live[0].interval_for(field_index)
        for member in live[1:]:
            hull = hull.hull(member.interval_for(field_index))
        if not hull.is_full:
            constraints.append((field_index, hull))
    return NormalizedPredicate(constraints=tuple(constraints))


# ---------------------------------------------------------------------------
# Compiled sharing groups
# ---------------------------------------------------------------------------


_Residual = Tuple[Tuple[Tuple[int, float, bool, float, bool], ...], int]
"""(per-field bound checks, slots-bitset) for one residual member."""


class SharingGroup:
    """One overlap component compiled for per-tuple evaluation.

    Evaluation order per tuple: hull cover check (reject the whole group
    with two comparisons), then one stabbing-index probe resolving every
    single-field member, then the residual filters of multi-field
    members.  Counters feed the sharing statistics exported via
    ``repro.obs``.
    """

    __slots__ = (
        "field_index",
        "slots_mask",
        "member_count",
        "residual_count",
        "cover",
        "_hull_start",
        "_hull_end",
        "_cuts",
        "_segment_masks",
        "_residuals",
        "evaluations",
        "cover_skips",
        "index_probes",
        "residual_checks",
    )

    def __init__(
        self,
        field_index: int,
        single_members: Sequence[Tuple[Interval, int]],
        residual_members: Sequence[Tuple[NormalizedPredicate, int]],
    ) -> None:
        self.field_index = field_index
        self.evaluations = 0
        self.cover_skips = 0
        self.index_probes = 0
        self.residual_checks = 0
        self.member_count = len(single_members) + len(residual_members)
        self.residual_count = len(residual_members)

        anchor_intervals = [interval for interval, _ in single_members]
        anchor_intervals.extend(
            norm.interval_for(field_index) for norm, _ in residual_members
        )
        hull = anchor_intervals[0]
        for interval in anchor_intervals[1:]:
            hull = hull.hull(interval)
        self.cover = hull
        self._hull_start = hull.start_key
        self._hull_end = hull.end_key

        # Stabbing index over the single-field members: sweep the bound
        # keys in order, toggling each member's slot bits on at its
        # start key and off at its end key; the running bitset at cut i
        # is exactly the members containing the key segment
        # [cuts[i], cuts[i+1]).
        toggles: Dict[_Key, int] = {}
        mask = 0
        for interval, slots in single_members:
            toggles[interval.start_key] = toggles.get(interval.start_key, 0) ^ slots
            toggles[interval.end_key] = toggles.get(interval.end_key, 0) ^ slots
            mask |= slots
        cuts = sorted(toggles)
        segment_masks = []
        running = 0
        for cut in cuts:
            running ^= toggles[cut]
            segment_masks.append(running)
        self._cuts = cuts
        self._segment_masks = segment_masks

        residuals: List[_Residual] = []
        for norm, slots in residual_members:
            checks = tuple(
                (f, iv.low, iv.low_inclusive, iv.high, iv.high_inclusive)
                for f, iv in norm.constraints
            )
            residuals.append((checks, slots))
            mask |= slots
        self._residuals = residuals
        self.slots_mask = mask

    def evaluate(self, value: Any) -> int:
        """Slot bits of every member the tuple satisfies."""
        self.evaluations += 1
        fields = value.fields
        probe = (fields[self.field_index], 0)
        if not (self._hull_start <= probe < self._hull_end):
            self.cover_skips += 1
            return 0
        index = bisect_right(self._cuts, probe) - 1
        bits = self._segment_masks[index] if index >= 0 else 0
        self.index_probes += 1
        for checks, slots in self._residuals:
            self.residual_checks += 1
            self.evaluations += 1
            for f, low, low_inc, high, high_inc in checks:
                v = fields[f]
                if not ((low, 0 if low_inc else 1) <= (v, 0) < (high, 1 if high_inc else 0)):
                    break
            else:
                bits |= slots
        return bits

    def bind_columns(self, columns: Sequence[Sequence[Any]]):
        """Row-index evaluator over parallel field columns (columnar path)."""
        anchor_column = columns[self.field_index]
        hull_start = self._hull_start
        hull_end = self._hull_end
        cuts = self._cuts
        segment_masks = self._segment_masks
        residuals = self._residuals

        def probe_row(row: int) -> int:
            self.evaluations += 1
            probe = (anchor_column[row], 0)
            if not (hull_start <= probe < hull_end):
                self.cover_skips += 1
                return 0
            index = bisect_right(cuts, probe) - 1
            bits = segment_masks[index] if index >= 0 else 0
            self.index_probes += 1
            for checks, slots in residuals:
                self.residual_checks += 1
                self.evaluations += 1
                for f, low, low_inc, high, high_inc in checks:
                    v = columns[f][row]
                    if not (
                        (low, 0 if low_inc else 1)
                        <= (v, 0)
                        < (high, 1 if high_inc else 0)
                    ):
                        break
                else:
                    bits |= slots
            return bits

        return probe_row

    def describe(self) -> Dict[str, Any]:
        """Reportable shape + counters for stats frames and gauges."""
        return {
            "field": self.field_index,
            "members": self.member_count,
            "residuals": self.residual_count,
            "cover": str(self.cover),
            "segments": len(self._cuts),
            "evaluations": self.evaluations,
            "cover_skips": self.cover_skips,
            "residual_checks": self.residual_checks,
        }


@dataclass
class SelectionPlan:
    """The compiled evaluation plan of one epoch view.

    ``direct`` holds (predicate, slots) pairs evaluated one by one as
    before the optimizer existed — black-box UDFs, ``TruePredicate``,
    and overlap components of size one.  ``groups`` holds the shared
    sub-plans.  ``folded_slots`` are slots whose predicates folded to
    constant false and need no evaluation at all.
    """

    direct: List[Tuple[Predicate, int]] = field(default_factory=list)
    groups: List[SharingGroup] = field(default_factory=list)
    folded_slots: int = 0

    @property
    def grouped_slots(self) -> int:
        """How many query slots evaluate through shared groups."""
        total = 0
        for group in self.groups:
            total += bin(group.slots_mask).count("1")
        return total

    def describe(self) -> Dict[str, Any]:
        """Reportable plan shape for stats frames and gauges."""
        return {
            "direct_predicates": len(self.direct),
            "groups": [group.describe() for group in self.groups],
            "grouped_slots": self.grouped_slots,
            "folded_unsatisfiable_slots": bin(self.folded_slots).count("1"),
        }


def compile_selection_plan(
    pairs: Sequence[Tuple[Predicate, int]],
    share_overlapping: bool = True,
) -> SelectionPlan:
    """Rewrite deduplicated (predicate, slots) pairs into a shared plan.

    Deterministic: the same pairs (and they are derived from the sorted
    slot table) compile to the same plan on every backend and after
    every recovery, which is what keeps sharded and restored runs
    byte-equal to the inline oracle.
    """
    plan = SelectionPlan()
    if not share_overlapping:
        plan.direct = list(pairs)
        return plan

    # anchor field -> [(normalized, original, slots)]
    clusters: Dict[int, List[Tuple[NormalizedPredicate, Predicate, int]]] = {}
    for predicate, slots in pairs:
        normalized = normalize(predicate)
        if normalized is None:  # black-box UDF: evaluate as-is
            plan.direct.append((predicate, slots))
            continue
        if not normalized.satisfiable:  # constant-folded to false
            plan.folded_slots |= slots
            continue
        anchor = normalized.anchor_field
        if anchor is None:  # TruePredicate: constant true
            plan.direct.append((predicate, slots))
            continue
        clusters.setdefault(anchor, []).append((normalized, predicate, slots))

    for anchor in sorted(clusters):
        members = clusters[anchor]
        # Sweep the anchor intervals into overlap-connected components:
        # sorted by start key, a member joins the open component while
        # its interval begins before the component's furthest end.
        members.sort(
            key=lambda entry: (
                entry[0].interval_for(anchor).start_key,
                entry[0].interval_for(anchor).end_key,
                entry[2],
            )
        )
        component: List[Tuple[NormalizedPredicate, Predicate, int]] = []
        max_end: Optional[_Key] = None
        for entry in members:
            interval = entry[0].interval_for(anchor)
            if max_end is not None and interval.start_key < max_end:
                component.append(entry)
                max_end = max(max_end, interval.end_key)
                continue
            _flush_component(plan, anchor, component)
            component = [entry]
            max_end = interval.end_key
        _flush_component(plan, anchor, component)
    return plan


def _flush_component(
    plan: SelectionPlan,
    anchor: int,
    component: List[Tuple[NormalizedPredicate, Predicate, int]],
) -> None:
    """Emit one overlap component: direct when alone, grouped otherwise."""
    if not component:
        return
    if len(component) == 1:
        _, predicate, slots = component[0]
        plan.direct.append((predicate, slots))
        return
    singles: List[Tuple[Interval, int]] = []
    residuals: List[Tuple[NormalizedPredicate, int]] = []
    for normalized, _, slots in component:
        if len(normalized.constraints) == 1:
            singles.append((normalized.interval_for(anchor), slots))
        else:
            residuals.append((normalized, slots))
    plan.groups.append(SharingGroup(anchor, singles, residuals))


# ---------------------------------------------------------------------------
# Placement affinity
# ---------------------------------------------------------------------------


def sharing_affinity_key(query: Query) -> str:
    """Admission-time sharing-affinity label for the placer.

    Queries whose selection predicates anchor on the same field of the
    same output stage are the ones the selection optimizer can merge
    into one covering group, so the placer co-locates them.  Queries
    with no value constraints (or UDF predicates) keep the bare stage
    key — the pre-optimizer behaviour.
    """
    stages = query.stages()
    stage = stages[-1].operator if stages else "sink"
    anchors = []
    for stream in query.streams:
        try:
            normalized = normalize(query.predicate_for(stream))
        except KeyError:
            continue
        if normalized is None or normalized.anchor_field is None:
            continue
        anchors.append(f"f{normalized.anchor_field}")
    if not anchors:
        return stage
    return f"{stage}|{'+'.join(anchors)}"
