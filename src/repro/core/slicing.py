"""Dynamic window slicing (§3.1.3, Figure 4e).

AStream divides each stream into disjoint *slices* whose edges are
determined at runtime by (a) the window begin/end points of the active
ad-hoc queries — anchored at each query's creation time — and (b) the
changelog positions.  Every query window is then a union of whole slices,
so operations performed per slice (a partial aggregate, a slice-pair
join) are computed once and reused by all queries whose windows cover the
slice — the stream generalisation of window panes computed at runtime
instead of compile time (§6.5).

This module provides:

* :class:`EpochTimeline` — maps event time to the changelog epoch in
  force (epochs are the paper's "time slots");
* :class:`Slice` / :class:`SliceIndex` — slice objects and an ordered
  index with overlap queries and retention-based expiry;
* :class:`SliceManager` — computes slice bounds for a timestamp from the
  window edges of the queries active *during that timestamp's epoch*
  (kept as per-epoch views so bounded-lateness records slice
  consistently), with a hot-path cache;
* a firing schedule (:meth:`SliceManager.due_windows`) tracking which
  query windows are due as the watermark advances.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.query import WindowSpec


@dataclass
class EpochTimeline:
    """Event-time intervals of changelog epochs.

    Epoch 0 starts at time 0; the changelog with sequence *k* (event time
    ``t_k``) starts epoch *k* covering ``[t_k, t_{k+1})``.
    """

    _starts: List[int] = field(default_factory=lambda: [0])
    _sequences: List[int] = field(default_factory=lambda: [0])
    _prune_horizon_ms: int = 0

    def append(self, sequence: int, start_ms: int) -> None:
        """Register the start of a new epoch."""
        if sequence != self._sequences[-1] + 1:
            raise ValueError(
                f"epoch out of order: expected {self._sequences[-1] + 1}, "
                f"got {sequence}"
            )
        if start_ms < self._starts[-1]:
            raise ValueError(
                f"epoch {sequence} starts at {start_ms}, before epoch "
                f"{self._sequences[-1]} at {self._starts[-1]}"
            )
        self._starts.append(start_ms)
        self._sequences.append(sequence)

    def index_for(self, timestamp_ms: int) -> int:
        """Position of the epoch covering ``timestamp_ms``."""
        index = bisect_right(self._starts, timestamp_ms) - 1
        return max(index, 0)

    def epoch_for(self, timestamp_ms: int) -> Tuple[int, int, Optional[int]]:
        """Return ``(sequence, start_ms, end_ms)`` covering the timestamp.

        ``end_ms`` is None for the open current epoch.
        """
        index = self.index_for(timestamp_ms)
        end = self._starts[index + 1] if index + 1 < len(self._starts) else None
        return self._sequences[index], self._starts[index], end

    @property
    def current_sequence(self) -> int:
        """The newest epoch."""
        return self._sequences[-1]

    def prune_before(self, timestamp_ms: int) -> int:
        """Drop epochs fully superseded before ``timestamp_ms``.

        Keeps the epoch covering ``timestamp_ms`` so event-time lookups
        within the lateness bound still resolve.  Returns the number of
        entries dropped (long-running deployments call this from the
        watermark path to bound state).

        The prune horizon is monotonic: with shard-local watermarks
        there is no single global watermark holder, and a shard whose
        watermark lags the others may call this with an older timestamp.
        Such calls are cheap no-ops instead of (incorrectly) assuming
        the caller's watermark is the furthest one seen.
        """
        if timestamp_ms <= self._prune_horizon_ms:
            return 0
        self._prune_horizon_ms = timestamp_ms
        keep_from = self.index_for(timestamp_ms)
        if keep_from <= 0:
            return 0
        del self._starts[:keep_from]
        del self._sequences[:keep_from]
        return keep_from

    def __len__(self) -> int:
        return len(self._sequences)


@dataclass
class Slice:
    """One disjoint stream partition ``[start, end)`` within one epoch.

    ``store`` is attached by the owning shared operator (a tuple store
    for joins, a partial-aggregate map for aggregations).
    """

    start: int
    end: int
    epoch: int
    store: Any = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty slice [{self.start}, {self.end})")

    @property
    def id(self) -> Tuple[int, int]:
        """Stable identity: (epoch, start)."""
        return (self.epoch, self.start)

    def covers(self, timestamp_ms: int) -> bool:
        """True when the timestamp falls inside this slice."""
        return self.start <= timestamp_ms < self.end

    def __repr__(self) -> str:
        return f"Slice([{self.start}, {self.end}), epoch={self.epoch})"


class SliceIndex:
    """Slices of one stream ordered by start time."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._slices: Dict[int, Slice] = {}
        self.created_total = 0
        self.expired_total = 0
        self._expiry_horizon_ms = 0

    def get(self, start: int) -> Optional[Slice]:
        """The slice starting exactly at ``start``, if present."""
        return self._slices.get(start)

    def get_or_create(self, start: int, end: int, epoch: int) -> Slice:
        """Fetch the slice at ``start`` or create it with these bounds."""
        existing = self._slices.get(start)
        if existing is not None:
            return existing
        new_slice = Slice(start=start, end=end, epoch=epoch)
        self._slices[start] = new_slice
        insort(self._starts, start)
        self.created_total += 1
        return new_slice

    def overlapping(self, start: int, end: int) -> List[Slice]:
        """Slices intersecting ``[start, end)``, in time order."""
        result = []
        index = bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        while index < len(self._starts):
            candidate = self._slices[self._starts[index]]
            if candidate.start >= end:
                break
            if candidate.end > start:
                result.append(candidate)
            index += 1
        return result

    def expire_before(self, timestamp_ms: int) -> List[Slice]:
        """Drop and return slices whose end precedes ``timestamp_ms``.

        This is Figure 4f's red boxes: once no active query window can
        still cover a slice, it (and any cached results involving it) is
        deleted.

        The expiry horizon is monotonic so the call is safe under
        shard-local watermarks: a shard whose watermark regressed
        relative to the furthest horizon already applied (no global
        watermark holder exists in the process backend) gets a fast
        no-op and cannot re-expire or interleave with newer slices.
        The dropped prefix is removed with one ``del`` instead of a
        per-slice ``pop(0)``, so expiring k of n slices is O(k + n)
        instead of O(k·n).
        """
        if timestamp_ms <= self._expiry_horizon_ms:
            return []
        self._expiry_horizon_ms = timestamp_ms
        cut = 0
        expired: List[Slice] = []
        for start in self._starts:
            candidate = self._slices[start]
            if candidate.end > timestamp_ms:
                break
            expired.append(candidate)
            del self._slices[start]
            cut += 1
        if cut:
            del self._starts[:cut]
        self.expired_total += len(expired)
        return expired

    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[Slice]:
        return (self._slices[start] for start in self._starts)


@dataclass
class WindowedQuery:
    """A windowed query as seen by a shared operator."""

    slot: int
    spec: WindowSpec
    created_at_ms: int
    next_fire_index: int = 0


class SliceManager:
    """Computes dynamic slice bounds from active query window edges.

    The slice containing timestamp *t* is the interval between the
    closest window edges around *t*: for each time-windowed query *q*
    active during *t*'s epoch (anchored at its creation time ``c`` with
    slide ``s`` and length ``l``), the edge sets are ``{c + k·s}`` and
    ``{c + k·s + l}``.  Epoch boundaries (changelog event times) are
    edges too, so no slice spans a changelog — the property that makes
    per-slice bitset semantics constant (§2.1.2).

    Query registrations happen exactly at changelog markers, so the
    manager snapshots one query view per epoch; late records (within the
    allowed lateness) slice under the view of their own epoch, keeping
    slicing a pure function of event time and changelog history — the
    determinism exactly-once recovery relies on (§3.3).
    """

    def __init__(self) -> None:
        self.timeline = EpochTimeline()
        self._current: Dict[int, WindowedQuery] = {}
        # One frozen (slot -> WindowedQuery) view per timeline entry.
        self._views: List[Dict[int, WindowedQuery]] = [{}]
        # Hot-path cache: most records land in the most recent slice.
        self._cached_bounds: Optional[Tuple[int, int, int]] = None

    # -- query lifecycle -----------------------------------------------------

    def register_query(
        self, slot: int, spec: WindowSpec, created_at_ms: int
    ) -> None:
        """Start slicing for a new windowed query (at a changelog)."""
        if spec.is_session:
            raise ValueError("session windows are not sliced (data-driven)")
        self._current[slot] = WindowedQuery(slot, spec, created_at_ms)
        self._cached_bounds = None

    def unregister_query(self, slot: int) -> None:
        """Stop slicing for a deleted query (at a changelog)."""
        self._current.pop(slot, None)
        self._cached_bounds = None

    def on_epoch(self, sequence: int, start_ms: int) -> None:
        """Seal the new epoch's query view after applying a changelog."""
        self.timeline.append(sequence, start_ms)
        self._views.append(dict(self._current))
        self._cached_bounds = None

    def query(self, slot: int) -> Optional[WindowedQuery]:
        """The currently tracked windowed query at ``slot``."""
        return self._current.get(slot)

    def queries(self) -> List[WindowedQuery]:
        """All currently tracked windowed queries, by slot."""
        return [self._current[slot] for slot in sorted(self._current)]

    @property
    def max_retention_ms(self) -> int:
        """Longest window length among active queries (state horizon)."""
        if not self._current:
            return 0
        return max(query.spec.length_ms for query in self._current.values())

    # -- slice bounds -----------------------------------------------------------

    def slice_bounds(self, timestamp_ms: int) -> Tuple[int, int, int]:
        """Return ``(start, end, epoch)`` of the slice containing the time."""
        cached = self._cached_bounds
        if cached is not None and cached[0] <= timestamp_ms < cached[1]:
            return cached
        index = self.timeline.index_for(timestamp_ms)
        epoch, epoch_start, epoch_end = self.timeline.epoch_for(timestamp_ms)
        floor = epoch_start
        ceiling = epoch_end  # None = open
        for query in self._views[index].values():
            for edge_offset in (0, query.spec.length_ms):
                anchor = query.created_at_ms + edge_offset
                slide = query.spec.slide_ms
                if timestamp_ms >= anchor:
                    below = anchor + ((timestamp_ms - anchor) // slide) * slide
                    if below > floor:
                        floor = below
                    above = below + slide
                else:
                    above = anchor
                if ceiling is None or above < ceiling:
                    ceiling = above
        if ceiling is None:
            # No query edges ahead and the epoch is open: close the slice
            # at the next whole second so it stays finite.
            ceiling = ((timestamp_ms // 1_000) + 1) * 1_000
        bounds = (floor, ceiling, epoch)
        self._cached_bounds = bounds
        return bounds

    def prune_before(self, timestamp_ms: int) -> int:
        """Drop per-epoch views older than the retention horizon."""
        dropped = self.timeline.prune_before(timestamp_ms)
        if dropped:
            del self._views[:dropped]
        return dropped

    # -- firing schedule ----------------------------------------------------------

    def due_windows(self, watermark_ms: int) -> List[Tuple[int, int, int]]:
        """Windows whose end has passed: ``(slot, start, end)`` tuples.

        Advances each query's fire index; a window is due when
        ``end - 1 <= watermark``.  Queries deleted before their window
        completes simply stop appearing here (their slot is gone).
        """
        due = []
        for slot in sorted(self._current):
            query = self._current[slot]
            while True:
                start, end = query.spec.windows_for(
                    query.created_at_ms, query.next_fire_index
                )
                if end - 1 > watermark_ms:
                    break
                due.append((slot, start, end))
                query.next_fire_index += 1
        return due
