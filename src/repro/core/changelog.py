"""Changelogs and changelog-sets (paper §2.1.2, Figure 4, Equation 1).

A *changelog* records one batch of query creations and deletions.  Time
between two consecutive changelogs is an *epoch* (the paper's "time
slot"): changelog *k* ends epoch *k-1* and starts epoch *k*.

Each changelog carries a *changelog-set*: a bitset in which a set bit
means "the query at this position remains unchanged" and an unset bit
means "this position was deleted or re-assigned".  Bitwise operations
between tuples tagged in different epochs are only valid for positions
whose meaning did not change in between, so operators AND the tuples'
query-sets with the changelog-set covering the epoch range.

:class:`ChangelogTable` maintains the Equation 1 dynamic program::

    CL[i][j] = 1                      if i == j
    CL[i][j] = CL[i-1][j] & CL[i]     if i > j
    CL[i][j] = CL[j][i]               otherwise

where ``CL[i]`` is changelog *i*'s own changelog-set, extended to the
width of epoch *i* (slots that did not exist yet count as unchanged —
the changelog that creates them clears the bit, see
:func:`repro.core.bitset.extend_mask`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

from repro.core.bitset import extend_mask
from repro.core.query import Query


@dataclass(frozen=True)
class QueryActivation:
    """One query creation inside a changelog."""

    query: Query
    slot: int
    created_at_ms: int


@dataclass(frozen=True)
class QueryDeactivation:
    """One query deletion inside a changelog."""

    query_id: str
    slot: int


@dataclass(frozen=True)
class Changelog:
    """A batch of query-set changes, woven into the streams as a marker.

    ``sequence`` is the epoch this changelog *starts* (>= 1); epoch 0 is
    the empty workload before the first changelog.
    """

    sequence: int
    timestamp_ms: int
    created: Tuple[QueryActivation, ...] = ()
    deleted: Tuple[QueryDeactivation, ...] = ()
    width_after: int = 0

    def __post_init__(self) -> None:
        if self.sequence < 1:
            raise ValueError(f"changelog sequence starts at 1, got {self.sequence}")

    @cached_property
    def changed_slots(self) -> Tuple[int, ...]:
        """Slots whose meaning changes at this changelog.

        Cached: the dataclass is frozen, so the slot set is computed once
        per changelog instead of on every marker delivery.
        """
        slots = {activation.slot for activation in self.created}
        slots.update(deactivation.slot for deactivation in self.deleted)
        return tuple(sorted(slots))

    @cached_property
    def changelog_set(self) -> int:
        """The changelog-set mask: bit set = position unchanged.

        Cached for the same reason as :attr:`changed_slots` — every
        shared operator reads this on the marker hot path, and the mask
        of a frozen changelog can never change.
        """
        mask = (1 << self.width_after) - 1
        for slot in self.changed_slots:
            mask &= ~(1 << slot)
        return mask

    @property
    def change_count(self) -> int:
        """Number of creations plus deletions in this batch."""
        return len(self.created) + len(self.deleted)

    def to_paper_string(self) -> str:
        """Render the changelog-set as in Figure 4b (slot 0 leftmost)."""
        mask = self.changelog_set
        return "".join(
            "1" if (mask >> slot) & 1 else "0" for slot in range(self.width_after)
        )


class ChangelogTable:
    """Per-epoch changelog-sets with the Equation 1 dynamic program.

    The table answers "which query positions kept their meaning between
    epoch *j* and epoch *i*" in amortised O(1) per query after an O(1)
    extension per new changelog, exactly the runtime structure of
    Figure 4c.
    """

    def __init__(self) -> None:
        self._changelogs: List[Changelog] = []
        self._widths: List[int] = [0]  # width of epoch 0
        # (i, j) -> mask, i >= j.  Filled by the DP on demand.
        self._memo: Dict[Tuple[int, int], int] = {}
        # (epoch, width) -> extended own mask.  The same changelog-set is
        # extended to the same target width every time a later epoch's
        # range crosses it, so the extension is memoized too.
        self._own_masks: Dict[Tuple[int, int], int] = {}

    # -- growth --------------------------------------------------------------

    def append(self, changelog: Changelog) -> None:
        """Register the changelog that starts epoch ``changelog.sequence``."""
        expected = len(self._changelogs) + 1
        if changelog.sequence != expected:
            raise ValueError(
                f"changelog out of order: expected sequence {expected}, "
                f"got {changelog.sequence}"
            )
        self._changelogs.append(changelog)
        self._widths.append(changelog.width_after)

    @property
    def current_epoch(self) -> int:
        """The newest epoch index."""
        return len(self._changelogs)

    def width_at(self, epoch: int) -> int:
        """Query-set width during ``epoch``."""
        return self._widths[epoch]

    def changelog_starting(self, epoch: int) -> Changelog:
        """The changelog that started ``epoch`` (epoch >= 1)."""
        if epoch < 1 or epoch > len(self._changelogs):
            raise IndexError(f"no changelog starts epoch {epoch}")
        return self._changelogs[epoch - 1]

    # -- Equation 1 ------------------------------------------------------------

    def cl_set(self, i: int, j: int) -> int:
        """Changelog-set of epoch ``i`` with respect to epoch ``j``.

        Bit *s* is set iff position *s* kept its meaning through every
        changelog in the half-open epoch range (min, max].  The result is
        sized to the width of the later epoch.
        """
        if i < j:
            i, j = j, i
        if i > self.current_epoch or j < 0:
            raise IndexError(
                f"epoch range ({j}, {i}] outside 0..{self.current_epoch}"
            )
        if i == j:
            return (1 << self._widths[i]) - 1
        cached = self._memo.get((i, j))
        if cached is not None:
            return cached
        width_i = self._widths[i]
        own = self._own_mask(i, width_i)
        previous = extend_mask(
            self.cl_set(i - 1, j), self._widths[i - 1], width_i
        )
        mask = previous & own
        self._memo[(i, j)] = mask
        return mask

    def _own_mask(self, epoch: int, width: int) -> int:
        """Changelog ``epoch``'s own set, extended to ``width`` (memoized)."""
        key = (epoch, width)
        cached = self._own_masks.get(key)
        if cached is None:
            changelog = self._changelogs[epoch - 1]
            cached = extend_mask(
                changelog.changelog_set, changelog.width_after, width
            )
            self._own_masks[key] = cached
        return cached

    def cl_set_brute_force(self, i: int, j: int) -> int:
        """Reference implementation: plain AND over the range (tests)."""
        if i < j:
            i, j = j, i
        width = self._widths[i]
        mask = (1 << width) - 1
        for epoch in range(j + 1, i + 1):
            changelog = self._changelogs[epoch - 1]
            mask &= extend_mask(
                changelog.changelog_set, changelog.width_after, width
            )
        return mask

    def shares_queries(self, i: int, j: int) -> bool:
        """True when the two epochs share at least one live position."""
        return self.cl_set(i, j) != 0

    # -- maintenance -------------------------------------------------------------

    def prune_memo_before(self, epoch: int) -> int:
        """Drop memo entries whose older endpoint precedes ``epoch``.

        Long experiments call this when slices older than the retention
        horizon are deleted; returns the number of entries dropped.
        """
        stale = [key for key in self._memo if key[1] < epoch]
        for key in stale:
            del self._memo[key]
        stale_own = [key for key in self._own_masks if key[0] < epoch]
        for key in stale_own:
            del self._own_masks[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._changelogs)
