"""Keyed-state repartitioning for elastic shard pools (ISSUE 6).

The process backend shards operator state by ``stable_hash(key) % N``.
Because control ops (query markers, watermarks, barriers) are broadcast
to every shard in FIFO order, the *control* portion of each operator's
state — slicers, changelog tables, specs, subscription bitsets — is
identical on every shard, while the *keyed* portion — per-slice
accumulator maps, per-slice tuple stores, session windows — is disjoint
across shards.  That factoring makes live migration a pure data-plane
operation:

* **control state** is replicated from any donor (we use shard 0);
* **keyed state** is the disjoint union of all donors, re-split by
  ``stable_hash(key) % M`` for the new shard count ``M``.

Empty slices are results-neutral (window firing skips empty stores, and
slicing decisions come from the replicated :class:`SliceManager`, not
from slice existence), so destinations only materialise slices that
receive at least one key — the same lazy shape a from-scratch M-shard
run would produce.

:func:`repartition_shard_states` operates on the per-shard payloads that
flow through the ``pack_shard_states``/``unpack_shard_states`` checkpoint
seam, so the same function serves runtime ``resize(n)`` migration and
restoring an N-shard checkpoint into an M-worker pool after recovery.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List

from repro.core.router import merge_channel_snapshots
from repro.core.shared_aggregation import materialize_agg_snapshot
from repro.core.slicing import SliceIndex
from repro.core.storage import make_store
from repro.minispe.runtime import stable_hash

__all__ = [
    "repartition_shard_states",
    "split_keyed_map",
    "merge_keyed_maps",
]


def split_keyed_map(mapping: Dict[Any, Any], new_count: int) -> List[Dict[Any, Any]]:
    """Split ``{key: value}`` into ``new_count`` maps by key hash."""
    if new_count < 1:
        raise ValueError(f"need at least one partition, got {new_count}")
    parts: List[Dict[Any, Any]] = [{} for _ in range(new_count)]
    for key, value in mapping.items():
        parts[stable_hash(key) % new_count][key] = value
    return parts


def merge_keyed_maps(parts: List[Dict[Any, Any]]) -> Dict[Any, Any]:
    """Disjoint union of keyed maps; overlapping keys are a bug."""
    merged: Dict[Any, Any] = {}
    for part in parts:
        for key, value in part.items():
            if key in merged:
                raise ValueError(f"key {key!r} present in multiple partitions")
            merged[key] = value
    return merged


def _owner(key: Any, shard_count: int) -> int:
    return stable_hash(key) % shard_count


def _split_agg_state(donors: List[dict], new_count: int) -> List[dict]:
    """Repartition one shared-aggregation operator's snapshots.

    Control keys (slicer, changelogs, specs, subscribed, session_specs)
    are replicated from donor 0; per-slice accumulator maps, session
    state, and arranged history are re-split by key.

    lsm-backend donors arrive as incremental manifests (segment paths,
    not values); they are materialised here — the splitter reads the
    listed segments once — and the outputs are materialised snapshots,
    which :meth:`SharedAggregationOperator.restore` re-spills when the
    receiving shard runs the lsm backend.
    """
    donors = [materialize_agg_snapshot(donor) for donor in donors]
    control = donors[0]
    horizon = max(d["slices"]._expiry_horizon_ms for d in donors)
    arrangement_parts = _split_arrangements(donors, new_count)
    outputs: List[dict] = []
    for dest in range(new_count):
        index = SliceIndex()
        index._expiry_horizon_ms = horizon
        for donor in donors:
            for slice_ in donor["slices"]:
                store = slice_.store
                if not store:
                    continue
                for slot, per_key in store.items():
                    for key, acc in per_key.items():
                        if _owner(key, new_count) != dest:
                            continue
                        target = index.get_or_create(
                            slice_.start, slice_.end, slice_.epoch
                        )
                        if target.store is None:
                            target.store = {}
                        target.store.setdefault(slot, {})[key] = acc
        session_state = {}
        for donor in donors:
            for (slot, key), state in donor["session_state"].items():
                if _owner(key, new_count) == dest:
                    session_state[(slot, key)] = state
        output = {
            "slicer": copy.deepcopy(control["slicer"]),
            "slices": index,
            "changelogs": copy.deepcopy(control["changelogs"]),
            "specs": copy.deepcopy(control["specs"]),
            "subscribed": control["subscribed"],
            "session_specs": copy.deepcopy(control["session_specs"]),
            "session_state": session_state,
        }
        if arrangement_parts is not None:
            output["arrangement"] = arrangement_parts[dest]
            output["arrangement_leases"] = dict(
                control.get("arrangement_leases", {})
            )
        outputs.append(output)
    return outputs


def _split_arrangements(donors: List[dict], new_count: int):
    """Split donors' arrangements by key; None when arrangements are off.

    Control (frontier, leases) replicates from donor 0; per-key runs and
    compacted prefixes — disjoint across donors — re-split by the same
    hash rule as the slice stores.  The work counters are per-shard
    totals and land summed on destination 0, conserving the fleet total.
    """
    if "arrangement" not in donors[0]:
        return None
    base = donors[0]["arrangement"]
    parts = base.split_by(lambda key: _owner(key, new_count), new_count)
    for donor in donors[1:]:
        donor_parts = donor["arrangement"].split_by(
            lambda key: _owner(key, new_count), new_count
        )
        for part, donor_part in zip(parts, donor_parts):
            part._runs.update(donor_part._runs)
            part._compacted.update(donor_part._compacted)
    total_inserts = sum(d["arrangement"].inserts for d in donors)
    total_compacted = sum(d["arrangement"].compacted_deltas for d in donors)
    total_compactions = sum(d["arrangement"].compactions for d in donors)
    for dest, part in enumerate(parts):
        part.inserts = total_inserts if dest == 0 else 0
        part.compacted_deltas = total_compacted if dest == 0 else 0
        part.compactions = total_compactions if dest == 0 else 0
    return parts


def _split_tuple_index(
    donors: List[Any], side: str, new_count: int, store_kind: Any
) -> List[SliceIndex]:
    """Re-split one side (left/right) of a join's slice indexes."""
    horizon = max(d[side]._expiry_horizon_ms for d in donors)
    outputs: List[SliceIndex] = []
    for dest in range(new_count):
        index = SliceIndex()
        index._expiry_horizon_ms = horizon
        for donor in donors:
            for slice_ in donor[side]:
                store = slice_.store
                if store is None:
                    continue
                for key in store.keys():
                    if _owner(key, new_count) != dest:
                        continue
                    items = store.items_for_key(key)
                    if not items:
                        continue
                    target = index.get_or_create(
                        slice_.start, slice_.end, slice_.epoch
                    )
                    if target.store is None:
                        target.store = make_store(store_kind)
                    for value, query_set in items:
                        target.store.add(key, value, query_set)
        outputs.append(index)
    return outputs


def _split_join_state(donors: List[dict], new_count: int) -> List[dict]:
    """Repartition one shared-join operator's snapshots.

    Tuple stores are keyed, so both sides re-split cleanly; the pair
    cache entries carry their keys, so the computation history splits
    too (a destination reusing a filtered entry yields exactly what a
    recompute over its filtered stores would).  Store layout follows
    donor 0 — the grouped/list switch is a performance heuristic with no
    result-visible effect.
    """
    control = donors[0]
    store_kind = control["store_kind"]
    left = _split_tuple_index(donors, "left", new_count, store_kind)
    right = _split_tuple_index(donors, "right", new_count, store_kind)
    outputs: List[dict] = []
    for dest in range(new_count):
        pair_cache: Dict[Any, Dict[int, List[Any]]] = {}
        for donor in donors:
            for pair_key, groups in donor["pair_cache"].items():
                dest_groups = pair_cache.setdefault(pair_key, {})
                for raw_qs, items in groups.items():
                    kept = [
                        item
                        for item in items
                        if _owner(item[0], new_count) == dest
                    ]
                    if kept:
                        dest_groups.setdefault(raw_qs, []).extend(kept)
        outputs.append(
            {
                "slicer": copy.deepcopy(control["slicer"]),
                "left": left[dest],
                "right": right[dest],
                "changelogs": copy.deepcopy(control["changelogs"]),
                "store_kind": store_kind,
                "pair_cache": pair_cache,
                "output_slots": control["output_slots"],
            }
        )
    return outputs


_SELECT_COUNTER_KEYS = (
    "evaluations",
    "cover_skips",
    "index_probes",
    "residual_checks",
)


def _split_select_state(donors: List[dict], new_count: int) -> List[dict]:
    """Control-replicated selection state with conserved work counters.

    The predicate table is identical on every shard (structure copies
    from donor 0), but the lifetime evaluation counters measure each
    shard's own work and merge by *sum* in ``sharing_summary()`` — so
    the donors' totals land on new shard 0 and the other destinations
    start at zero, keeping the merged total exactly what it was.

    States without counters (older exports, synthetic fixtures) are
    replicated verbatim.
    """
    if not any(
        "evaluations" in donor or "group_stats" in donor for donor in donors
    ):
        return [copy.deepcopy(donors[0]) for _ in range(new_count)]
    total_evaluations = sum(d.get("evaluations", 0) for d in donors)
    totals = {
        key: sum(d.get("group_stats", {}).get(key, 0) for d in donors)
        for key in _SELECT_COUNTER_KEYS
    }
    outputs: List[dict] = []
    for dest in range(new_count):
        state = copy.deepcopy(donors[0])
        if dest == 0:
            state["evaluations"] = total_evaluations
            state["group_stats"] = dict(totals)
        else:
            state["evaluations"] = 0
            state["group_stats"] = dict.fromkeys(_SELECT_COUNTER_KEYS, 0)
        outputs.append(state)
    return outputs


def _empty_channels() -> dict:
    return {"counts": {}, "results": {}}


def repartition_shard_states(
    states: List[dict], new_count: int, retain_results: bool = True
) -> List[dict]:
    """Re-split N per-shard state payloads into ``new_count`` payloads.

    ``states`` are the per-shard exports flowing through the checkpoint
    seam: ``{"runtime": {vertex: {instance: opstate}}, "channels": ...}``.
    Keyed operator state (``agg:``/``join:`` vertices) is split by
    ``stable_hash(key) % new_count``; control-replicated operators
    (``select:``/``router:`` vertices) are copied from shard 0; merged
    channel counts/results land on new shard 0 (the coordinator re-merges
    by summing counts and canonical-ordering results, so placement is
    arbitrary).
    """
    if not states:
        raise ValueError("no shard states to repartition")
    if new_count < 1:
        raise ValueError(f"need at least one shard, got {new_count}")
    donor_runtimes = [state["runtime"] for state in states]
    new_runtimes: List[Dict[str, Dict[int, Any]]] = [
        {} for _ in range(new_count)
    ]
    for vertex, per_index in donor_runtimes[0].items():
        for instance in per_index:
            if vertex.startswith("agg:"):
                split = _split_agg_state(
                    [runtime[vertex][instance] for runtime in donor_runtimes],
                    new_count,
                )
            elif vertex.startswith("join:"):
                split = _split_join_state(
                    [runtime[vertex][instance] for runtime in donor_runtimes],
                    new_count,
                )
            elif vertex.startswith("select:"):
                split = _split_select_state(
                    [runtime[vertex][instance] for runtime in donor_runtimes],
                    new_count,
                )
            else:
                donor = donor_runtimes[0][vertex][instance]
                split = [copy.deepcopy(donor) for _ in range(new_count)]
            for dest in range(new_count):
                new_runtimes[dest].setdefault(vertex, {})[instance] = split[
                    dest
                ]
    merged_channels = merge_channel_snapshots(
        [state["channels"] for state in states], retain_results
    )
    outputs: List[dict] = []
    for dest in range(new_count):
        outputs.append(
            {
                "runtime": new_runtimes[dest],
                "channels": merged_channels if dest == 0 else _empty_channels(),
            }
        )
    return outputs
