"""Per-slice tuple stores: grouped-by-query-set vs flat list (§3.1.4, §3.2.3).

Inside a slice, the shared join can store tuples in two layouts:

* **Grouped** (:class:`GroupedStore`) — tuples grouped by their query-set.
  Joining two slices can then skip whole group pairs whose query-sets
  share no query, which prunes work when few queries overlap.  The
  downside: the number of distinct query-sets grows exponentially with
  the number of concurrent queries, and once most groups hold a single
  tuple the grouping is pure overhead.
* **List** (:class:`ListStore`) — a flat per-key list of ``(value,
  query-set)`` pairs.  No group pruning, but no group bookkeeping either;
  the paper found this faster beyond roughly ten concurrent queries.

The switch heuristic (§3.1.4): monitor the mean group size; when it drops
below two — most groups hold a single tuple — switch to list storage.
The engine can also broadcast a storage marker so all slices convert at a
consistent point (§3.2.3); :func:`convert_store` performs the conversion.

Both stores are keyed by the join/partitioning key, so the equi-join only
ever pairs tuples with equal keys.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, List, Tuple


class StoreKind(enum.Enum):
    """Slice storage layouts."""

    GROUPED = "grouped"
    LIST = "list"


class TupleStore:
    """Common interface of the two slice layouts."""

    kind: StoreKind

    def add(self, key: Any, value: Any, query_set: int) -> None:
        """Insert one tuple (saved exactly once per slice — §3.2.2)."""
        raise NotImplementedError

    @property
    def tuple_count(self) -> int:
        """Number of tuples stored."""
        raise NotImplementedError

    @property
    def group_count(self) -> int:
        """Number of distinct query-set groups (1 per key-list for LIST)."""
        raise NotImplementedError

    def items_for_key(self, key: Any) -> List[Tuple[Any, int]]:
        """All ``(value, query_set)`` pairs stored under ``key``."""
        raise NotImplementedError

    def keys(self) -> Iterator[Any]:
        """All keys with at least one tuple."""
        raise NotImplementedError

    def mean_group_size(self) -> float:
        """Average tuples per query-set group (the switch heuristic input)."""
        groups = self.group_count
        if groups == 0:
            return 0.0
        return self.tuple_count / groups


class GroupedStore(TupleStore):
    """Tuples grouped by query-set, then by key."""

    kind = StoreKind.GROUPED

    def __init__(self) -> None:
        # query_set -> key -> [values]
        self._groups: Dict[int, Dict[Any, List[Any]]] = {}
        self._count = 0

    def add(self, key: Any, value: Any, query_set: int) -> None:
        per_key = self._groups.setdefault(query_set, {})
        per_key.setdefault(key, []).append(value)
        self._count += 1

    @property
    def tuple_count(self) -> int:
        return self._count

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def groups(self) -> Iterator[Tuple[int, Dict[Any, List[Any]]]]:
        """Iterate ``(query_set, {key: [values]})`` groups."""
        return iter(self._groups.items())

    def items_for_key(self, key: Any) -> List[Tuple[Any, int]]:
        items = []
        for query_set, per_key in self._groups.items():
            for value in per_key.get(key, ()):
                items.append((value, query_set))
        return items

    def keys(self) -> Iterator[Any]:
        seen = set()
        for per_key in self._groups.values():
            for key in per_key:
                if key not in seen:
                    seen.add(key)
                    yield key


class ListStore(TupleStore):
    """Flat per-key lists of ``(value, query_set)`` pairs."""

    kind = StoreKind.LIST

    def __init__(self) -> None:
        self._by_key: Dict[Any, List[Tuple[Any, int]]] = {}
        self._count = 0

    def add(self, key: Any, value: Any, query_set: int) -> None:
        self._by_key.setdefault(key, []).append((value, query_set))
        self._count += 1

    @property
    def tuple_count(self) -> int:
        return self._count

    @property
    def group_count(self) -> int:
        # A list store has no query-set grouping; treat each tuple as its
        # own group so the heuristic never flips back spuriously.
        return self._count

    def items_for_key(self, key: Any) -> List[Tuple[Any, int]]:
        return self._by_key.get(key, [])

    def keys(self) -> Iterator[Any]:
        return iter(self._by_key.keys())


def make_store(kind: StoreKind) -> TupleStore:
    """Create an empty store of the requested layout."""
    if kind is StoreKind.GROUPED:
        return GroupedStore()
    return ListStore()


def convert_store(store: TupleStore, kind: StoreKind) -> TupleStore:
    """Rebuild ``store`` in the target layout (no-op if already there).

    Used when the storage marker flips all slices of a shared join
    (§3.2.3): the operator converts every live slice and resumes.
    """
    if store.kind is kind:
        return store
    converted = make_store(kind)
    for key in list(store.keys()):
        for value, query_set in store.items_for_key(key):
            converted.add(key, value, query_set)
    return converted
