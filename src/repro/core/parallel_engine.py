"""AStream on the process-parallel sharded backend.

Each worker process runs a complete single-parallelism
:class:`~repro.core.engine.AStreamEngine` over the key range
``stable_hash(key) % workers == shard``.  Because every shared operator
in the engine keys its state by record key (selection is stateless per
record, aggregation groups by key, the join matches equal keys only),
hash-sharding the input by key partitions operator state exactly — the
shared-nothing decomposition STRETCH uses — while each shard keeps
serving *all* active queries for its keys, preserving inter-query
sharing the way Shared Arrangements shards shared indexes.

The coordinator-side :class:`ProcessAStreamEngine` subclasses
:class:`AStreamEngine` and swaps the execution backend through the
``_make_runtime`` seam: control flow (session, changelogs, input log,
checkpoint/recover) is inherited unchanged, because
:class:`~repro.minispe.parallel.ShardedRuntime` broadcasts control
elements to every shard in FIFO order and collects aligned snapshots.
Per-query results are merged deterministically (event time, then stable
value order), making outputs byte-identical to the in-process path.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.router import QueryOutput, merge_channel_snapshots
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.minispe.parallel import (
    DEFAULT_FRAME_RECORDS,
    DEFAULT_MAX_IN_FLIGHT,
    Op,
    ProcessShardPool,
    ShardProgram,
    ShardedRuntime,
)
from repro.minispe.record import Record, RecordBatch


class AStreamShardProgram(ShardProgram):
    """One shard's AStream engine, driven by coordinator ops.

    The worker engine is a plain in-process engine with
    ``parallelism=1`` and no input log (the coordinator owns logging and
    replay); ops address its runtime directly, so markers, watermarks,
    and barriers follow exactly the in-process code path within the
    shard.
    """

    def __init__(
        self, config: EngineConfig, shard_index: int, shard_count: int,
        deliver_sample_every: int = 1,
    ) -> None:
        worker_config = dataclasses.replace(
            config,
            parallelism=1,
            log_inputs=False,
            collect_sharing_stats=False,
        )
        self.shard_index = shard_index
        self.shard_count = shard_count
        # 0 disables delivery sampling entirely (no coordinator-side
        # QoS consumer): recording and shipping samples is pure
        # overhead then.
        self._sample_every = max(0, deliver_sample_every)
        self._deliver_seen = 0
        self._deliveries: List[Tuple[str, int]] = []
        self.engine = AStreamEngine(
            worker_config,
            cluster=SimulatedCluster(
                ClusterSpec(nodes=1, cores_per_node=256), mode="process"
            ),
            on_deliver=(
                self._record_delivery if self._sample_every else None
            ),
        )

    def _record_delivery(self, query_id: str, timestamp: int) -> None:
        self._deliver_seen += 1
        if self._deliver_seen % self._sample_every == 0:
            self._deliveries.append((query_id, timestamp))

    def apply(self, op: Op) -> Any:
        """Dispatch one wire op onto the shard engine.

        Asynchronous ops (``push``/``batch``) return None; synchronous
        ops (``snapshot``/``restore``/``collect``/``stats``/``drain``)
        return a picklable reply.
        """
        kind = op[0]
        if kind == "push":
            self.engine.runtime.push(op[1], op[2])
            return None
        if kind == "batch":
            records: List[Record] = op[2]
            element = records[0] if len(records) == 1 else RecordBatch(records)
            self.engine.runtime.push(op[1], element)
            return None
        if kind == "snapshot":
            return {
                "runtime": self.engine.runtime.completed_checkpoint(op[1]),
                "channels": self.engine.channels.snapshot(),
            }
        if kind == "restore":
            payload = op[1]
            self.engine.runtime.restore_checkpoint(payload["runtime"])
            self.engine.channels.restore(payload["channels"])
            return True
        if kind == "collect":
            return self.engine.channels.snapshot()
        if kind == "stats":
            return {
                "records_processed": self.engine.runtime.records_processed(),
                "component_stats": self.engine.component_stats(),
            }
        if kind == "drain":
            return True
        raise ValueError(f"unknown shard op {kind!r}")

    def take_deliveries(
        self, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """Drain up to ``limit`` sampled deliveries (all when None)."""
        if limit is None or limit >= len(self._deliveries):
            deliveries = self._deliveries
            self._deliveries = []
            return deliveries
        deliveries = self._deliveries[:limit]
        del self._deliveries[:limit]
        return deliveries

    def close(self) -> None:
        """Shut the shard engine down before the worker exits."""
        self.engine.shutdown()


class AStreamShardFactory:
    """Picklable factory building one :class:`AStreamShardProgram`.

    Instances are handed to worker processes; keeping the factory a
    small named class (config + sampling knob) keeps it picklable under
    any multiprocessing start method.
    """

    def __init__(
        self, config: EngineConfig, deliver_sample_every: int = 1
    ) -> None:
        self.config = config
        self.deliver_sample_every = deliver_sample_every

    def __call__(self, shard_index: int, shard_count: int) -> AStreamShardProgram:
        """Build the program for ``shard_index`` of ``shard_count``."""
        return AStreamShardProgram(
            self.config,
            shard_index,
            shard_count,
            deliver_sample_every=self.deliver_sample_every,
        )


class ProcessAStreamEngine(AStreamEngine):
    """AStream engine whose data path runs across worker processes.

    Drop-in replacement for :class:`AStreamEngine`: submit/tick/push/
    watermark/checkpoint/recover are inherited; only the execution
    backend differs.  Result reads trigger a deterministic merge of the
    per-shard channels, so :meth:`canonical_results` is byte-identical
    to the in-process engine's on the same input.

    ``kill_worker`` SIGKILLs one shard for chaos testing; recovery goes
    through the inherited :meth:`recover`, which replaces the whole pool
    via ``_make_runtime`` and replays the coordinator's input log.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        cluster: Optional[SimulatedCluster] = None,
        on_deliver: Optional[Callable[[str, int], None]] = None,
        workers: int = 2,
        frame_records: int = DEFAULT_FRAME_RECORDS,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        deliver_sample_every: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        # _make_runtime is invoked from the base constructor, so the
        # backend knobs must exist first.
        self.workers = workers
        self._frame_records = frame_records
        self._max_in_flight = max_in_flight
        self._deliver_sample_every = deliver_sample_every
        self._pool_on_deliver = on_deliver
        self._merged_at_op_count = -1
        self._shut_down = False
        self._final_component_stats: Optional[Dict[str, float]] = None
        super().__init__(
            config,
            cluster or SimulatedCluster(mode="process"),
            on_deliver=on_deliver,
        )

    # -- backend seam ------------------------------------------------------

    def _make_runtime(self) -> ShardedRuntime:
        """Spawn a fresh worker pool (terminating any previous one)."""
        previous = getattr(self, "runtime", None)
        if isinstance(previous, ShardedRuntime):
            previous.terminate()
        pool = ProcessShardPool(
            self.workers,
            AStreamShardFactory(
                self.config,
                deliver_sample_every=(
                    self._deliver_sample_every
                    if self._pool_on_deliver is not None
                    else 0
                ),
            ),
            on_deliver=self._pool_on_deliver,
            frame_records=self._frame_records,
            max_in_flight=self._max_in_flight,
        )
        self._merged_at_op_count = -1
        return ShardedRuntime(pool)

    # -- results (merged from shards) --------------------------------------

    def _refresh_results(self) -> None:
        """Re-merge shard channels if new ops were submitted since."""
        pool = self.runtime.pool
        if pool.op_count == self._merged_at_op_count:
            return
        snapshots = self.runtime.collect_channels()
        merged = merge_channel_snapshots(
            snapshots, self.config.retain_results
        )
        self.channels.restore(merged)
        self._merged_at_op_count = pool.op_count

    def results(self, query_id: str) -> List[QueryOutput]:
        """Merged results for one query, in canonical order.

        Unlike the in-process engine — whose per-channel order is
        arrival order — the process backend can only offer the
        deterministic merge order, which is the same for every worker
        count.  Compare backends via :meth:`canonical_results`.
        """
        self._refresh_results()
        return self.channels.results(query_id)

    def canonical_results(self, query_id: str) -> List[QueryOutput]:
        """Merged results in the deterministic cross-backend order."""
        self._refresh_results()
        return self.channels.canonical_results(query_id)

    def result_count(self, query_id: str) -> int:
        """Merged delivered-result count for one query."""
        self._refresh_results()
        return self.channels.count(query_id)

    def result_counts(self) -> Dict[str, int]:
        """Merged delivered-result count per query."""
        self._refresh_results()
        return super().result_counts()

    def drain(self) -> None:
        """Flush frame buffers and await every worker acknowledgement."""
        self.runtime.drain()

    def component_stats(self) -> Dict[str, float]:
        """Per-component counters summed across all shards."""
        if self._final_component_stats is not None:
            return dict(self._final_component_stats)
        totals: Dict[str, float] = {}
        for stats in self.runtime.collect_stats():
            for name, value in stats.get("component_stats", {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def shutdown(self) -> None:
        """Merge final results, cache stats, and stop the worker pool.

        Results and component stats stay readable afterwards (from the
        coordinator-side merged channels / the cached totals), so sweeps
        can shut each run's pool down eagerly instead of accumulating
        live worker processes.
        """
        if self._shut_down:
            return
        self._refresh_results()
        self._final_component_stats = self.component_stats()
        self._shut_down = True
        super().shutdown()

    # -- chaos -------------------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one shard worker (its un-checkpointed state is lost).

        Follow with :meth:`recover` to rebuild the pool from the latest
        checkpoint and the input-log suffix.
        """
        self.runtime.pool.kill(shard)

    @property
    def alive_workers(self) -> int:
        """Shard workers currently healthy."""
        return self.runtime.pool.alive_workers
