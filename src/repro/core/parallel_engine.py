"""AStream on the process-parallel sharded backend.

Each worker process runs a complete single-parallelism
:class:`~repro.core.engine.AStreamEngine` over the key range
``stable_hash(key) % workers == shard``.  Because every shared operator
in the engine keys its state by record key (selection is stateless per
record, aggregation groups by key, the join matches equal keys only),
hash-sharding the input by key partitions operator state exactly — the
shared-nothing decomposition STRETCH uses — while each shard keeps
serving *all* active queries for its keys, preserving inter-query
sharing the way Shared Arrangements shards shared indexes.

The coordinator-side :class:`ProcessAStreamEngine` subclasses
:class:`AStreamEngine` and swaps the execution backend through the
``_make_runtime`` seam: control flow (session, changelogs, input log,
checkpoint/recover) is inherited unchanged, because
:class:`~repro.minispe.parallel.ShardedRuntime` broadcasts control
elements to every shard in FIFO order and collects aligned snapshots.
Per-query results are merged deterministically (event time, then stable
value order), making outputs byte-identical to the in-process path.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.router import QueryOutput, merge_channel_snapshots
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.minispe.parallel import (
    ACK_OBS_EVENT_CAP,
    DEFAULT_FRAME_RECORDS,
    DEFAULT_MAX_IN_FLIGHT,
    Op,
    ProcessShardPool,
    ShardProgram,
    ShardWorkerError,
    ShardedRuntime,
)
from repro.minispe.record import CheckpointBarrier, Record, RecordBatch, Watermark
from repro.obs.cost import merge_cost_profiles
from repro.obs.registry import merge_snapshots, relabel_snapshot
from repro.obs.tracing import merge_trace_snapshots

logger = logging.getLogger("repro.core.parallel_engine")


class AStreamShardProgram(ShardProgram):
    """One shard's AStream engine, driven by coordinator ops.

    The worker engine is a plain in-process engine with
    ``parallelism=1`` and no input log (the coordinator owns logging and
    replay); ops address its runtime directly, so markers, watermarks,
    and barriers follow exactly the in-process code path within the
    shard.
    """

    def __init__(
        self, config: EngineConfig, shard_index: int, shard_count: int,
        deliver_sample_every: int = 1,
    ) -> None:
        worker_config = dataclasses.replace(
            config,
            parallelism=1,
            log_inputs=False,
            collect_sharing_stats=False,
        )
        self.shard_index = shard_index
        self.shard_count = shard_count
        # 0 disables delivery sampling entirely (no coordinator-side
        # QoS consumer): recording and shipping samples is pure
        # overhead then.
        self._sample_every = max(0, deliver_sample_every)
        self._deliver_seen = 0
        self._deliveries: List[Tuple[str, int]] = []
        self._wire_spans: List[dict] = []
        self.engine = AStreamEngine(
            worker_config,
            cluster=SimulatedCluster(
                ClusterSpec(nodes=1, cores_per_node=256), mode="process"
            ),
            on_deliver=(
                self._record_delivery if self._sample_every else None
            ),
        )
        # Live-migration exports use their own barrier id space
        # (negative, decreasing) so they can never collide with the
        # coordinator's positive checkpoint ids.
        self._export_id = 0
        # Satellite: per-worker profiling.  The coordinator fetches the
        # formatted report with a ("profile",) sync op before shutdown.
        self._profiler = None
        if worker_config.profile:
            import cProfile

            self._profiler = cProfile.Profile()
            self._profiler.enable()

    def _record_delivery(self, query_id: str, timestamp: int) -> None:
        self._deliver_seen += 1
        if self._deliver_seen % self._sample_every == 0:
            self._deliveries.append((query_id, timestamp))

    def apply(self, op: Op) -> Any:
        """Dispatch one wire op onto the shard engine.

        Asynchronous ops (``push``/``batch``) return None; synchronous
        ops (``snapshot``/``restore``/``collect``/``stats``/``drain``)
        return a picklable reply.
        """
        kind = op[0]
        if kind == "push":
            self.engine._run_push(op[1], op[2])
            return None
        if kind == "batch":
            records: List[Record] = op[2]
            trace = op[3] if len(op) > 3 else None
            if trace is not None:
                # Traced batch: keep it a RecordBatch (even singleton),
                # force-sample the worker tracer so the per-operator
                # breakdown lines up with the wire span, and stamp the
                # shard-local wall span as trace detail.
                element = RecordBatch(records, trace=trace)
                if self.engine.obs is not None:
                    self.engine.obs.tracer.force_next()
                started = time.monotonic_ns()
                self.engine._run_push(op[1], element)
                if self.engine.obs is not None:
                    self._wire_spans.append(
                        {
                            "id": trace[0],
                            "shard": self.shard_index,
                            "start_ns": started,
                            "span_ns": time.monotonic_ns() - started,
                            "records": len(records),
                        }
                    )
                return None
            element = records[0] if len(records) == 1 else RecordBatch(records)
            self.engine._run_push(op[1], element)
            return None
        if kind == "snapshot":
            return {
                "runtime": self.engine.runtime.completed_checkpoint(op[1]),
                "channels": self.engine.channels.snapshot(),
            }
        if kind == "restore":
            payload = op[1]
            self.engine.runtime.restore_checkpoint(payload["runtime"])
            self.engine.channels.restore(payload["channels"])
            return True
        if kind == "export":
            return self._export_state()
        if kind == "collect":
            return self.engine.channels.snapshot()
        if kind == "stats":
            return {
                "records_processed": self.engine.runtime.records_processed(),
                "component_stats": self.engine.component_stats(),
                "sharing_summary": self.engine.sharing_summary(),
                "state_summary": self.engine.state_summary(),
            }
        if kind == "drain":
            return True
        if kind == "cost":
            return self.engine._raw_cost_profile()
        if kind == "obs":
            # The telemetry payload itself rides the ack (take_obs with
            # unlimited=True, since this is a synchronous op); the reply
            # only confirms the shard processed the request.
            return True
        if kind == "profile":
            return self._profile_report()
        raise ValueError(f"unknown shard op {kind!r}")

    def _export_state(self) -> dict:
        """Aligned snapshot of this shard's live state, for migration.

        Pushes a barrier through every source of the shard's own engine
        (back-to-back within this synchronous op, satisfying the
        alignment rule), collects the aligned runtime snapshot, and
        returns it alongside the channel state — the same payload shape
        the checkpoint seam carries.
        """
        self._export_id -= 1
        export_id = self._export_id
        runtime = self.engine.runtime
        for stream in self.engine.config.streams:
            runtime.push(
                f"source:{stream}",
                CheckpointBarrier(timestamp=0, checkpoint_id=export_id),
            )
        state = runtime.completed_checkpoint(export_id)
        if state is None:
            raise RuntimeError("export barrier failed to align")
        # Exports are one-shot; drop the runtime's retained copy.
        runtime._completed_snapshots.pop(export_id, None)
        return {
            "runtime": state,
            "channels": self.engine.channels.snapshot(),
        }

    def _profile_report(self) -> str:
        """Formatted cProfile stats for this worker ("" if disabled)."""
        if self._profiler is None:
            return ""
        import io
        import pstats

        self._profiler.disable()
        try:
            buffer = io.StringIO()
            stats = pstats.Stats(self._profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(40)
            return buffer.getvalue()
        finally:
            self._profiler.enable()

    def take_obs(self, unlimited: bool) -> Optional[dict]:
        """Telemetry delta for the next ack (observe mode only).

        Events ship incrementally on every ack (capped on regular acks);
        the full registry + trace snapshot only rides unlimited
        (synchronous) acks, where large payloads cannot deadlock the
        pipe.
        """
        obs = self.engine.obs
        if obs is None:
            return None
        payload: dict = {}
        events = obs.events.take_new(
            limit=None if unlimited else ACK_OBS_EVENT_CAP
        )
        if events:
            payload["events"] = events
        if self._wire_spans:
            spans = self._wire_spans[:ACK_OBS_EVENT_CAP]
            del self._wire_spans[: len(spans)]
            payload["wire_spans"] = spans
        if unlimited:
            self.engine._refresh_obs_gauges()
            payload["registry"] = obs.registry.snapshot()
            payload["trace"] = obs.tracer.snapshot(drain_traces=True)
        return payload or None

    def take_deliveries(
        self, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """Drain up to ``limit`` sampled deliveries (all when None)."""
        if limit is None or limit >= len(self._deliveries):
            deliveries = self._deliveries
            self._deliveries = []
            return deliveries
        deliveries = self._deliveries[:limit]
        del self._deliveries[:limit]
        return deliveries

    def close(self) -> None:
        """Shut the shard engine down before the worker exits."""
        self.engine.shutdown()


class AStreamShardFactory:
    """Picklable factory building one :class:`AStreamShardProgram`.

    Instances are handed to worker processes; keeping the factory a
    small named class (config + sampling knob) keeps it picklable under
    any multiprocessing start method.
    """

    def __init__(
        self, config: EngineConfig, deliver_sample_every: int = 1
    ) -> None:
        self.config = config
        self.deliver_sample_every = deliver_sample_every

    def __call__(self, shard_index: int, shard_count: int) -> AStreamShardProgram:
        """Build the program for ``shard_index`` of ``shard_count``."""
        return AStreamShardProgram(
            self.config,
            shard_index,
            shard_count,
            deliver_sample_every=self.deliver_sample_every,
        )


class ProcessAStreamEngine(AStreamEngine):
    """AStream engine whose data path runs across worker processes.

    Drop-in replacement for :class:`AStreamEngine`: submit/tick/push/
    watermark/checkpoint/recover are inherited; only the execution
    backend differs.  Result reads trigger a deterministic merge of the
    per-shard channels, so :meth:`canonical_results` is byte-identical
    to the in-process engine's on the same input.

    ``kill_worker`` SIGKILLs one shard for chaos testing; recovery goes
    through the inherited :meth:`recover`, which replaces the whole pool
    via ``_make_runtime`` and replays the coordinator's input log.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        cluster: Optional[SimulatedCluster] = None,
        on_deliver: Optional[Callable[[str, int], None]] = None,
        workers: int = 2,
        frame_records: int = DEFAULT_FRAME_RECORDS,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        deliver_sample_every: int = 1,
        heartbeat_interval_s: Optional[float] = None,
        ack_deadline_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        # _make_runtime is invoked from the base constructor, so the
        # backend knobs must exist first.
        self.workers = workers
        self._frame_records = frame_records
        self._max_in_flight = max_in_flight
        self._deliver_sample_every = deliver_sample_every
        self._pool_on_deliver = on_deliver
        self.heartbeat_interval_s = heartbeat_interval_s
        self.ack_deadline_s = ack_deadline_s
        self._migrations_total = 0
        self._migration_steps_total = 0
        self._worker_failures_by_reason: Dict[str, int] = {}
        self.migration_pauses_ms: List[float] = []
        """Recent ingest-pause durations (export + per-shard restore
        steps), newest last, capped — the resize-latency gate's input."""
        self._merged_at_op_count = -1
        self._shut_down = False
        self._final_component_stats: Optional[Dict[str, float]] = None
        self._final_sharing_summary: Optional[Dict[str, Dict]] = None
        # Observe mode: latest full per-shard telemetry (replace
        # semantics — registries/stage totals are cumulative on the
        # worker) plus incrementally absorbed events and drained traces.
        self._shard_registry: Dict[int, dict] = {}
        self._shard_trace: Dict[int, dict] = {}
        self._worker_profiles: Dict[int, str] = {}
        self._final_obs_snapshot: Optional[Dict] = None
        self._final_cost_profile: Optional[Dict] = None
        self._wire_spans: List[dict] = []
        super().__init__(
            config,
            cluster or SimulatedCluster(mode="process"),
            on_deliver=on_deliver,
        )

    # -- backend seam ------------------------------------------------------

    def _make_runtime(self) -> ShardedRuntime:
        """Spawn a fresh worker pool (terminating any previous one)."""
        previous = getattr(self, "runtime", None)
        if isinstance(previous, ShardedRuntime):
            previous.terminate()
        factory_config = self.config
        if self.config.state_backend == "lsm":
            # Workers spill under the coordinator's state root (each
            # store takes a unique subdirectory), so checkpoint
            # manifests reference paths that survive worker death and
            # the coordinator can clean the whole tree at shutdown.
            factory_config = dataclasses.replace(
                self.config, state_dir=self._state_root
            )
        pool = ProcessShardPool(
            self.workers,
            AStreamShardFactory(
                factory_config,
                deliver_sample_every=(
                    self._deliver_sample_every
                    if self._pool_on_deliver is not None
                    else 0
                ),
            ),
            on_deliver=self._pool_on_deliver,
            frame_records=self._frame_records,
            max_in_flight=self._max_in_flight,
            on_obs=self._on_shard_obs if self.obs is not None else None,
            on_stall=self._on_stall if self.obs is not None else None,
            heartbeat_interval_s=self.heartbeat_interval_s,
            ack_deadline_s=self.ack_deadline_s,
        )
        self._merged_at_op_count = -1
        return ShardedRuntime(pool, repartitioner=self._repartition)

    def _repartition(self, states: List[Any], new_count: int) -> List[Any]:
        """Key-aware re-split hook injected into the sharded runtime."""
        from repro.core.migration import repartition_shard_states

        return repartition_shard_states(
            states, new_count, retain_results=self.config.retain_results
        )

    # -- cross-worker telemetry --------------------------------------------

    def _on_shard_obs(self, shard: int, payload: dict) -> None:
        """Fold one worker's piggybacked telemetry into the coordinator.

        Events are incremental (re-sequenced into the coordinator log
        with a ``shard`` label); registry and stage totals are cumulative
        worker-side, so the latest shipment replaces the previous one;
        per-tuple trace entries are drained worker-side and accumulate
        here.
        """
        events = payload.get("events")
        if events:
            self.obs.events.absorb(events, shard=shard)
        registry = payload.get("registry")
        if registry is not None:
            self._shard_registry[shard] = registry
        wire_spans = payload.get("wire_spans")
        if wire_spans:
            self._wire_spans.extend(wire_spans)
            del self._wire_spans[:-512]
        trace = payload.get("trace")
        if trace is not None:
            previous = self._shard_trace.get(shard)
            if previous is None:
                self._shard_trace[shard] = trace
            else:
                previous["stage_totals"] = trace["stage_totals"]
                previous["e2e_count"] = trace["e2e_count"]
                previous["e2e_total_ns"] = trace["e2e_total_ns"]
                previous["traces"] = (
                    previous.get("traces", []) + trace.get("traces", [])
                )[:512]

    def _on_stall(self, shard: int, waited_ns: int) -> None:
        """A frame send blocked on the credit window (backpressure)."""
        waited_ms = waited_ns / 1e6
        self.obs.registry.counter(
            "backpressure_stalls", shard=str(shard)
        ).inc()
        self.obs.registry.histogram("backpressure_stall_ms").record(waited_ms)
        self.obs.events.emit(
            "backpressure_stall", shard=shard, waited_ms=waited_ms
        )

    # -- results (merged from shards) --------------------------------------

    def _refresh_results(self) -> None:
        """Re-merge shard channels if new ops were submitted since."""
        pool = self.runtime.pool
        if pool.op_count == self._merged_at_op_count:
            return
        snapshots = self.runtime.collect_channels()
        merged = merge_channel_snapshots(
            snapshots, self.config.retain_results
        )
        self.channels.restore(merged)
        self._merged_at_op_count = pool.op_count

    def results(self, query_id: str) -> List[QueryOutput]:
        """Merged results for one query, in canonical order.

        Unlike the in-process engine — whose per-channel order is
        arrival order — the process backend can only offer the
        deterministic merge order, which is the same for every worker
        count.  Compare backends via :meth:`canonical_results`.
        """
        self._refresh_results()
        return self.channels.results(query_id)

    def canonical_results(self, query_id: str) -> List[QueryOutput]:
        """Merged results in the deterministic cross-backend order."""
        self._refresh_results()
        return self.channels.canonical_results(query_id)

    def result_count(self, query_id: str) -> int:
        """Merged delivered-result count for one query."""
        self._refresh_results()
        return self.channels.count(query_id)

    def result_counts(self) -> Dict[str, int]:
        """Merged delivered-result count per query."""
        self._refresh_results()
        return super().result_counts()

    def drain(self) -> None:
        """Flush frame buffers and await every worker acknowledgement."""
        self.runtime.drain()

    def component_stats(self) -> Dict[str, float]:
        """Per-component counters summed across all shards."""
        if self._final_component_stats is not None:
            return dict(self._final_component_stats)
        totals: Dict[str, float] = {}
        for stats in self.runtime.collect_stats():
            for name, value in stats.get("component_stats", {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    _SHARING_SHAPE_KEYS = (
        "groups",
        "grouped_slots",
        "direct_predicates",
        "folded_unsatisfiable_slots",
    )

    def sharing_summary(self) -> Dict[str, Dict]:
        """Semantic-overlap optimizer summary merged across shards.

        Every shard compiles the identical slot table, so plan *shape*
        (group/slot counts) is replicated and merges with ``max``;
        evaluation counters measure per-shard work and merge with
        ``sum`` — the same convention the obs gauges use.
        """
        if self._final_sharing_summary is not None:
            return {
                stream: dict(entry)
                for stream, entry in self._final_sharing_summary.items()
            }
        merged: Dict[str, Dict] = {}
        for stats in self.runtime.collect_stats():
            for stream, entry in stats.get("sharing_summary", {}).items():
                into = merged.setdefault(stream, dict.fromkeys(entry, 0))
                for key, value in entry.items():
                    if key in self._SHARING_SHAPE_KEYS:
                        into[key] = max(into[key], value)
                    else:
                        into[key] += value
        return merged

    def state_summary(self) -> Dict[str, Any]:
        """Storage-plane rollup summed across all shard engines.

        The coordinator holds no aggregation operators of its own; the
        gauges (spilled bytes, arrangement sizes, backfill counters) are
        additive per-shard work and merge with ``sum``, while the
        backend/arrangements flags are configuration facts replicated on
        every shard.
        """
        merged: Dict[str, Any] = {
            "state_backend": self.config.state_backend,
            "shared_arrangements": self.config.shared_arrangements,
        }
        for stats in self.runtime.collect_stats():
            for key, value in stats.get("state_summary", {}).items():
                if key in ("state_backend", "shared_arrangements"):
                    continue
                merged[key] = merged.get(key, 0) + value
        return merged

    def cost_profile(self) -> Dict:
        """Per-query cost weights merged across all shard engines.

        Workers ship *raw* (slot-mask-keyed) profiles — their session
        registries are never driven, so only the coordinator can map
        slots to query ids.  The coordinator merges them with
        :func:`repro.obs.cost.merge_cost_profiles` (counters sum, keyed
        by stream + member set — the sharing_summary() convention) and
        resolves the masks against its own registry.
        """
        if self._final_cost_profile is not None:
            return self._final_cost_profile
        merged = merge_cost_profiles(self.runtime.pool.sync(("cost",)))
        return self._resolve_cost_profile(merged)

    def take_wire_spans(self) -> List[dict]:
        """Drain per-shard wall spans of traced batches (observe mode:
        they ride the ack piggybacks as wire-trace detail)."""
        spans = self._wire_spans
        self._wire_spans = []
        return spans

    # -- telemetry (merged from shards) -------------------------------------

    def _pull_shard_obs(self) -> None:
        """Force fresh unlimited acks carrying every shard's snapshot."""
        self.runtime.pool.sync(("obs",))

    def obs_snapshot(self) -> Dict:
        """Cluster-wide telemetry: coordinator + every shard, merged.

        The combined registry keeps per-shard addressability (worker
        entries gain a ``shard`` label) alongside the coordinator's
        control-plane metrics, and adds ``shard_records{shard=N}`` /
        ``straggler_skew`` gauges computed from per-shard source input
        counts.  Trace snapshots merge across shards, so the breakdown
        covers work wherever it ran.
        """
        if self.obs is None:
            raise RuntimeError("telemetry needs EngineConfig(observe=True)")
        if self._shut_down:
            if self._final_obs_snapshot is None:
                raise RuntimeError("engine shut down before a snapshot")
            return self._final_obs_snapshot
        self._pull_shard_obs()
        self._refresh_obs_gauges()
        # The selection stage sees every input record routed to its
        # shard exactly once per stream, so per-shard select input
        # counts measure the key-partitioning balance.
        shard_records = {
            shard: sum(
                entry["value"]
                for entry in snapshot.values()
                if entry["name"] == "operator_records_in"
                and entry["labels"].get("operator", "").startswith("select:")
            )
            for shard, snapshot in self._shard_registry.items()
        }
        if shard_records:
            for shard, count in shard_records.items():
                self.obs.registry.gauge(
                    "shard_records", shard=str(shard)
                ).set(count)
            mean = sum(shard_records.values()) / len(shard_records)
            self.obs.registry.gauge("straggler_skew").set(
                max(shard_records.values()) / mean if mean else 0.0
            )
        combined = merge_snapshots(
            [self.obs.registry.snapshot()]
            + [
                relabel_snapshot(snapshot, shard=str(shard))
                for shard, snapshot in sorted(self._shard_registry.items())
            ]
        )
        trace = merge_trace_snapshots(
            [self.obs.tracer.snapshot()]
            + [s for _, s in sorted(self._shard_trace.items())]
        )
        return {
            "registry": combined,
            "trace": trace,
            "events_total": self.obs.events.total_emitted,
            "events_dropped": self.obs.events.dropped,
            "shards": {
                str(shard): snapshot
                for shard, snapshot in sorted(self._shard_registry.items())
            },
        }

    def worker_profiles(self) -> Dict[int, str]:
        """Per-worker cProfile reports (``EngineConfig(profile=True)``).

        Fetched live from the workers, or from the cache captured at
        :meth:`shutdown`.
        """
        if self._shut_down:
            return dict(self._worker_profiles)
        reports = {}
        for shard, report in enumerate(self.runtime.pool.sync(("profile",))):
            if report:
                reports[shard] = report
        self._worker_profiles = dict(reports)
        return reports

    def shutdown(self) -> None:
        """Merge final results, cache stats, and stop the worker pool.

        Results, component stats, the final telemetry snapshot, and the
        worker profiles stay readable afterwards (from coordinator-side
        caches), so sweeps can shut each run's pool down eagerly instead
        of accumulating live worker processes.
        """
        if self._shut_down:
            return
        self._refresh_results()
        self._final_component_stats = self.component_stats()
        self._final_sharing_summary = self.sharing_summary()
        try:
            self._final_cost_profile = self.cost_profile()
        except ShardWorkerError:
            logger.warning("final cost-profile collection failed", exc_info=True)
        if self.config.profile:
            try:
                self.worker_profiles()
            except ShardWorkerError:
                logger.warning("worker profile collection failed", exc_info=True)
        if self.obs is not None:
            try:
                self._final_obs_snapshot = self.obs_snapshot()
            except ShardWorkerError:
                logger.warning("final telemetry collection failed", exc_info=True)
        self._shut_down = True
        super().shutdown()

    # -- elasticity (ISSUE 6) ----------------------------------------------

    MIGRATION_PAUSE_WINDOW = 256
    """Pause samples retained for the resize-latency gate."""

    def _record_pause(self, started: float) -> None:
        paused_ms = (time.perf_counter() - started) * 1e3
        self.migration_pauses_ms.append(paused_ms)
        del self.migration_pauses_ms[: -self.MIGRATION_PAUSE_WINDOW]
        if self.obs is not None:
            self.obs.registry.histogram("migration_pause_ms").record(paused_ms)

    @property
    def migration_active(self) -> bool:
        """True while a resize migration has shards awaiting state."""
        runtime = self.runtime
        return isinstance(runtime, ShardedRuntime) and runtime.migration_active

    def begin_resize(self, workers: int) -> None:
        """Start a live resize to ``workers`` shards.

        Exports and re-splits all shard state and swaps the worker set;
        per-shard restores happen incrementally via
        :meth:`migration_step` (or implicitly on the next synchronous
        engine operation).  Ingest continues throughout — ops for
        not-yet-restored shards are buffered and replayed in order.
        Watermark progress is re-injected ahead of the replay, exactly
        as checkpoint recovery does.
        """
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if workers == self.workers and not self.migration_active:
            return
        started = time.perf_counter()
        prefix = [
            (f"source:{stream}", Watermark(timestamp=watermark_ms))
            for stream, watermark_ms in sorted(self._stream_watermarks.items())
        ]
        self.runtime.begin_resize(workers, prefix)
        self.workers = workers
        self._migrations_total += 1
        if self.obs is not None:
            self.obs.registry.counter("migrations").inc()
            self.obs.events.emit("resize_begun", workers=workers)
        self._record_pause(started)

    def migration_step(self) -> bool:
        """Restore one pending shard; True when a shard was migrated."""
        runtime = self.runtime
        if not isinstance(runtime, ShardedRuntime) or not runtime.migration_active:
            return False
        started = time.perf_counter()
        stepped = runtime.migration_step()
        if stepped:
            self._migration_steps_total += 1
            self._record_pause(started)
        return stepped

    def resize(self, workers: int) -> None:
        """Blocking resize: begin the migration and drive it to the end."""
        self.begin_resize(workers)
        while self.migration_step():
            pass

    def poll_worker_failures(self) -> List[Any]:
        """Drain proactively detected worker failures (liveness probes).

        Requires ``heartbeat_interval_s``; without it the list is always
        empty and death is only discovered on the next send.
        """
        failures = self.runtime.pool.poll_failures()
        for failure in failures:
            self._worker_failures_by_reason[failure.reason] = (
                self._worker_failures_by_reason.get(failure.reason, 0) + 1
            )
            if self.obs is not None:
                self.obs.registry.counter(
                    "worker_failures", reason=failure.reason
                ).inc()
                self.obs.events.emit(
                    "worker_failure",
                    shard=failure.shard,
                    reason=failure.reason,
                )
        return failures

    def migration_counters(self) -> Dict[str, Any]:
        """Cumulative elasticity counters (survive pool replacement)."""
        runtime = self.runtime
        buffered = (
            runtime.migration_records_buffered
            if isinstance(runtime, ShardedRuntime)
            else 0
        )
        return {
            "migrations": self._migrations_total,
            "migration_steps": self._migration_steps_total,
            "migration_active": self.migration_active,
            "migration_records_buffered": buffered,
            "worker_failures": sum(
                self._worker_failures_by_reason.values()
            ),
            "worker_failures_by_reason": dict(
                self._worker_failures_by_reason
            ),
        }

    def straggler_skew_estimate(self) -> Optional[float]:
        """max/mean shard input from the *cached* per-shard telemetry.

        Reuses whatever registry snapshots the unlimited-ack stream has
        already carried back — no pool round-trip — so the autoscaler
        can consult it every tick.  None without telemetry data.
        """
        if not self._shard_registry:
            return None
        shard_records = {
            shard: sum(
                entry["value"]
                for entry in snapshot.values()
                if entry["name"] == "operator_records_in"
                and entry["labels"].get("operator", "").startswith("select:")
            )
            for shard, snapshot in self._shard_registry.items()
        }
        mean = sum(shard_records.values()) / len(shard_records)
        if not mean:
            return None
        return max(shard_records.values()) / mean

    # -- chaos -------------------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one shard worker (its un-checkpointed state is lost).

        Follow with :meth:`recover` to rebuild the pool from the latest
        checkpoint and the input-log suffix.
        """
        self.runtime.pool.kill(shard)

    @property
    def alive_workers(self) -> int:
        """Shard workers currently healthy."""
        return self.runtime.pool.alive_workers
