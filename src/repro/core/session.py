"""The shared session: batching ad-hoc query requests into changelogs (§3.1.1).

The shared session is AStream's client module.  User requests (query
creations and deletions) are buffered and turned into a single
:class:`~repro.core.changelog.Changelog` when either

* ``batch_size`` requests have accumulated, or
* ``timeout_ms`` of (virtual) time passed since the first pending request.

If there is no user request, no changelog is generated.  The paper's
experiments configure ``batch_size=100`` and ``timeout_ms=1000`` (§4.4);
Figure 11's counter-intuitive result — 100 q/s with 1000 queries deploys
*faster* per query than 1 q/s with 20 — falls out of this batching: the
former needs only 10 changelog generations, the latter 20.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.changelog import (
    Changelog,
    QueryActivation,
    QueryDeactivation,
)
from repro.core.query import Query
from repro.core.registry import QueryRegistry


class RequestKind(enum.Enum):
    """User request types."""

    CREATE = "create"
    DELETE = "delete"


@dataclass
class QueryRequest:
    """One user request, timestamped for deployment-latency accounting."""

    kind: RequestKind
    enqueued_at_ms: int
    query: Optional[Query] = None
    query_id: Optional[str] = None
    changelog_sequence: Optional[int] = None
    """Filled when the request is flushed into a changelog."""

    def __post_init__(self) -> None:
        if self.kind is RequestKind.CREATE and self.query is None:
            raise ValueError("CREATE requests need a query")
        if self.kind is RequestKind.DELETE and self.query_id is None:
            raise ValueError("DELETE requests need a query_id")

    @property
    def target_id(self) -> str:
        """The query id this request refers to."""
        if self.kind is RequestKind.CREATE:
            return self.query.query_id
        return self.query_id


class SharedSession:
    """Buffers user requests and generates changelogs.

    The session owns the :class:`QueryRegistry` — slot assignment happens
    at flush time, in request arrival order, so a slot freed by a deletion
    earlier in the batch is immediately reusable by a later creation
    (Figure 4a at T5: Q3's slot goes to Q6; Q7 gets a fresh position).
    """

    def __init__(
        self,
        registry: Optional[QueryRegistry] = None,
        batch_size: int = 100,
        timeout_ms: int = 1_000,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        self.registry = registry or QueryRegistry()
        self.batch_size = batch_size
        self.timeout_ms = timeout_ms
        self._pending: List[QueryRequest] = []
        self._first_pending_at_ms: Optional[int] = None
        self._next_sequence = 1
        self.flushed_changelogs: List[Changelog] = []

    # -- request intake ----------------------------------------------------

    def submit(self, query: Query, now_ms: int) -> QueryRequest:
        """Enqueue a query-creation request."""
        request = QueryRequest(RequestKind.CREATE, now_ms, query=query)
        self._enqueue(request, now_ms)
        return request

    def stop(self, query_id: str, now_ms: int) -> QueryRequest:
        """Enqueue a query-deletion request."""
        request = QueryRequest(RequestKind.DELETE, now_ms, query_id=query_id)
        self._enqueue(request, now_ms)
        return request

    def _enqueue(self, request: QueryRequest, now_ms: int) -> None:
        self._pending.append(request)
        if self._first_pending_at_ms is None:
            self._first_pending_at_ms = now_ms

    @property
    def pending_count(self) -> int:
        """Requests waiting for the next changelog."""
        return len(self._pending)

    # -- flushing ------------------------------------------------------------

    def should_flush(self, now_ms: int) -> bool:
        """True when batch-size or timeout demands a changelog now."""
        if not self._pending:
            return False
        if len(self._pending) >= self.batch_size:
            return True
        return now_ms - self._first_pending_at_ms >= self.timeout_ms

    def maybe_flush(self, now_ms: int) -> Optional[Changelog]:
        """Flush if due; return the changelog or None."""
        if not self.should_flush(now_ms):
            return None
        return self.flush(now_ms)

    def flush(self, now_ms: int) -> Optional[Changelog]:
        """Force a changelog from all pending requests (None if idle)."""
        if not self._pending:
            return None
        batch = self._pending[: self.batch_size]
        self._pending = self._pending[self.batch_size :]
        sequence = self._next_sequence
        self._next_sequence += 1

        created: List[QueryActivation] = []
        deleted: List[QueryDeactivation] = []
        for request in batch:
            request.changelog_sequence = sequence
            if request.kind is RequestKind.CREATE:
                entry = self.registry.register(
                    request.query, created_at_ms=now_ms, created_epoch=sequence
                )
                created.append(
                    QueryActivation(
                        query=entry.query,
                        slot=entry.slot,
                        created_at_ms=now_ms,
                    )
                )
            else:
                entry = self.registry.unregister(request.query_id)
                deleted.append(
                    QueryDeactivation(query_id=request.target_id, slot=entry.slot)
                )

        changelog = Changelog(
            sequence=sequence,
            timestamp_ms=now_ms,
            created=tuple(created),
            deleted=tuple(deleted),
            width_after=self.registry.width,
        )
        self.flushed_changelogs.append(changelog)
        if self._pending:
            # Remaining requests start a fresh batch timed from now.
            self._first_pending_at_ms = now_ms
        else:
            self._first_pending_at_ms = None
        return changelog

    def drain(self, now_ms: int) -> List[Changelog]:
        """Flush repeatedly until no request is pending."""
        changelogs = []
        while self._pending:
            changelog = self.flush(now_ms)
            if changelog is None:
                break
            changelogs.append(changelog)
        return changelogs
