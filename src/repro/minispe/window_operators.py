"""Per-query (non-shared) windowed operators.

These are the substrate's standard window operators — the ones a
query-at-a-time engine deploys once *per query*.  They implement the same
semantics as AStream's shared operators but without slicing, query-sets,
or cross-query sharing, so they double as the *reference implementation*
the property tests compare the shared operators against.

Outputs carry the timestamp ``window.max_timestamp()`` (the Flink
convention), so downstream windows and latency measurements see the
event-time at which the result became complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.minispe.operators import Operator, TwoInputOperator
from repro.minispe.record import Record, Watermark
from repro.minispe.state import KeyedState
from repro.minispe.windows import (
    EventTimeTrigger,
    Trigger,
    Window,
    WindowAssigner,
    merge_session_windows,
)


@dataclass(frozen=True)
class WindowResult:
    """One fired window's output for one key."""

    key: Any
    window: Window
    value: Any


class WindowedAggregateOperator(Operator):
    """Keyed windowed aggregation (e.g. ``SUM(field) GROUP BY key``).

    ``init`` produces a fresh accumulator, ``add(acc, value)`` folds one
    tuple in, ``merge(acc, acc)`` combines two accumulators (needed for
    session-window merges), and ``finish(acc)`` extracts the result.
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        init: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Optional[Callable[[Any, Any], Any]] = None,
        finish: Callable[[Any], Any] = lambda acc: acc,
        trigger: Optional[Trigger] = None,
        name: str = "window_agg",
        state: Optional[KeyedState] = None,
    ) -> None:
        super().__init__(name)
        self._assigner = assigner
        self._init = init
        self._add = add
        self._merge = merge
        self._finish = finish
        self._trigger = trigger or EventTimeTrigger()
        if assigner.is_session() and merge is None:
            raise ValueError("session windows require a merge function")
        # (key, window) -> accumulator; for sessions windows get merged.
        # Backed by KeyedState so the physical store is pluggable (pass
        # state=KeyedState(store=make_state_store("lsm")) to spill).
        self._accumulators: KeyedState = state or KeyedState()

    def process(self, record: Record) -> None:
        for window in self._assigner.assign(record.timestamp):
            if self._assigner.is_session():
                window = self._merge_session(record.key, window)
            state_key = (record.key, window)
            acc = self._accumulators.peek(state_key)
            if acc is None:
                acc = self._init()
            self._accumulators.put(state_key, self._add(acc, record.value))
            if self._trigger.on_element(record, window):
                self._fire(state_key)

    def process_batch(self, records: List[Record]) -> None:
        assigner_assign = self._assigner.assign
        is_session = self._assigner.is_session()
        peek = self._accumulators.peek
        put = self._accumulators.put
        init = self._init
        add = self._add
        on_element = self._trigger.on_element
        for record in records:
            key = record.key
            value = record.value
            for window in assigner_assign(record.timestamp):
                if is_session:
                    window = self._merge_session(key, window)
                state_key = (key, window)
                acc = peek(state_key)
                if acc is None:
                    acc = init()
                put(state_key, add(acc, value))
                if on_element(record, window):
                    self._fire(state_key)

    def _merge_session(self, key: Any, proto: Window) -> Window:
        """Merge ``proto`` with this key's overlapping session windows."""
        overlapping = [
            window
            for (existing_key, window) in self._accumulators.keys()
            if existing_key == key and window.intersects(proto)
        ]
        if not overlapping:
            return proto
        merged = merge_session_windows(overlapping + [proto])[0]
        acc = self._init()
        for window in overlapping:
            acc = self._merge(
                acc, self._accumulators.peek((key, window))
            )
            self._accumulators.remove((key, window))
        self._accumulators.put((key, merged), acc)
        return merged

    def on_watermark(self, watermark: Watermark) -> None:
        ready = [
            state_key
            for state_key in self._accumulators.keys()
            if self._trigger.on_watermark(watermark, state_key[1])
        ]
        # Deterministic emission order: by window, then key representation.
        for state_key in sorted(ready, key=lambda sk: (sk[1], repr(sk[0]))):
            self._fire(state_key)
        self.output(watermark)

    def _fire(self, state_key: Tuple[Any, Window]) -> None:
        key, window = state_key
        acc = self._accumulators.peek(state_key)
        if acc is None:
            return
        self._accumulators.remove(state_key)
        self.output(
            Record(
                timestamp=window.max_timestamp(),
                value=WindowResult(key=key, window=window, value=self._finish(acc)),
                key=key,
            )
        )

    def snapshot(self) -> Any:
        return self._accumulators.snapshot()

    def restore(self, snapshot: Any) -> None:
        self._accumulators.restore(dict(snapshot))

    def pending_windows(self) -> int:
        """Number of (key, window) accumulators currently buffered."""
        return len(self._accumulators)


@dataclass(frozen=True)
class JoinResult:
    """One joined pair emitted by a windowed join."""

    key: Any
    window: Window
    left: Any
    right: Any


class WindowedJoinOperator(TwoInputOperator):
    """Keyed windowed equi-join (``A.KEY = B.KEY`` within a window).

    Both inputs are buffered per ``(key, window)``; when the watermark
    closes a window the per-key cross product is emitted.  Session windows
    are not supported for joins (the paper's join template, Figure 7, uses
    RANGE/SLICE windows).
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        trigger: Optional[Trigger] = None,
        result_fn: Callable[[Any, Any, Any, Window], Any] = None,
        name: str = "window_join",
    ) -> None:
        super().__init__(name)
        if assigner.is_session():
            raise ValueError("windowed join does not support session windows")
        self._assigner = assigner
        self._trigger = trigger or EventTimeTrigger()
        self._forwarded_watermark_ms = -1
        self._result_fn = result_fn or (
            lambda key, left, right, window: JoinResult(
                key=key, window=window, left=left, right=right
            )
        )
        # window -> key -> ([left values], [right values])
        self._buffers: Dict[Window, Dict[Any, Tuple[List[Any], List[Any]]]] = {}

    def process_left(self, record: Record) -> None:
        self._buffer(record, side=0)

    def process_right(self, record: Record) -> None:
        self._buffer(record, side=1)

    def process_left_batch(self, records: List[Record]) -> None:
        self._buffer_batch(records, side=0)

    def process_right_batch(self, records: List[Record]) -> None:
        self._buffer_batch(records, side=1)

    def _buffer(self, record: Record, side: int) -> None:
        for window in self._assigner.assign(record.timestamp):
            per_key = self._buffers.setdefault(window, {})
            sides = per_key.setdefault(record.key, ([], []))
            sides[side].append((record.value, record.timestamp))

    def _buffer_batch(self, records: List[Record], side: int) -> None:
        assign = self._assigner.assign
        buffers = self._buffers
        for record in records:
            item = (record.value, record.timestamp)
            key = record.key
            for window in assign(record.timestamp):
                per_key = buffers.setdefault(window, {})
                sides = per_key.get(key)
                if sides is None:
                    sides = per_key[key] = ([], [])
                sides[side].append(item)

    def on_watermark(self, watermark: Watermark) -> None:
        ready = [
            window
            for window in self._buffers
            if self._trigger.on_watermark(watermark, window)
        ]
        for window in sorted(ready):
            self._fire(window)
        # Hold the forwarded watermark back by the window length: results
        # carry the newest component timestamp, which can be that much
        # older than the input watermark (see the shared join).
        held_back = watermark.timestamp - self._assigner.max_window_length()
        if held_back > self._forwarded_watermark_ms:
            self._forwarded_watermark_ms = held_back
            self.output(Watermark(held_back))

    def _fire(self, window: Window) -> None:
        per_key = self._buffers.pop(window, None)
        if per_key is None:
            return
        for key in sorted(per_key, key=repr):
            left_values, right_values = per_key[key]
            for left, left_ts in left_values:
                for right, right_ts in right_values:
                    # Result event time = newest contributing tuple, the
                    # same convention as the shared join, so latency
                    # comparisons between the SUTs are apples-to-apples.
                    self.output(
                        Record(
                            timestamp=max(left_ts, right_ts),
                            value=self._result_fn(key, left, right, window),
                            key=key,
                        )
                    )

    def snapshot(self) -> Any:
        return {
            window: {key: (list(l), list(r)) for key, (l, r) in per_key.items()}
            for window, per_key in self._buffers.items()
        }

    def restore(self, snapshot: Any) -> None:
        self._buffers = {
            window: {key: (list(l), list(r)) for key, (l, r) in per_key.items()}
            for window, per_key in snapshot.items()
        }

    def buffered_tuples(self) -> int:
        """Total tuples currently buffered across windows and keys."""
        return sum(
            len(left) + len(right)
            for per_key in self._buffers.values()
            for left, right in per_key.values()
        )
