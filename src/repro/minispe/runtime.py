"""Deterministic push-based job runtime with simulated parallelism.

The runtime deploys a :class:`~repro.minispe.graph.JobGraph`: every
operator vertex becomes ``parallelism`` live operator instances, each with
private state, connected by in-process channels.  Execution is synchronous
and depth-first — pushing one element into a source drives it (and
everything it triggers) all the way to the sinks before ``push`` returns —
which makes runs bit-for-bit deterministic and easy to test.

Distributed-systems behaviour that matters for correctness is modelled
faithfully:

* **Hash partitioning** routes records to instances by a stable hash of
  the record key, so per-key state is always on one instance.
* **Watermark alignment**: an instance only advances its event-time clock
  to the *minimum* watermark over all its input channels (exactly Flink's
  rule), which is what makes out-of-order processing and binary joins
  correct.
* **Marker/barrier alignment**: changelog markers and checkpoint barriers
  are broadcast on every edge and delivered to the wrapped operator only
  once all input channels have seen them, so every shared operator
  observes a query changelog at one consistent stream position (§2.1.2)
  and checkpoints are consistent cuts (§3.3).

The data path is **micro-batched**: callers may push
:class:`~repro.minispe.record.RecordBatch` elements (or use
:meth:`JobRuntime.push_many`), and the runtime partitions a whole batch
into per-target sub-batches in one pass, delivering each with a single
operator dispatch.  Control elements are batch flush points, so batched
and per-record runs have identical event-time/marker/barrier semantics;
only the cross-channel interleave of data records may differ (the same
non-guarantee real SPE network channels have).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.minispe.graph import Edge, JobGraph, Partitioning, Vertex
from repro.minispe.operators import Operator, OperatorContext, TwoInputOperator
from repro.minispe.record import (
    ChangelogMarker,
    CheckpointBarrier,
    Record,
    RecordBatch,
    StreamElement,
    Watermark,
)


def stable_hash(key: Any) -> int:
    """A hash that is stable across processes (unlike ``hash(str)``)."""
    if isinstance(key, int):
        return key
    return zlib.crc32(repr(key).encode("utf-8"))


ChannelId = Tuple[int, int]
"""(edge index in the graph, upstream instance index)."""


class ExecutionBackend:
    """The executor interface behind an engine's data path.

    :class:`JobRuntime` is the default, in-process implementation;
    :class:`repro.minispe.parallel.ShardedRuntime` executes the same
    element stream across worker processes.  Engines talk only to this
    surface, so the execution strategy is pluggable without touching the
    operator or engine layers.
    """

    def push(self, source_name: str, element: StreamElement) -> None:
        """Inject an element into a source and run it to completion."""
        raise NotImplementedError

    def push_many(
        self,
        source_name: str,
        elements,
        batch_size: Optional[int] = None,
    ) -> int:
        """Inject a sequence of elements, micro-batching the records.

        Consecutive :class:`Record`\\ s are grouped into
        :class:`RecordBatch`\\ es of at most ``batch_size`` (unbounded
        when ``None``); control elements are batch flush points, so the
        observable semantics equal pushing one by one.  Returns the
        number of elements injected.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        pending: List[Record] = []
        count = 0
        for element in elements:
            count += 1
            if isinstance(element, Record):
                pending.append(element)
                if batch_size is not None and len(pending) >= batch_size:
                    self.push(source_name, RecordBatch(pending))
                    pending = []
            elif isinstance(element, RecordBatch):
                pending.extend(element.records)
                if batch_size is not None and len(pending) >= batch_size:
                    self.push(source_name, RecordBatch(pending))
                    pending = []
            else:
                if pending:
                    self.push(source_name, RecordBatch(pending))
                    pending = []
                self.push(source_name, element)
        if pending:
            self.push(source_name, RecordBatch(pending))
        return count

    def close(self) -> None:
        """Release executor resources (flushes pending output)."""
        raise NotImplementedError

    def completed_checkpoint(self, checkpoint_id: int) -> Optional[Dict]:
        """The aligned snapshot for ``checkpoint_id``, if complete."""
        raise NotImplementedError

    def restore_checkpoint(self, snapshot: Dict) -> None:
        """Restore operator state from a completed snapshot."""
        raise NotImplementedError

    def records_processed(self) -> Dict[str, int]:
        """Records processed per vertex (summed over instances)."""
        raise NotImplementedError


class _InstanceInputs:
    """Alignment bookkeeping for one operator instance's input channels."""

    __slots__ = (
        "input_index",
        "watermarks",
        "_aligned_watermark",
        "_marker_counts",
        "_barrier_counts",
    )

    def __init__(self, channels: List[Tuple[ChannelId, int]]) -> None:
        # channel id -> input index (0/1) it feeds.
        self.input_index: Dict[ChannelId, int] = dict(channels)
        self.watermarks: Dict[ChannelId, int] = {
            channel: -1 for channel, _ in channels
        }
        self._aligned_watermark = -1
        self._marker_counts: Dict[Any, int] = {}
        self._barrier_counts: Dict[int, int] = {}

    @property
    def channel_count(self) -> int:
        return len(self.input_index)

    def advance_watermark(self, channel: ChannelId, timestamp: int) -> Optional[int]:
        """Record a per-channel watermark; return the new aligned value if
        the minimum over all channels advanced, else None."""
        if timestamp > self.watermarks[channel]:
            self.watermarks[channel] = timestamp
        aligned = min(self.watermarks.values())
        if aligned > self._aligned_watermark:
            self._aligned_watermark = aligned
            return aligned
        return None

    def marker_complete(self, marker_key: Any) -> bool:
        """Count one marker arrival; True once all channels delivered it."""
        count = self._marker_counts.get(marker_key, 0) + 1
        if count >= self.channel_count:
            self._marker_counts.pop(marker_key, None)
            return True
        self._marker_counts[marker_key] = count
        return False

    def barrier_complete(self, checkpoint_id: int) -> bool:
        """Count one barrier arrival; True once the barrier is aligned."""
        count = self._barrier_counts.get(checkpoint_id, 0) + 1
        if count >= self.channel_count:
            self._barrier_counts.pop(checkpoint_id, None)
            return True
        self._barrier_counts[checkpoint_id] = count
        return False


def _marker_key(marker: ChangelogMarker) -> Any:
    """Alignment identity of a changelog marker."""
    sequence = getattr(marker.changelog, "sequence", None)
    if sequence is not None:
        return sequence
    return ("ts", marker.timestamp)


class DeployedInstance:
    """One live parallel instance of an operator vertex."""

    __slots__ = (
        "vertex",
        "index",
        "operator",
        "inputs",
        "records_processed",
        "is_two_input",
        "process_columnar",
        "process_traced",
        "process_batch_traced",
        "batch_sizes",
        "_runtime",
    )

    def __init__(
        self,
        vertex: Vertex,
        index: int,
        operator: Operator,
        inputs: _InstanceInputs,
        route: Callable[[str, int, StreamElement], None],
    ) -> None:
        self.vertex = vertex
        self.index = index
        self.operator = operator
        self.inputs = inputs
        self.records_processed = 0
        # Hoisted out of the delivery hot path: one isinstance at deploy
        # time instead of one per delivered element.
        self.is_two_input = isinstance(operator, TwoInputOperator)
        # Columnar fast path, hoisted the same way: operators that can
        # consume a columnar RecordBatch directly expose
        # ``process_columnar(batch)``; everyone else gets materialised
        # record lists exactly as before.
        self.process_columnar = getattr(operator, "process_columnar", None)
        # Trace-aware dispatch, hoisted too: fused operators expose
        # ``process_traced`` / ``process_batch_traced`` so a live trace
        # still sees per-sub-operator spans instead of one opaque stage.
        self.process_traced = getattr(operator, "process_traced", None)
        self.process_batch_traced = getattr(operator, "process_batch_traced", None)
        # Observability: a per-vertex batch-size histogram, installed at
        # deploy time when the runtime carries an obs hub (None keeps
        # the unobserved hot path at a single falsy check).
        self.batch_sizes = None
        self._runtime: Optional["JobRuntime"] = None
        operator.set_collector(
            lambda element: route(vertex.name, index, element)
        )
        operator.open(OperatorContext(vertex.name, index, vertex.parallelism))

    def deliver(self, channel: ChannelId, element: StreamElement) -> None:
        """Feed one element arriving on ``channel`` into the operator."""
        if isinstance(element, Record):
            runtime = self._runtime
            tracer = None
            if runtime is not None:
                if runtime._deliver_hook is not None:
                    # Fault-injection point: may raise to simulate an
                    # operator failure on this record (control elements
                    # are exempt so alignment invariants survive
                    # injected faults).
                    runtime._deliver_hook(self.vertex.name, self.index, element)
                # Non-None only while a sampled trace is live, so
                # untraced deliveries pay one attribute check.
                tracer = runtime._active_tracer
            self.records_processed += 1
            if tracer is not None:
                tracer.enter(self.vertex.name)
                try:
                    if self.is_two_input:
                        if self.inputs.input_index[channel] == 0:
                            self.operator.process_left(element)
                        else:
                            self.operator.process_right(element)
                    elif self.process_traced is not None:
                        self.process_traced(element, tracer)
                    else:
                        self.operator.process(element)
                finally:
                    tracer.exit()
            elif self.is_two_input:
                if self.inputs.input_index[channel] == 0:
                    self.operator.process_left(element)
                else:
                    self.operator.process_right(element)
            else:
                self.operator.process(element)
        elif isinstance(element, RecordBatch):
            self.deliver_batch(channel, element)
        elif isinstance(element, Watermark):
            aligned = self.inputs.advance_watermark(channel, element.timestamp)
            if aligned is not None:
                self._invoke(self.operator.on_watermark, Watermark(aligned))
        elif isinstance(element, ChangelogMarker):
            if self.inputs.marker_complete(_marker_key(element)):
                self._invoke(self.operator.on_marker, element)
        elif isinstance(element, CheckpointBarrier):
            if self.inputs.barrier_complete(element.checkpoint_id):
                self._invoke(self._on_barrier, element)
        else:
            raise TypeError(f"unknown stream element {element!r}")

    def _invoke(self, handler, element) -> None:
        """Run a control-element handler, spanned when a trace is live
        (window fires triggered by watermarks dominate some stages'
        cost, so traced pushes must attribute them)."""
        runtime = self._runtime
        tracer = runtime._active_tracer if runtime is not None else None
        if tracer is not None:
            tracer.enter(self.vertex.name)
            try:
                handler(element)
            finally:
                tracer.exit()
        else:
            handler(element)

    def deliver_batch(self, channel: ChannelId, records) -> None:
        """Feed a micro-batch arriving on ``channel`` into the operator.

        ``records`` is a record list or a whole :class:`RecordBatch`.  A
        *columnar* batch reaching a columnar-aware operator is handed
        over intact via ``process_columnar`` — per-row materialisation
        never happens on this path; every other combination materialises
        to the record list exactly as before.

        With a fault-injection deliver hook installed, records are handed
        to the operator one at a time so the hook fires (and may raise)
        *per record inside the batch*, exactly as on the per-record path;
        without hooks the whole sub-batch goes through the operator's
        vectorized ``process_batch``.
        """
        runtime = self._runtime
        batch = records if type(records) is RecordBatch else None
        if batch is not None and (
            not batch.is_columnar
            or self.process_columnar is None
            or self.is_two_input
            or (runtime is not None and runtime._deliver_hook is not None)
        ):
            records = batch.records
            batch = None
        if not records:
            return
        operator = self.operator
        if self.batch_sizes is not None:
            self.batch_sizes.record(len(records))
        if runtime is not None and runtime._deliver_hook is not None:
            hook = runtime._deliver_hook
            name = self.vertex.name
            index = self.index
            if self.is_two_input:
                process = (
                    operator.process_left
                    if self.inputs.input_index[channel] == 0
                    else operator.process_right
                )
            else:
                process = operator.process
            for record in records:
                hook(name, index, record)
                self.records_processed += 1
                process(record)
            return
        self.records_processed += len(records)
        tracer = runtime._active_tracer if runtime is not None else None
        if tracer is not None:
            tracer.enter(self.vertex.name)
            try:
                if batch is not None:
                    self.process_columnar(batch)
                elif self.is_two_input:
                    if self.inputs.input_index[channel] == 0:
                        operator.process_left_batch(records)
                    else:
                        operator.process_right_batch(records)
                elif self.process_batch_traced is not None:
                    self.process_batch_traced(records, tracer)
                else:
                    operator.process_batch(records)
            finally:
                tracer.exit()
        elif batch is not None:
            self.process_columnar(batch)
        elif self.is_two_input:
            if self.inputs.input_index[channel] == 0:
                operator.process_left_batch(records)
            else:
                operator.process_right_batch(records)
        else:
            operator.process_batch(records)

    def _on_barrier(self, barrier: CheckpointBarrier) -> None:
        # Snapshot-on-barrier is orchestrated by the runtime so the
        # coordinator sees a consistent cut; the instance just records it.
        runtime = self._runtime
        if runtime is not None:
            runtime._record_snapshot(self, barrier)
        self.operator.output(barrier)


class JobRuntime(ExecutionBackend):
    """Deploys and drives a job graph.

    Typical use::

        runtime = JobRuntime(graph)
        runtime.push("source_a", Record(timestamp=0, value=..., key=1))
        runtime.push("source_a", Watermark(timestamp=10_000))
        runtime.close()
    """

    def __init__(self, graph: JobGraph, obs=None) -> None:
        graph.validate()
        self.graph = graph
        # Telemetry hub (repro.obs.Observability) or None; when None the
        # data path is identical to an unobserved build.
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else None
        # Set to the tracer only while a sampled push is being traced;
        # instances read it once per delivery.
        self._active_tracer = None
        self._channel_hook: Optional[
            Callable[[Edge, int, Record], int]
        ] = None
        self._deliver_hook: Optional[
            Callable[[str, int, Record], None]
        ] = None
        self._instances: Dict[str, List[DeployedInstance]] = {}
        self._rebalance_counters: Dict[int, int] = {}
        self._pending_snapshots: Dict[int, Dict[str, Dict[int, Any]]] = {}
        self._completed_snapshots: Dict[int, Dict[str, Dict[int, Any]]] = {}
        self._edge_index = {id(edge): i for i, edge in enumerate(graph.edges)}
        self._deploy()
        # Hot-path adjacency: vertex -> [(edge, edge_idx, target instances)].
        self._out: Dict[str, List[Tuple[Edge, int, List[DeployedInstance]]]] = {
            name: [
                (edge, self._edge_index[id(edge)], self._instances[edge.target])
                for edge in graph.out_edges(name)
            ]
            for name in graph.vertices
        }

    # -- deployment --------------------------------------------------------

    def _deploy(self) -> None:
        for name in self.graph.topological_order():
            vertex = self.graph.vertices[name]
            if vertex.is_source:
                continue
            channels: List[Tuple[ChannelId, int]] = []
            for edge in self.graph.in_edges(name):
                edge_idx = self._edge_index[id(edge)]
                upstream = self.graph.vertices[edge.source]
                upstream_parallelism = (
                    1 if upstream.is_source else upstream.parallelism
                )
                if edge.partitioning is Partitioning.FORWARD:
                    # channel from same-index upstream instance only; the
                    # per-instance channel set is resolved below.
                    for up_index in range(upstream_parallelism):
                        channels.append(((edge_idx, up_index), edge.input_index))
                else:
                    for up_index in range(upstream_parallelism):
                        channels.append(((edge_idx, up_index), edge.input_index))
            instances = []
            for index in range(vertex.parallelism):
                instance_channels = self._channels_for_instance(
                    name, index, channels
                )
                operator = vertex.operator_factory()
                instance = DeployedInstance(
                    vertex,
                    index,
                    operator,
                    _InstanceInputs(instance_channels),
                    self._route,
                )
                instance._runtime = self
                if self._obs is not None:
                    instance.batch_sizes = self._obs.registry.histogram(
                        "operator_batch_records", operator=name
                    )
                instances.append(instance)
            self._instances[name] = instances

    def _channels_for_instance(
        self,
        vertex_name: str,
        index: int,
        all_channels: List[Tuple[ChannelId, int]],
    ) -> List[Tuple[ChannelId, int]]:
        """Restrict forward-edge channels to the same-index upstream."""
        result = []
        for (edge_idx, up_index), input_index in all_channels:
            edge = self.graph.edges[edge_idx]
            if edge.partitioning is Partitioning.FORWARD and up_index != index:
                continue
            result.append(((edge_idx, up_index), input_index))
        return result

    # -- driving -----------------------------------------------------------

    def push(self, source_name: str, element: StreamElement) -> None:
        """Inject an element into a source and run it to completion."""
        vertex = self.graph.vertices.get(source_name)
        if vertex is None or not vertex.is_source:
            raise KeyError(f"{source_name!r} is not a source of this job")
        if self._tracer is not None:
            # Sampled span trace: execution is synchronous depth-first,
            # so everything this element triggers completes (and is
            # attributed per operator, with a root span on the source
            # vertex) before finish() reads the clock.
            self._sampled_route(source_name, 0, element)
            return
        self._route(source_name, 0, element)

    def push_many(
        self,
        source_name: str,
        elements,
        batch_size: Optional[int] = None,
    ) -> int:
        """Inject a sequence of elements, micro-batching the records.

        Consecutive :class:`Record`\\ s are grouped into
        :class:`RecordBatch`\\ es of at most ``batch_size`` (unbounded when
        ``None``) and routed in one partitioning pass each.  Control
        elements (watermarks, markers, barriers) are batch *flush points*:
        the pending batch is routed first, then the control element, so
        the observable semantics are identical to pushing one by one.
        Returns the number of elements injected.
        """
        vertex = self.graph.vertices.get(source_name)
        if vertex is None or not vertex.is_source:
            raise KeyError(f"{source_name!r} is not a source of this job")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        pending: List[Record] = []
        count = 0
        route = self._route if self._tracer is None else self._sampled_route
        for element in elements:
            count += 1
            if isinstance(element, Record):
                pending.append(element)
                if batch_size is not None and len(pending) >= batch_size:
                    route(source_name, 0, RecordBatch(pending))
                    pending = []
            elif isinstance(element, RecordBatch):
                pending.extend(element.records)
                if batch_size is not None and len(pending) >= batch_size:
                    route(source_name, 0, RecordBatch(pending))
                    pending = []
            else:
                if pending:
                    route(source_name, 0, RecordBatch(pending))
                    pending = []
                route(source_name, 0, element)
        if pending:
            route(source_name, 0, RecordBatch(pending))
        return count

    def _sampled_route(
        self, source_name: str, from_index: int, element: StreamElement
    ) -> None:
        """:meth:`_route` behind the trace-sampling gate (observe mode)."""
        tracer = self._tracer
        if not tracer.maybe_start():
            self._route(source_name, from_index, element)
            return
        self._active_tracer = tracer
        tracer.enter(source_name)
        try:
            self._route(source_name, from_index, element)
        finally:
            total_ns = tracer.exit()
            self._active_tracer = None
            timestamp = getattr(element, "timestamp", None)
            if timestamp is None and isinstance(element, RecordBatch):
                records = element.records
                timestamp = records[0].timestamp if records else None
            tracer.finish(timestamp, total_ns=total_ns)

    def close(self) -> None:
        """Close all operator instances (flushes pending output)."""
        for name in self.graph.topological_order():
            for instance in self._instances.get(name, []):
                instance.operator.close()

    # -- routing -----------------------------------------------------------

    def _route(
        self, from_vertex: str, from_index: int, element: StreamElement
    ) -> None:
        for edge, edge_idx, targets in self._out[from_vertex]:
            channel = (edge_idx, from_index)
            if isinstance(element, Record):
                copies = 1
                if self._channel_hook is not None:
                    # Fault-injection point: 0 drops the record on this
                    # channel, 2+ duplicates it (control elements are
                    # never faulted, preserving alignment).
                    copies = self._channel_hook(edge, from_index, element)
                    if copies <= 0:
                        continue
                for _ in range(copies):
                    self._route_record(
                        edge, edge_idx, channel, targets, from_index, element
                    )
            elif isinstance(element, RecordBatch):
                if self._channel_hook is not None:
                    # The channel hook fires per record *inside* the batch
                    # (drop/duplicate/delay each record independently), so
                    # fault plans are batch-size agnostic.
                    hook = self._channel_hook
                    effective: List[Record] = []
                    for record in element.records:
                        copies = hook(edge, from_index, record)
                        if copies == 1:
                            effective.append(record)
                        elif copies > 1:
                            effective.extend([record] * copies)
                    if effective:
                        self._route_batch(
                            edge, edge_idx, channel, targets, from_index,
                            effective,
                        )
                elif len(element):
                    # No hook: the batch object travels intact, so a
                    # columnar batch stays columnar all the way to the
                    # consuming operator.
                    self._route_batch(
                        edge, edge_idx, channel, targets, from_index, element
                    )
            else:
                # Control elements are broadcast on every edge.
                if edge.partitioning is Partitioning.FORWARD:
                    targets[from_index].deliver(channel, element)
                else:
                    for target in targets:
                        target.deliver(channel, element)

    def _route_record(
        self,
        edge: Edge,
        edge_idx: int,
        channel: ChannelId,
        targets: List[DeployedInstance],
        from_index: int,
        record: Record,
    ) -> None:
        if edge.partitioning is Partitioning.HASH:
            if len(targets) == 1:
                targets[0].deliver(channel, record)
            else:
                index = stable_hash(record.key) % len(targets)
                targets[index].deliver(channel, record)
        elif edge.partitioning is Partitioning.FORWARD:
            targets[from_index].deliver(channel, record)
        elif edge.partitioning is Partitioning.BROADCAST:
            for target in targets:
                target.deliver(channel, record)
        elif edge.partitioning is Partitioning.REBALANCE:
            counter = self._rebalance_counters.get(edge_idx, 0)
            targets[counter % len(targets)].deliver(channel, record)
            self._rebalance_counters[edge_idx] = counter + 1
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown partitioning {edge.partitioning}")

    def _route_batch(
        self,
        edge: Edge,
        edge_idx: int,
        channel: ChannelId,
        targets: List[DeployedInstance],
        from_index: int,
        records,
    ) -> None:
        """Partition a whole micro-batch into per-target sub-batches in
        one pass and deliver each sub-batch with one operator dispatch.

        ``records`` is a record list or an intact :class:`RecordBatch`;
        single-target partitionings pass it through whole (columnar
        batches survive), multi-target hash/rebalance must look at every
        record and materialise first.

        Per-channel record order is preserved (records for one target
        keep their relative order), which is the same ordering guarantee
        a real SPE's network channels give.
        """
        partitioning = edge.partitioning
        if partitioning is Partitioning.FORWARD:
            targets[from_index].deliver_batch(channel, records)
            return
        if partitioning is Partitioning.BROADCAST:
            for target in targets:
                target.deliver_batch(channel, records)
            return
        width = len(targets)
        if width == 1:
            if partitioning is Partitioning.REBALANCE:
                self._rebalance_counters[edge_idx] = (
                    self._rebalance_counters.get(edge_idx, 0) + len(records)
                )
            targets[0].deliver_batch(channel, records)
            return
        if type(records) is RecordBatch:
            records = records.records
        buckets: List[Optional[List[Record]]] = [None] * width
        if partitioning is Partitioning.HASH:
            for record in records:
                index = stable_hash(record.key) % width
                bucket = buckets[index]
                if bucket is None:
                    buckets[index] = [record]
                else:
                    bucket.append(record)
        elif partitioning is Partitioning.REBALANCE:
            counter = self._rebalance_counters.get(edge_idx, 0)
            for record in records:
                index = counter % width
                counter += 1
                bucket = buckets[index]
                if bucket is None:
                    buckets[index] = [record]
                else:
                    bucket.append(record)
            self._rebalance_counters[edge_idx] = counter
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown partitioning {partitioning}")
        for index, bucket in enumerate(buckets):
            if bucket is not None:
                targets[index].deliver_batch(channel, bucket)

    # -- fault injection ---------------------------------------------------

    def set_fault_hooks(
        self,
        channel_hook: Optional[Callable[[Edge, int, Record], int]] = None,
        deliver_hook: Optional[Callable[[str, int, Record], None]] = None,
    ) -> None:
        """Install fault-injection hooks (see :mod:`repro.faults`).

        ``channel_hook(edge, from_index, record) -> copies`` decides how
        many copies of a data record traverse a channel (0 = drop,
        2 = duplicate).  ``deliver_hook(vertex, index, record)`` runs
        before an instance processes a data record and may raise to
        simulate an operator failure.  Control elements (watermarks,
        markers, barriers) are never passed to either hook.
        """
        self._channel_hook = channel_hook
        self._deliver_hook = deliver_hook

    def clear_fault_hooks(self) -> None:
        """Remove any installed fault-injection hooks."""
        self._channel_hook = None
        self._deliver_hook = None

    def redeliver(self, edge_idx: int, from_index: int, record: Record) -> None:
        """Deliver a previously withheld record on one edge (channel
        delay faults): routed like a fresh record but bypassing the
        channel hook, so a delayed record is not re-faulted."""
        edge = self.graph.edges[edge_idx]
        targets = self._instances[edge.target]
        self._route_record(
            edge, edge_idx, (edge_idx, from_index), targets, from_index, record
        )

    # -- introspection -----------------------------------------------------

    def instances(self, vertex_name: str) -> List[DeployedInstance]:
        """Live instances of an operator vertex."""
        return self._instances[vertex_name]

    def operators(self, vertex_name: str) -> List[Operator]:
        """The operator objects backing a vertex's instances."""
        return [instance.operator for instance in self._instances[vertex_name]]

    def records_processed(self) -> Dict[str, int]:
        """Records processed per vertex (summed over instances)."""
        return {
            name: sum(instance.records_processed for instance in instances)
            for name, instances in self._instances.items()
        }

    # -- checkpointing -----------------------------------------------------

    def _record_snapshot(
        self, instance: DeployedInstance, barrier: CheckpointBarrier
    ) -> None:
        per_checkpoint = self._pending_snapshots.setdefault(
            barrier.checkpoint_id, {}
        )
        per_vertex = per_checkpoint.setdefault(instance.vertex.name, {})
        per_vertex[instance.index] = instance.operator.snapshot()
        if self._checkpoint_is_complete(barrier.checkpoint_id):
            self._completed_snapshots[barrier.checkpoint_id] = (
                self._pending_snapshots.pop(barrier.checkpoint_id)
            )

    def _checkpoint_is_complete(self, checkpoint_id: int) -> bool:
        snapshot = self._pending_snapshots.get(checkpoint_id, {})
        for name, instances in self._instances.items():
            taken = snapshot.get(name, {})
            if len(taken) != len(instances):
                return False
        return True

    def completed_checkpoint(self, checkpoint_id: int) -> Optional[Dict]:
        """The snapshot for ``checkpoint_id`` if all instances reported."""
        return self._completed_snapshots.get(checkpoint_id)

    def restore_checkpoint(self, snapshot: Dict[str, Dict[int, Any]]) -> None:
        """Restore every instance's state from a completed snapshot."""
        for name, per_index in snapshot.items():
            for index, state in per_index.items():
                self._instances[name][index].operator.restore(state)
