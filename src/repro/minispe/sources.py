"""Source helpers.

Sources in this runtime are *driven*: the caller pushes elements through
:meth:`repro.minispe.runtime.JobRuntime.push`.  These helpers turn Python
iterables or generator functions into deterministic element sequences —
records interleaved with periodic watermarks — which is how the harness
feeds the engines (the paper's driver pulls tuples from a FIFO queue and
sends them to the SUT, Figure 5).
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.minispe.record import Record, RecordBatch, StreamElement, Watermark

logger = logging.getLogger("repro.minispe.sources")


def records_from(
    values: Iterable[Tuple[int, Any]],
    key_fn: Optional[Callable[[Any], Any]] = None,
) -> Iterator[Record]:
    """Yield records from ``(timestamp, value)`` pairs.

    ``key_fn`` extracts the partitioning key from the value; by default the
    value's ``key`` attribute is used when present.
    """
    for timestamp, value in values:
        if key_fn is not None:
            key = key_fn(value)
        else:
            key = getattr(value, "key", None)
        yield Record(timestamp=timestamp, value=value, key=key)


def with_periodic_watermarks(
    records: Iterable[Record],
    interval_ms: int,
    lateness_ms: int = 0,
) -> Iterator[StreamElement]:
    """Interleave watermarks every ``interval_ms`` of event time.

    The watermark trails the maximum observed timestamp by ``lateness_ms``,
    the standard bounded-out-of-orderness strategy: records up to
    ``lateness_ms`` late are still assigned correctly.  A final watermark
    at ``max_ts`` is *not* emitted automatically — callers decide when to
    flush (see :func:`final_watermark`).
    """
    if interval_ms <= 0:
        raise ValueError(f"interval must be positive, got {interval_ms}")
    if lateness_ms < 0:
        raise ValueError(f"lateness must be non-negative, got {lateness_ms}")
    max_ts = -1
    next_emit = interval_ms
    for record in records:
        if record.timestamp > max_ts:
            max_ts = record.timestamp
        while max_ts - lateness_ms >= next_emit:
            yield Watermark(timestamp=next_emit)
            next_emit += interval_ms
        yield record


def batched(
    elements: Iterable[StreamElement],
    batch_size: int,
) -> Iterator[StreamElement]:
    """Group consecutive records into :class:`RecordBatch` elements.

    Control elements (watermarks, markers, barriers) flush the pending
    batch first and pass through unwrapped, so event-time semantics are
    unchanged: every record still precedes exactly the same control
    elements it preceded in the unbatched sequence.  Incoming batches are
    flattened and regrouped to ``batch_size``.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    pending: List[Record] = []
    for element in elements:
        if isinstance(element, Record):
            pending.append(element)
            if len(pending) >= batch_size:
                yield RecordBatch(pending)
                pending = []
        elif isinstance(element, RecordBatch):
            for record in element.records:
                pending.append(record)
                if len(pending) >= batch_size:
                    yield RecordBatch(pending)
                    pending = []
        else:
            if pending:
                yield RecordBatch(pending)
                pending = []
            yield element
    if pending:
        yield RecordBatch(pending)


def final_watermark(max_timestamp: int) -> Watermark:
    """A watermark that closes every window up to ``max_timestamp``."""
    return Watermark(timestamp=max_timestamp)


class ReplayableSource:
    """A source that logs everything pushed through it for replays.

    Used by the checkpoint machinery: recovery restores the last completed
    snapshot and replays the logged suffix (paper §3.3 — "AStream requires
    that both tuples and changelog markers ... are deterministically
    reproducible by logging the input stream and checkpointing").
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.log: List[StreamElement] = []

    def record(self, element: StreamElement) -> StreamElement:
        """Append ``element`` to the log and return it."""
        self.log.append(element)
        return element

    def replay_from(self, offset: int) -> Iterator[StreamElement]:
        """Yield logged elements starting at ``offset``."""
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        logger.debug(
            "replaying source %s from offset %d (%d elements)",
            self.name,
            offset,
            len(self.log) - offset,
        )
        yield from self.log[offset:]

    @property
    def position(self) -> int:
        """Current log length (the offset of the next element)."""
        return len(self.log)
