"""A miniature distributed stream processing engine (the substrate).

``repro.minispe`` stands in for Apache Flink 1.5.2, which the AStream paper
uses as its underlying SPE.  It provides the pieces AStream's shared layer
needs operator-internal access to:

* an event-time data model with records, watermarks, changelog markers, and
  checkpoint barriers (:mod:`repro.minispe.record`);
* an operator framework with user-defined stateful operators
  (:mod:`repro.minispe.operators`);
* window assigners, triggers, and evictors for tumbling, sliding, and
  session windows (:mod:`repro.minispe.windows`);
* per-query (non-shared) windowed aggregation and join operators used by
  the query-at-a-time baseline (:mod:`repro.minispe.window_operators`);
* a job graph with forward / hash / broadcast partitioning
  (:mod:`repro.minispe.graph`) and a deterministic push-based runtime with
  simulated operator parallelism (:mod:`repro.minispe.runtime`);
* keyed and operator state with snapshot support (:mod:`repro.minispe.state`)
  plus a checkpoint coordinator and replay-based recovery
  (:mod:`repro.minispe.checkpoint`);
* metrics primitives (:mod:`repro.minispe.metrics`) and a simulated cluster
  with a deployment-cost model (:mod:`repro.minispe.cluster`).

The engine executes the data path for real (tuples are materialised,
predicates evaluated, joins computed); only the *cluster* is simulated.
"""

from repro.minispe.record import (
    ChangelogMarker,
    CheckpointBarrier,
    Record,
    RecordBatch,
    StreamElement,
    Watermark,
)
from repro.minispe.time import VirtualClock
from repro.minispe.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    TwoInputOperator,
)
from repro.minispe.windows import (
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
    WindowAssigner,
)
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.runtime import JobRuntime
from repro.minispe.state import KeyedState, OperatorState
from repro.minispe.checkpoint import CheckpointCoordinator, SourceLog
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.minispe.metrics import Counter, Gauge, Histogram, MetricRegistry

__all__ = [
    "ChangelogMarker",
    "CheckpointBarrier",
    "CheckpointCoordinator",
    "ClusterSpec",
    "Counter",
    "FilterOperator",
    "Gauge",
    "Histogram",
    "JobGraph",
    "JobRuntime",
    "KeyedState",
    "MapOperator",
    "MetricRegistry",
    "Operator",
    "OperatorState",
    "Partitioning",
    "Record",
    "RecordBatch",
    "SessionWindows",
    "SimulatedCluster",
    "SlidingWindows",
    "SourceLog",
    "StreamElement",
    "TumblingWindows",
    "TwoInputOperator",
    "VirtualClock",
    "Watermark",
    "Window",
    "WindowAssigner",
]
