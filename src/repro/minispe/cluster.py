"""Simulated cluster: nodes, slots, and a deployment-cost model.

The paper runs 4- and 8-node clusters (16-core Xeon E5620, 48 GB each).
We cannot reproduce the hardware, so the cluster is simulated along the
two axes the experiments depend on:

* **Capacity** — a node offers one task slot per core.  Deploying a
  topology occupies one slot per operator instance; a query-at-a-time
  engine that deploys a fresh pipeline per query exhausts slots, which is
  one of the two failure modes the paper observes for Flink under ad-hoc
  workloads ("throws an exception", §4.4).
* **Deployment latency** — physically deploying operators to cluster
  nodes is time-consuming (§4.5, Figure 10): the *first* deployment pays a
  large cold-start cost, and every topology restart pays a stop + start
  cost that scales with the number of instances.  These costs are charged
  in *virtual* time by the driver, which is what produces the unbounded
  queueing delay of the baseline in Figure 10a.
* **Speed-up** — measured single-process throughput is scaled by
  ``speedup()`` when reporting multi-node numbers.  The exponent 0.5 is
  calibrated from the paper's own 4→8-node ratios (e.g. single-query
  aggregation 1.4M → 1.95M tuples/s, a factor ≈ √2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster (defaults match the paper's nodes)."""

    nodes: int = 4
    cores_per_node: int = 16
    memory_gb_per_node: int = 48

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"cluster needs at least one node, got {self.nodes}")
        if self.cores_per_node <= 0:
            raise ValueError(
                f"nodes need at least one core, got {self.cores_per_node}"
            )

    @property
    def slots(self) -> int:
        """Task slots available across the cluster (one per core)."""
        return self.nodes * self.cores_per_node


@dataclass
class DeploymentCostModel:
    """Virtual-time costs (ms) for topology deployment operations.

    Calibrated against Figure 10: the first AStream deployment takes about
    7 s (cold start — operators physically placed on nodes); baseline
    topology restarts take a few seconds each, so at one query per second
    the request queue grows without bound.
    """

    cold_start_ms: int = 5_000
    job_submit_ms: int = 1_500
    job_stop_ms: int = 1_000
    per_instance_ms: int = 25
    changelog_apply_ms: int = 5
    recovery_restart_ms: int = 2_000
    """Fixed cost of a supervised recovery: failure detection fencing,
    checkpoint fetch, and topology restart (Flink's full-restart
    strategy, which the paper's substrate uses)."""
    state_restore_per_instance_ms: int = 10
    """Per-instance cost of re-loading snapshotted state on recovery."""

    def cold_deploy_ms(self, instances: int, nodes: int) -> int:
        """First deployment of a topology with ``instances`` instances."""
        return (
            self.cold_start_ms
            + self.job_submit_ms
            + self._placement_ms(instances, nodes)
        )

    def redeploy_ms(self, instances: int, nodes: int) -> int:
        """Stop the running topology and start a new one (baseline path)."""
        return (
            self.job_stop_ms
            + self.job_submit_ms
            + self._placement_ms(instances, nodes)
        )

    def recovery_ms(self, instances: int, nodes: int) -> int:
        """Supervised recovery of a failed topology on ``nodes`` survivors.

        Covers restart + re-placement on the remaining healthy nodes and
        per-instance state restoration from the latest checkpoint.  This
        is the deployment portion of MTTR; replay of the source-log
        suffix is charged separately by the supervisor.
        """
        return (
            self.recovery_restart_ms
            + self._placement_ms(instances, nodes)
            + self.state_restore_per_instance_ms
            * -(-instances // max(1, nodes))
        )

    def changelog_ms(self, query_changes: int) -> int:
        """Apply a changelog with ``query_changes`` creations/deletions.

        AStream creates and deletes queries on-the-fly without touching
        the running topology (§4.5), so the cost is per-change metadata
        propagation, not deployment.
        """
        return self.changelog_apply_ms * max(1, query_changes)

    def _placement_ms(self, instances: int, nodes: int) -> int:
        # Nodes place instances in parallel; round up.
        per_node = -(-instances // max(1, nodes))
        return self.per_instance_ms * per_node


CLUSTER_MODES = ("modeled", "process")
"""Valid :class:`SimulatedCluster` modes.

``modeled`` scales measured single-process throughput by the calibrated
``speedup()`` exponent (paper-figure reproduction); ``process`` means
parallelism is *executed* by the process-sharded backend, so reported
numbers are already real and ``speedup()`` is identity.
"""


class SimulatedCluster:
    """Slot accounting plus the deployment-cost model for one cluster."""

    def __init__(
        self,
        spec: ClusterSpec = ClusterSpec(),
        cost_model: Optional[DeploymentCostModel] = None,
        mode: str = "modeled",
    ) -> None:
        if mode not in CLUSTER_MODES:
            raise ValueError(
                f"unknown cluster mode {mode!r}; expected one of {CLUSTER_MODES}"
            )
        self.spec = spec
        self.cost_model = cost_model or DeploymentCostModel()
        self.mode = mode
        self._allocations: Dict[str, int] = {}
        self._failed_nodes: set = set()

    # -- node health (fault injection) -------------------------------------

    @property
    def healthy_nodes(self) -> int:
        """Nodes currently alive."""
        return self.spec.nodes - len(self._failed_nodes)

    @property
    def failed_nodes(self) -> FrozenSet[int]:
        """Indices of nodes currently down."""
        return frozenset(self._failed_nodes)

    def fail_node(self, node: int) -> bool:
        """Take one node down, reclaiming its task slots from capacity.

        Deployed topologies keep their allocations (their instances are
        re-placed on the survivors during supervised recovery), so
        ``free_slots`` can go negative while the cluster is degraded.
        Returns False when the node was already down.
        """
        self._check_node_index(node)
        if node in self._failed_nodes:
            return False
        self._failed_nodes.add(node)
        return True

    def restore_node(self, node: int) -> bool:
        """Bring a failed node back; its slots rejoin the capacity pool.

        Returns False when the node was not down.
        """
        self._check_node_index(node)
        if node not in self._failed_nodes:
            return False
        self._failed_nodes.discard(node)
        return True

    def recovery_cost_ms(self, instances: int) -> int:
        """Deployment cost of recovering ``instances`` on the survivors."""
        return self.cost_model.recovery_ms(instances, max(1, self.healthy_nodes))

    def _check_node_index(self, node: int) -> None:
        if not 0 <= node < self.spec.nodes:
            raise ValueError(
                f"node index {node} out of range for a "
                f"{self.spec.nodes}-node cluster"
            )

    # -- capacity ----------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Slots offered by the currently healthy nodes."""
        return self.healthy_nodes * self.spec.cores_per_node

    @property
    def used_slots(self) -> int:
        """Slots currently occupied by deployed topologies."""
        return sum(self._allocations.values())

    @property
    def free_slots(self) -> int:
        """Slots still available (negative while degraded by failures)."""
        return self.total_slots - self.used_slots

    def allocate(self, job_name: str, instances: int) -> None:
        """Occupy ``instances`` slots for ``job_name``.

        Raises :class:`ClusterCapacityError` when the cluster is full —
        the failure mode the query-at-a-time baseline hits under ad-hoc
        workloads.
        """
        if job_name in self._allocations:
            raise ValueError(f"job {job_name!r} is already deployed")
        if instances > self.free_slots:
            raise ClusterCapacityError(
                f"job {job_name!r} needs {instances} slots but only "
                f"{self.free_slots} of {self.total_slots} are free"
            )
        self._allocations[job_name] = instances

    def release(self, job_name: str) -> None:
        """Free the slots held by ``job_name`` (no-op if unknown)."""
        self._allocations.pop(job_name, None)

    def deployed_jobs(self) -> Dict[str, int]:
        """Job name → slot count for everything currently deployed."""
        return dict(self._allocations)

    # -- performance model -------------------------------------------------

    def speedup(self, reference_nodes: int = 4) -> float:
        """Throughput multiplier relative to a ``reference_nodes`` cluster.

        Calibrated to the paper's 4→8-node ratios (≈ √2 for doubling).
        In ``process`` mode the multiplier is 1.0: scaling is executed by
        the sharded backend and already present in measured throughput,
        so applying the model on top would double-count it.
        """
        if reference_nodes <= 0:
            raise ValueError("reference_nodes must be positive")
        if self.mode == "process":
            return 1.0
        return (self.spec.nodes / reference_nodes) ** 0.5

    def parallelism_for(self, max_parallelism: Optional[int] = None) -> int:
        """Operator parallelism the scheduler would pick on this cluster.

        One instance per node keeps the in-process simulation cheap while
        preserving hash-partitioned multi-instance semantics; callers can
        cap it.
        """
        parallelism = self.spec.nodes
        if max_parallelism is not None:
            parallelism = min(parallelism, max_parallelism)
        return max(1, parallelism)


class ClusterCapacityError(RuntimeError):
    """Raised when a topology cannot be placed (no free slots)."""
