"""Sink operators.

Sinks terminate a dataflow.  :class:`CollectSink` gathers records into an
in-memory list (tests, examples); :class:`CallbackSink` hands each record
to user code (the harness uses it to timestamp query outputs for
event-time latency, §3.4); :class:`CountingSink` only counts, for
throughput measurements where materialising outputs would dominate.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.minispe.operators import Operator
from repro.minispe.record import Record, Watermark


class CollectSink(Operator):
    """Collect every record into :attr:`collected` (in arrival order)."""

    def __init__(self, name: str = "collect_sink") -> None:
        super().__init__(name)
        self.collected: List[Record] = []

    def process(self, record: Record) -> None:
        self.collected.append(record)

    def process_batch(self, records: List[Record]) -> None:
        self.collected.extend(records)

    def values(self) -> List[Any]:
        """The collected record payloads."""
        return [record.value for record in self.collected]

    def snapshot(self) -> Any:
        return list(self.collected)

    def restore(self, snapshot: Any) -> None:
        self.collected = list(snapshot)

    def on_watermark(self, watermark: Watermark) -> None:
        # Terminal vertex: nothing downstream to forward to.
        pass

    def on_marker(self, marker) -> None:
        pass


class CallbackSink(Operator):
    """Invoke ``callback(record)`` for every record."""

    def __init__(
        self,
        callback: Callable[[Record], None],
        name: str = "callback_sink",
        watermark_callback: Optional[Callable[[Watermark], None]] = None,
    ) -> None:
        super().__init__(name)
        self._callback = callback
        self._watermark_callback = watermark_callback

    def process(self, record: Record) -> None:
        self._callback(record)

    def process_batch(self, records: List[Record]) -> None:
        callback = self._callback
        for record in records:
            callback(record)

    def on_watermark(self, watermark: Watermark) -> None:
        if self._watermark_callback is not None:
            self._watermark_callback(watermark)

    def on_marker(self, marker) -> None:
        pass


class CountingSink(Operator):
    """Count records without retaining them (cheap throughput sink)."""

    def __init__(self, name: str = "counting_sink") -> None:
        super().__init__(name)
        self.count = 0

    def process(self, record: Record) -> None:
        self.count += 1

    def process_batch(self, records: List[Record]) -> None:
        self.count += len(records)

    def snapshot(self) -> Any:
        return self.count

    def restore(self, snapshot: Any) -> None:
        self.count = int(snapshot)

    def on_watermark(self, watermark: Watermark) -> None:
        pass

    def on_marker(self, marker) -> None:
        pass
