"""Virtual event-time clock.

All engine semantics in this reproduction are event-time driven (paper
§3.3): windows, slices, and changelogs are positioned by the timestamps
carried on stream elements, never by the system clock.  The harness
advances a :class:`VirtualClock` to generate those timestamps, which makes
every experiment deterministic and lets a "1000-second" paper run execute
in milliseconds of wall-clock time.
"""

from __future__ import annotations


class VirtualClock:
    """A manually-advanced millisecond clock.

    The clock is monotonic: :meth:`advance_to` with a smaller timestamp
    raises, which catches accidental time travel in harness code early.
    """

    def __init__(self, start_ms: int = 0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_ms = start_ms

    @property
    def now_ms(self) -> int:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: int) -> int:
        """Advance the clock by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance by negative delta {delta_ms}")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_to(self, timestamp_ms: int) -> int:
        """Advance the clock to an absolute timestamp (must not go back)."""
        if timestamp_ms < self._now_ms:
            raise ValueError(
                f"clock cannot move backwards: now={self._now_ms}, "
                f"target={timestamp_ms}"
            )
        self._now_ms = timestamp_ms
        return self._now_ms

    def __repr__(self) -> str:
        return f"VirtualClock(now_ms={self._now_ms})"


MS_PER_SECOND = 1000


def seconds(n: float) -> int:
    """Convert seconds to the engine's millisecond time unit."""
    return int(n * MS_PER_SECOND)
