"""Process-parallel sharded execution backend (ISSUE 3 tentpole).

The in-process :class:`~repro.minispe.runtime.JobRuntime` models
parallelism; this module *executes* it.  A :class:`ProcessShardPool`
spawns N worker processes, each owning the hash-sharded partition of the
keyed operator state whose keys satisfy ``stable_hash(key) % N == shard``
— the shared-nothing key-sharding STRETCH shows scales stateful
streaming near-linearly, and the shape Shared Arrangements shows
preserves inter-query sharing (each shard serves *all* queries for its
key range).

Wire protocol
-------------

Workers are fed over batched IPC channels:

* an **op** is a small picklable tuple (``("push", source, element)``,
  ``("batch", source, records)``, ``("snapshot", id)``, …);
* a **frame** is a pickled list of ops sent with one
  ``Connection.send_bytes`` syscall.  Data records are coalesced into
  per-shard sub-batches (reusing :class:`~repro.minispe.record.RecordBatch`
  semantics on the worker side), so the per-tuple IPC cost is amortised
  exactly like PR 2's micro-batched data path;
* every frame is acknowledged.  Acks carry sampled ``(query_id,
  timestamp)`` deliveries for QoS monitoring plus the replies of any
  synchronous ops in the frame;
* the coordinator bounds in-flight frames per worker (credit-based
  backpressure), so a slow shard throttles the feed instead of growing
  an unbounded queue.

Frames traverse each pipe in FIFO order and control ops (watermarks,
changelog markers, checkpoint barriers) are broadcast to every shard in
coordinator order, which gives cross-process barrier/marker alignment
for free: every worker observes the same control prefix before any later
data.  Aligned-barrier snapshot collection (:meth:`ShardedRuntime.
completed_checkpoint`) drains all shards and gathers their per-shard
state, so exactly-once snapshots and replay recovery work across
processes.

The module is engine-agnostic: what runs inside a worker is produced by
a picklable *program factory* (see
:class:`repro.core.parallel_engine.AStreamShardFactory` for the AStream
program).
"""

from __future__ import annotations

import logging
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.minispe.checkpoint import pack_shard_states, unpack_shard_states
from repro.minispe.record import Record, RecordBatch, StreamElement
from repro.minispe.runtime import ExecutionBackend, stable_hash

logger = logging.getLogger("repro.minispe.parallel")

Op = Tuple[Any, ...]
"""One wire operation: ``(kind, *payload)``."""

DEFAULT_FRAME_RECORDS = 512
"""Records buffered per worker before a frame is flushed."""
DEFAULT_MAX_IN_FLIGHT = 8
"""Unacknowledged frames allowed per worker (credit window)."""
ACK_DELIVERY_CAP = 64
"""Sampled deliveries shipped per *regular* ack.

Regular acks must stay far below the OS pipe buffer: if a worker ever
blocked sending an oversized ack while the coordinator blocked sending
it a frame, the pair would deadlock.  One watermark can fire thousands
of results at once, so the worker ships at most this many delivery
samples per ack and carries the backlog forward; synchronous ops flush
the backlog completely, because during a sync the coordinator is
actively receiving and arbitrarily large payloads flow.
"""
ACK_OBS_EVENT_CAP = 16
"""Telemetry events piggybacked per *regular* ack (observe mode).

Same pipe-deadlock reasoning as :data:`ACK_DELIVERY_CAP`: incremental
event shipments stay tiny, and the full metric/trace snapshots only ride
synchronous (unlimited) acks, where the coordinator is known to be
receiving.
"""


class ShardWorkerError(RuntimeError):
    """A worker process failed (crashed, was killed, or raised).

    Carries the shard index so supervision code can target recovery.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard


@dataclass
class WorkerFailure:
    """One proactively detected worker death or wedge.

    Produced by the pool's liveness monitor (heartbeat probing), drained
    by supervision code via :meth:`ProcessShardPool.poll_failures`.
    ``reason`` is ``"exit"`` (process died while idle or mid-work) or
    ``"ack_deadline"`` (alive but wedged: outstanding frames made no
    progress within the deadline; the monitor SIGKILLs it so recovery
    can proceed).
    """

    shard: int
    reason: str
    detected_at: float
    pid: Optional[int]


class ShardProgram:
    """What runs inside one worker process.

    Subclasses interpret ops; :meth:`apply` returns ``None`` for
    asynchronous ops and a (picklable) reply for synchronous ones —
    the pool's :meth:`ProcessShardPool.sync` contract.
    """

    def apply(self, op: Op) -> Any:
        """Apply one op; return a reply for synchronous ops else None."""
        raise NotImplementedError

    def take_deliveries(
        self, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """Drain up to ``limit`` sampled ``(query_id, timestamp)``
        deliveries (all of them when ``limit`` is None)."""
        return []

    def take_obs(self, unlimited: bool) -> Optional[dict]:
        """Telemetry delta to piggyback on the next ack, or ``None``.

        ``unlimited`` acks (synchronous frames) may carry arbitrarily
        large payloads — full registry + trace snapshots; regular acks
        must stay small (incremental events only, capped at
        :data:`ACK_OBS_EVENT_CAP`).
        """
        return None

    def close(self) -> None:
        """Flush and release program resources before worker exit."""


def _worker_main(conn, factory, shard_index: int, shard_count: int) -> None:
    """Worker process entry: build the program, serve frames until close.

    Each frame is unpickled, its ops applied in order, and one ack —
    ``(replies, deliveries, obs, error)`` — is sent back.  An op raising
    does not kill the worker: the error travels back in the ack and the
    coordinator raises :class:`ShardWorkerError`.
    """
    program = factory(shard_index, shard_count)
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except EOFError:
                break
            ops: List[Op] = pickle.loads(payload)
            replies: List[Any] = []
            error: Optional[str] = None
            closing = False
            for op in ops:
                if op[0] == "close":
                    closing = True
                    replies.append(True)
                    continue
                try:
                    reply = program.apply(op)
                except Exception as exc:  # noqa: BLE001 - shipped upstream
                    error = f"{type(exc).__name__}: {exc}"
                    break
                if reply is not None:
                    replies.append(reply)
            # Synchronous frames (they produced replies, or are closing)
            # may carry the whole delivery backlog — the coordinator is
            # blocked receiving.  Regular acks stay small; see
            # ACK_DELIVERY_CAP.
            unlimited = bool(replies) or closing
            deliveries = program.take_deliveries(
                limit=None if unlimited else ACK_DELIVERY_CAP
            )
            obs = program.take_obs(unlimited)
            ack = (replies, deliveries, obs, error)
            conn.send_bytes(pickle.dumps(ack, protocol=pickle.HIGHEST_PROTOCOL))
            if closing:
                break
    finally:
        program.close()
        conn.close()


class _WorkerHandle:
    """Coordinator-side bookkeeping for one worker process."""

    __slots__ = ("process", "conn", "buffer", "buffered_records",
                 "outstanding", "alive", "last_progress")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.buffer: List[Op] = []
        self.buffered_records = 0
        self.outstanding = 0
        self.alive = True
        self.last_progress = time.monotonic()
        """Last send or ack on this pipe (ack-deadline probing)."""


class ProcessShardPool:
    """N worker processes fed over batched, credit-controlled pipes.

    The pool is transport only: it buffers ops per worker, flushes
    pickled frames, drains acks (invoking ``on_deliver`` for sampled
    result deliveries), and runs synchronous collective ops.  Shard
    *meaning* lives in the program factory.
    """

    def __init__(
        self,
        workers: int,
        program_factory: Callable[[int, int], ShardProgram],
        on_deliver: Optional[Callable[[str, int], None]] = None,
        frame_records: int = DEFAULT_FRAME_RECORDS,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        on_obs: Optional[Callable[[int, dict], None]] = None,
        on_stall: Optional[Callable[[int, int], None]] = None,
        heartbeat_interval_s: Optional[float] = None,
        ack_deadline_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if frame_records < 1:
            raise ValueError(f"frame_records must be >= 1, got {frame_records}")
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        import multiprocessing

        self.workers = workers
        self.frame_records = frame_records
        self.max_in_flight = max_in_flight
        self.on_deliver = on_deliver
        self.on_obs = on_obs
        """Invoked as ``on_obs(shard, payload)`` for every ack carrying a
        telemetry payload (observe mode piggybacking)."""
        self.on_stall = on_stall
        """Invoked as ``on_stall(shard, waited_ns)`` after a send blocked
        on the credit window (backpressure visibility)."""
        self.heartbeat_interval_s = heartbeat_interval_s
        """Liveness probe period; ``None`` disables the monitor thread.

        Without the monitor a worker that dies while *idle* is only
        discovered on the next send; with it, detection latency is
        bounded by the probe period (the idle-death satellite fix)."""
        self.ack_deadline_s = ack_deadline_s
        """Wedge escalation: a worker with outstanding frames but no
        pipe progress for this long is SIGKILLed so the coordinator's
        blocked ``recv`` fails over into normal recovery.  ``None``
        disables the deadline (heartbeats still detect process exits)."""
        self.op_count = 0
        """Ops submitted since the pool started (collect-staleness check)."""
        self.stall_counts: List[int] = [0] * workers
        """Sends that found the credit window full, per shard."""
        self._closed = False
        self._program_factory = program_factory
        self._context = multiprocessing.get_context("fork")
        self._failures: List[WorkerFailure] = []
        self._failures_lock = threading.Lock()
        self._monitor_stop = threading.Event()
        self._monitor_quiesced = False
        self._monitor_thread: Optional[threading.Thread] = None
        self._handles: List[_WorkerHandle] = [
            self._spawn_handle(shard, workers) for shard in range(workers)
        ]
        if heartbeat_interval_s is not None:
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop,
                name="shard-pool-monitor",
                daemon=True,
            )
            self._monitor_thread.start()

    def _spawn_handle(self, shard: int, shard_count: int) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._program_factory, shard, shard_count),
            daemon=True,
            name=f"shard-worker-{shard}",
        )
        process.start()
        child_conn.close()
        logger.debug(
            "started shard worker %d/%d (pid %s)",
            shard,
            shard_count,
            process.pid,
        )
        return _WorkerHandle(process, parent_conn)

    # -- liveness monitoring -----------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.heartbeat_interval_s):
            if self._closed or self._monitor_quiesced:
                continue
            self._probe_once()

    def _probe_once(self) -> None:
        """One heartbeat round: detect exits, escalate wedged workers."""
        now = time.monotonic()
        for shard, handle in enumerate(list(self._handles)):
            if not handle.alive:
                continue
            process = handle.process
            if not process.is_alive():
                handle.alive = False
                self._record_failure(shard, "exit", process.pid)
                continue
            deadline = self.ack_deadline_s
            if (
                deadline is not None
                and handle.outstanding > 0
                and now - handle.last_progress > deadline
            ):
                # select() on the pipe fd never consumes data, so this
                # probe is safe alongside a coordinator blocked in recv.
                try:
                    has_ack = handle.conn.poll(0)
                except OSError:
                    has_ack = False
                if has_ack:
                    continue
                logger.warning(
                    "shard worker %d (pid %s) missed ack deadline "
                    "(%.3fs); killing it",
                    shard,
                    process.pid,
                    deadline,
                )
                try:
                    if process.pid is not None:
                        os.kill(process.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                handle.alive = False
                self._record_failure(shard, "ack_deadline", process.pid)

    def _record_failure(
        self, shard: int, reason: str, pid: Optional[int]
    ) -> None:
        logger.warning(
            "shard worker %d (pid %s) failed: %s", shard, pid, reason
        )
        with self._failures_lock:
            self._failures.append(
                WorkerFailure(
                    shard=shard,
                    reason=reason,
                    detected_at=time.monotonic(),
                    pid=pid,
                )
            )

    def poll_failures(self) -> List[WorkerFailure]:
        """Drain proactively detected worker failures (may be empty)."""
        with self._failures_lock:
            failures = self._failures
            self._failures = []
        return failures

    # -- submission --------------------------------------------------------

    def submit(self, shard: int, op: Op, records: int = 1) -> None:
        """Buffer one op for ``shard``; flushes when the frame is full."""
        handle = self._handles[shard]
        if not handle.alive:
            raise ShardWorkerError(shard, "worker is down")
        handle.buffer.append(op)
        handle.buffered_records += records
        self.op_count += 1
        if handle.buffered_records >= self.frame_records:
            self._flush_worker(shard)

    def broadcast(self, op: Op) -> None:
        """Buffer one op for every shard (control-plane fan-out)."""
        for shard in range(self.workers):
            self.submit(shard, op)

    def flush(self) -> None:
        """Send every partially filled frame buffer."""
        for shard in range(self.workers):
            self._flush_worker(shard)

    def drain(self) -> None:
        """Flush, then block until every sent frame is acknowledged."""
        self.flush()
        for shard, handle in enumerate(self._handles):
            while handle.outstanding:
                self._drain_one_ack(shard)

    # -- synchronous collectives -------------------------------------------

    def sync(self, op: Op) -> List[Any]:
        """Run one synchronous op on every shard; return per-shard replies.

        All buffers are flushed and outstanding acks drained first, so
        the op observes everything submitted before it (the aligned
        collection point used for snapshots and result merges).
        """
        self.drain()
        replies: List[Any] = []
        for shard in range(self.workers):
            replies.append(self._sync_one_drained(shard, op))
        return replies

    def sync_one(self, shard: int, op: Op) -> Any:
        """Run one synchronous op on a single shard and await its reply."""
        handle = self._handles[shard]
        if not handle.alive:
            raise ShardWorkerError(shard, "worker is down")
        self._flush_worker(shard)
        while handle.outstanding:
            self._drain_one_ack(shard)
        return self._sync_one_drained(shard, op)

    def _sync_one_drained(self, shard: int, op: Op) -> Any:
        handle = self._handles[shard]
        self._send_frame(shard, [op])
        reply = None
        got_reply = False
        while handle.outstanding:
            replies = self._drain_one_ack(shard)
            if replies:
                reply = replies[0]
                got_reply = True
        if not got_reply:
            raise ShardWorkerError(
                shard, f"synchronous op {op[0]!r} returned no reply"
            )
        return reply

    # -- transport ---------------------------------------------------------

    def _flush_worker(self, shard: int) -> None:
        handle = self._handles[shard]
        if not handle.buffer:
            return
        frame = handle.buffer
        handle.buffer = []
        handle.buffered_records = 0
        self._send_frame(shard, frame)

    def _send_frame(self, shard: int, frame: List[Op]) -> None:
        handle = self._handles[shard]
        if not handle.alive:
            raise ShardWorkerError(shard, "worker is down")
        if handle.outstanding >= self.max_in_flight:
            self.stall_counts[shard] += 1
            if self.on_stall is not None:
                started = time.perf_counter_ns()
                while handle.outstanding >= self.max_in_flight:
                    self._drain_one_ack(shard)
                self.on_stall(shard, time.perf_counter_ns() - started)
            else:
                while handle.outstanding >= self.max_in_flight:
                    self._drain_one_ack(shard)
        payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            handle.conn.send_bytes(payload)
        except (BrokenPipeError, OSError) as exc:
            handle.alive = False
            raise ShardWorkerError(shard, f"send failed: {exc}") from exc
        handle.outstanding += 1
        handle.last_progress = time.monotonic()

    def _drain_one_ack(self, shard: int) -> List[Any]:
        handle = self._handles[shard]
        try:
            payload = handle.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            handle.alive = False
            raise ShardWorkerError(shard, f"worker died: {exc}") from exc
        handle.outstanding -= 1
        handle.last_progress = time.monotonic()
        replies, deliveries, obs, error = pickle.loads(payload)
        if self.on_deliver is not None:
            for query_id, timestamp in deliveries:
                self.on_deliver(query_id, timestamp)
        if obs is not None and self.on_obs is not None:
            self.on_obs(shard, obs)
        if error is not None:
            raise ShardWorkerError(shard, error)
        return replies

    # -- lifecycle ---------------------------------------------------------

    def resize(self, new_workers: int) -> None:
        """Replace the worker set with ``new_workers`` fresh shards.

        Transport-level only: the caller is responsible for having
        drained and exported shard state first, and for restoring the
        re-split state into the new workers afterwards (see
        :meth:`ShardedRuntime.begin_resize`).  The pool object survives
        — delivery/telemetry callbacks, op counting, and the liveness
        monitor carry over to the new worker set.
        """
        if new_workers < 1:
            raise ValueError(f"need at least one worker, got {new_workers}")
        if self._closed:
            raise RuntimeError("cannot resize a closed pool")
        self._monitor_quiesced = True
        try:
            old_handles = self._handles
            for shard, handle in enumerate(old_handles):
                self._close_handle(shard, handle)
            self.workers = new_workers
            self.stall_counts = [0] * new_workers
            self._handles = [
                self._spawn_handle(shard, new_workers)
                for shard in range(new_workers)
            ]
        finally:
            self._monitor_quiesced = False

    def _close_handle(
        self, shard: int, handle: _WorkerHandle, join_timeout: float = 5.0
    ) -> None:
        """Gracefully retire one worker: close op, drain acks, join."""
        if handle.alive:
            try:
                frame = handle.buffer + [("close",)]
                handle.buffer = []
                handle.buffered_records = 0
                handle.conn.send_bytes(
                    pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
                )
                outstanding = handle.outstanding + 1
                while outstanding:
                    payload = handle.conn.recv_bytes()
                    outstanding -= 1
                    _replies, deliveries, obs, _error = pickle.loads(payload)
                    if self.on_deliver is not None:
                        for query_id, timestamp in deliveries:
                            self.on_deliver(query_id, timestamp)
                    if obs is not None and self.on_obs is not None:
                        self.on_obs(shard, obs)
            except (BrokenPipeError, EOFError, OSError):
                pass
        handle.alive = False
        handle.outstanding = 0
        if handle.process.is_alive():
            handle.process.join(timeout=join_timeout)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=join_timeout)
        try:
            handle.conn.close()
        except OSError:
            pass

    def _stop_monitor(self) -> None:
        self._monitor_stop.set()
        thread = self._monitor_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=2)
        self._monitor_thread = None

    def kill(self, shard: int) -> None:
        """SIGKILL one worker (chaos testing); its shard state is lost.

        Subsequent submissions to the shard raise
        :class:`ShardWorkerError`; recovery replaces the whole pool and
        replays from the coordinator's input log.
        """
        handle = self._handles[shard]
        if handle.process.pid is not None and handle.alive:
            logger.info(
                "killing shard worker %d (pid %s)", shard, handle.process.pid
            )
            try:
                os.kill(handle.process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            handle.process.join(timeout=5)
        handle.alive = False

    @property
    def alive_workers(self) -> int:
        """Workers currently believed healthy."""
        return sum(1 for handle in self._handles if handle.alive)

    def close(self) -> None:
        """Graceful shutdown: flush, send close ops, join all workers."""
        if self._closed:
            return
        self._closed = True
        self._stop_monitor()
        for shard, handle in enumerate(self._handles):
            if not handle.alive:
                continue
            try:
                handle.buffer.append(("close",))
                self._flush_worker(shard)
                while handle.outstanding:
                    self._drain_one_ack(shard)
            except ShardWorkerError:
                pass
        self.terminate(join_timeout=5)

    def terminate(self, join_timeout: float = 2.0) -> None:
        """Hard shutdown: kill and join every worker, close pipes."""
        self._closed = True
        self._stop_monitor()
        for handle in self._handles:
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self._handles:
            handle.process.join(timeout=join_timeout)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=join_timeout)
            handle.alive = False
            try:
                handle.conn.close()
            except OSError:
                pass


class ShardedRuntime(ExecutionBackend):
    """An :class:`ExecutionBackend` over a :class:`ProcessShardPool`.

    Data records are hash-partitioned to shards by
    ``stable_hash(record.key) % workers`` — the same rule the in-process
    runtime uses for HASH edges, so per-key operator state lands on
    exactly one worker and both sides of a co-partitioned join meet.
    Control elements (watermarks, changelog markers, checkpoint
    barriers) are broadcast to every shard in FIFO op order, preserving
    the alignment semantics of the in-process path.

    Elastic resize (ISSUE 6): :meth:`begin_resize` exports every shard's
    state, re-splits it through the injected ``repartitioner`` (key-aware
    code lives above this substrate — see ``repro.core.migration``),
    replaces the worker set, and marks every new shard *pending*.
    Ingest continues: ops destined for a pending shard are buffered in
    FIFO order and replayed — after the shard's re-split state and the
    caller-supplied replay prefix (watermark re-injection) — when
    :meth:`migration_step` restores it.  Synchronous collectives finish
    the migration first, so snapshots, result merges, and drains always
    observe a fully consistent pool.
    """

    def __init__(
        self,
        pool: ProcessShardPool,
        repartitioner: Optional[Callable[[List[Any], int], List[Any]]] = None,
    ) -> None:
        self.pool = pool
        self._shards = pool.workers
        self.repartitioner = repartitioner
        """Re-splits per-shard state payloads for a new shard count."""
        self._pending: List[int] = []
        self._pending_states: Dict[int, Any] = {}
        self._buffers: Dict[int, List[Tuple[Op, int]]] = {}
        self._replay_prefix: List[Tuple[str, StreamElement]] = []
        self.migrations_completed = 0
        self.migration_records_buffered = 0

    # -- data path ---------------------------------------------------------

    def push(self, source_name: str, element: StreamElement) -> None:
        """Route one element: records to their key shard, control to all."""
        if self._pending_states:
            self._push_migrating(source_name, element)
            return
        pool = self.pool
        if isinstance(element, Record):
            shard = stable_hash(element.key) % self._shards
            pool.submit(shard, ("push", source_name, element))
        elif isinstance(element, RecordBatch):
            # A wire trace context rides as an optional 4th op element so
            # untraced frames keep the 3-tuple shape (and its pickles).
            trace = element.trace
            if self._shards == 1:
                op = (
                    ("batch", source_name, element.records)
                    if trace is None
                    else ("batch", source_name, element.records, trace)
                )
                pool.submit(0, op, records=len(element.records))
                return
            buckets: List[Optional[List[Record]]] = [None] * self._shards
            for record in element.records:
                index = stable_hash(record.key) % self._shards
                bucket = buckets[index]
                if bucket is None:
                    buckets[index] = [record]
                else:
                    bucket.append(record)
            for index, bucket in enumerate(buckets):
                if bucket is not None:
                    op = (
                        ("batch", source_name, bucket)
                        if trace is None
                        else ("batch", source_name, bucket, trace)
                    )
                    pool.submit(index, op, records=len(bucket))
        else:
            pool.broadcast(("push", source_name, element))

    def _push_migrating(self, source_name: str, element: StreamElement) -> None:
        """Route while a migration is in flight: buffer pending shards."""
        if isinstance(element, Record):
            shard = stable_hash(element.key) % self._shards
            self._submit(shard, ("push", source_name, element))
        elif isinstance(element, RecordBatch):
            trace = element.trace
            buckets: Dict[int, List[Record]] = {}
            for record in element.records:
                buckets.setdefault(
                    stable_hash(record.key) % self._shards, []
                ).append(record)
            for index, bucket in buckets.items():
                op = (
                    ("batch", source_name, bucket)
                    if trace is None
                    else ("batch", source_name, bucket, trace)
                )
                self._submit(index, op, records=len(bucket))
        else:
            for shard in range(self._shards):
                self._submit(shard, ("push", source_name, element))

    def _submit(self, shard: int, op: Op, records: int = 1) -> None:
        if shard in self._pending_states:
            self._buffers[shard].append((op, records))
            self.migration_records_buffered += records
        else:
            self.pool.submit(shard, op, records=records)

    # -- elastic resize ----------------------------------------------------

    @property
    def migration_active(self) -> bool:
        """True while any shard still awaits its re-split state."""
        return bool(self._pending_states)

    def begin_resize(
        self,
        new_workers: int,
        replay_prefix: Optional[List[Tuple[str, StreamElement]]] = None,
    ) -> None:
        """Export, re-split, and swap the worker set without losing state.

        ``replay_prefix`` is pushed to each shard right after its state
        restore and before any buffered ops — the engine passes its
        per-stream watermark re-injection here, mirroring what
        checkpoint recovery does, because watermark progress is not part
        of operator snapshots.
        """
        if self.repartitioner is None:
            raise RuntimeError("runtime has no repartitioner; cannot resize")
        self.finish_migration()
        donor_states = self.pool.sync(("export",))
        new_states = self.repartitioner(donor_states, new_workers)
        self.pool.resize(new_workers)
        self._shards = new_workers
        self._pending = list(range(new_workers))
        self._pending_states = dict(enumerate(new_states))
        self._buffers = {shard: [] for shard in range(new_workers)}
        self._replay_prefix = list(replay_prefix or [])
        # Results moved between shards: poke the op counter so cached
        # coordinator-side merges are recognised as stale.
        self.pool.op_count += 1

    def migration_step(self) -> bool:
        """Restore one pending shard and replay its buffered ops.

        Returns True when a shard was migrated, False when no migration
        is in flight.  Incremental stepping keeps each ingest pause
        bounded by one shard's state size instead of the whole pool's.
        """
        if not self._pending:
            return False
        shard = self._pending.pop(0)
        state = self._pending_states.pop(shard)
        self.pool.sync_one(shard, ("restore", state))
        for source_name, element in self._replay_prefix:
            self.pool.submit(shard, ("push", source_name, element))
        for op, records in self._buffers.pop(shard):
            self.pool.submit(shard, op, records=records)
        if not self._pending:
            self._replay_prefix = []
            self.migrations_completed += 1
        return True

    def finish_migration(self) -> None:
        """Drive any in-flight migration to completion."""
        while self.migration_step():
            pass

    def close(self) -> None:
        """Flush everything and shut the worker pool down."""
        self.finish_migration()
        self.pool.close()

    def terminate(self) -> None:
        """Hard-stop the pool (used when recovery replaces the runtime).

        An in-flight migration is abandoned: buffered ops are dropped
        because the records also live in the coordinator's input log,
        which recovery replays.
        """
        self._pending = []
        self._pending_states = {}
        self._buffers = {}
        self._replay_prefix = []
        self.pool.terminate()

    # -- checkpointing -----------------------------------------------------

    def completed_checkpoint(self, checkpoint_id: int) -> Optional[Dict]:
        """Aligned-barrier collection of every shard's snapshot.

        The barriers were broadcast through the FIFO op buffers; this
        drains all shards (so every barrier has traversed its worker's
        dataflow) and gathers the per-shard states into one packed
        snapshot.  Returns ``None`` if any shard has no completed
        snapshot for ``checkpoint_id``.
        """
        self.finish_migration()
        states = self.pool.sync(("snapshot", checkpoint_id))
        if any(state is None or state.get("runtime") is None for state in states):
            return None
        return pack_shard_states(states)

    def restore_checkpoint(self, snapshot: Dict) -> None:
        """Ship each shard's state back to its (fresh) worker.

        A snapshot taken at a different shard count is re-split through
        the repartitioner (when configured), so recovery after a resize
        — or into a resized pool — restores the same keyed state under
        the new hash modulus.
        """
        self.finish_migration()
        states = unpack_shard_states(snapshot)
        if states is None:
            raise ValueError("not a sharded checkpoint snapshot")
        if len(states) != self._shards:
            if self.repartitioner is None:
                raise ValueError(
                    f"snapshot has {len(states)} shards, pool has "
                    f"{self._shards}"
                )
            states = self.repartitioner(states, self._shards)
        for shard, state in enumerate(states):
            self.pool.sync_one(shard, ("restore", state))

    # -- introspection -----------------------------------------------------

    def records_processed(self) -> Dict[str, int]:
        """Records processed per vertex, summed across shards."""
        self.finish_migration()
        totals: Dict[str, int] = {}
        for stats in self.pool.sync(("stats",)):
            for vertex, count in stats.get("records_processed", {}).items():
                totals[vertex] = totals.get(vertex, 0) + count
        return totals

    def collect_channels(self) -> List[dict]:
        """Every shard's ``QueryChannels`` snapshot (for result merging)."""
        self.finish_migration()
        return self.pool.sync(("collect",))

    def collect_stats(self) -> List[dict]:
        """Every shard's raw stats reply."""
        self.finish_migration()
        return self.pool.sync(("stats",))

    def drain(self) -> None:
        """Block until every shard applied everything submitted so far."""
        self.finish_migration()
        self.pool.drain()
