"""Checkpoint coordination and replay-based recovery.

Exactly-once in this substrate follows the Flink model the paper relies on
(§3.3, citing Carbone et al.):

1. every element pushed into a source is appended to a :class:`SourceLog`
   carrying a *global* sequence number, so the cross-source interleaving
   of records and changelog markers is reproducible;
2. the :class:`CheckpointCoordinator` periodically injects a
   :class:`~repro.minispe.record.CheckpointBarrier` into *all* sources and
   records the global log offset at that point;
3. operator instances snapshot their state when the barrier is aligned on
   all their input channels (handled by the runtime);
4. on failure, a fresh runtime is deployed, instance state is restored
   from the last *completed* checkpoint, and the log is replayed from the
   recorded offset in the original global order.

Determinism of the data path (event-time windows, changelog-driven slices)
guarantees the replayed run produces the same outputs, which the tests
assert end-to-end.

Alignment constraint: instances snapshot when the *last* input channel
delivers the barrier, without blocking already-barriered channels.  That
is consistent exactly when no data is pushed into an already-barriered
source before the other sources' barriers — which the coordinator (and
the engine's ``checkpoint()``) guarantee by injecting all barriers
back-to-back within one synchronous call.  Driving barriers by hand
through ``JobRuntime.push`` must respect the same rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.minispe.record import CheckpointBarrier, StreamElement
from repro.minispe.runtime import JobRuntime


SHARD_STATE_KEY = "__shards__"
"""Marker key distinguishing packed multi-shard snapshots from the plain
``{vertex: {instance: state}}`` shape produced by a single runtime."""


def pack_shard_states(states: List[Any]) -> Dict[str, Any]:
    """Wrap per-shard snapshots into one checkpoint-shaped payload.

    The process backend collects one snapshot per worker shard; packing
    them under :data:`SHARD_STATE_KEY` lets the existing checkpoint
    plumbing (``EngineCheckpoint``, supervisors, tests) carry sharded
    state without learning a new type.
    """
    return {SHARD_STATE_KEY: list(states)}


def unpack_shard_states(state: Dict[str, Any]) -> Optional[List[Any]]:
    """Per-shard snapshots from a packed payload, or None if not packed."""
    if not isinstance(state, dict):
        return None
    shards = state.get(SHARD_STATE_KEY)
    if shards is None:
        return None
    return list(shards)


def repartition_packed(
    packed: Dict[str, Any],
    new_count: int,
    repartitioner: Callable[[List[Any], int], List[Any]],
) -> Dict[str, Any]:
    """Re-shard a packed snapshot through the pack/unpack seam.

    Elastic resize and N-shard-checkpoint-into-M-worker-pool recovery
    both reduce to: unpack the per-shard states, hand them to a
    key-aware ``repartitioner`` (the sharding rule lives above this
    substrate — see ``repro.core.migration``), and re-pack.  Raises
    :class:`ValueError` when the payload is not a packed shard snapshot.
    """
    states = unpack_shard_states(packed)
    if states is None:
        raise ValueError("not a packed shard snapshot")
    return pack_shard_states(repartitioner(states, new_count))


def incremental_delta(state: Any) -> Tuple[int, int]:
    """Sum the incremental lsm deltas buried in a checkpoint payload.

    Walks a checkpoint state tree — packed shard snapshots, the plain
    ``{vertex: {instance: state}}`` shape, or any nesting of
    dict/list/tuple — and totals every embedded lsm store manifest
    (dicts with ``backend == "lsm"``): returns
    ``(new_segments, new_bytes)``, i.e. how many spill segments (and
    on-disk bytes) this checkpoint shipped that the previous one did
    not.  Zero for pure in-memory checkpoints; the engine reports it
    next to the pickled payload size so incremental checkpoint cost is
    observable.
    """
    new_segments = 0
    new_bytes = 0
    stack = [state]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            if node.get("backend") == "lsm" and "new_segments" in node:
                new_segments += len(node.get("new_segments", ()))
                new_bytes += int(node.get("new_bytes", 0))
                continue
            stack.extend(node.values())
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
    return new_segments, new_bytes


class CheckpointFailed(RuntimeError):
    """A triggered checkpoint was not acknowledged by every instance.

    Carries the id of the dropped snapshot so supervision code can log
    it; the coordinator's completed-checkpoint list is untouched, and
    recovery falls back to the previous completed checkpoint.
    """

    def __init__(self, checkpoint_id: int, message: str) -> None:
        super().__init__(message)
        self.checkpoint_id = checkpoint_id


class SourceLog:
    """Globally ordered (in-memory) log of every pushed source element.

    Long soak runs would grow the log without bound; :meth:`truncate`
    drops the prefix already covered by a completed checkpoint while
    keeping *global offsets stable* — ``position`` and ``replay`` keep
    speaking pre-compaction offsets.
    """

    def __init__(self, source_names: List[str]) -> None:
        if not source_names:
            raise ValueError("a job needs at least one source to log")
        self._source_names = list(source_names)
        self._entries: List[Tuple[str, StreamElement]] = []
        self._base_offset = 0

    def append(self, source: str, element: StreamElement) -> None:
        """Record one pushed element in global order."""
        if source not in self._source_names:
            raise KeyError(f"unknown source {source!r}")
        self._entries.append((source, element))

    @property
    def position(self) -> int:
        """Current global offset (the index of the next element)."""
        return self._base_offset + len(self._entries)

    @property
    def base_offset(self) -> int:
        """First global offset still retained (grows with truncation)."""
        return self._base_offset

    @property
    def retained(self) -> int:
        """Entries currently held in memory."""
        return len(self._entries)

    def truncate(self, offset: int) -> int:
        """Drop entries before global ``offset``; returns how many.

        ``offset`` must not exceed :attr:`position`.  Truncating below
        the current base is a no-op (already compacted).
        """
        if offset > self.position:
            raise ValueError(
                f"cannot truncate to {offset}: log position is {self.position}"
            )
        dropped = offset - self._base_offset
        if dropped <= 0:
            return 0
        del self._entries[:dropped]
        self._base_offset = offset
        return dropped

    def replay(self, offset: int) -> List[Tuple[str, StreamElement]]:
        """``(source, element)`` pairs from global ``offset`` onward."""
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if offset < self._base_offset:
            raise ValueError(
                f"offset {offset} was compacted away "
                f"(base offset is {self._base_offset})"
            )
        return list(self._entries[offset - self._base_offset :])

    def sources(self) -> List[str]:
        """The logged source names."""
        return list(self._source_names)


@dataclass
class CompletedCheckpoint:
    """A checkpoint that every operator instance acknowledged."""

    checkpoint_id: int
    offset: int
    state: Dict[str, Dict[int, Any]] = field(repr=False, default_factory=dict)


class CheckpointCoordinator:
    """Injects barriers, tracks completion, and performs recovery.

    The coordinator wraps a running :class:`JobRuntime`; all element pushes
    must go through :meth:`push` so the source log stays complete.
    """

    def __init__(
        self,
        runtime: JobRuntime,
        runtime_factory: Optional[Callable[[], JobRuntime]] = None,
        auto_compact: bool = False,
    ) -> None:
        self.runtime = runtime
        self._runtime_factory = runtime_factory
        self._auto_compact = auto_compact
        source_names = [vertex.name for vertex in runtime.graph.sources()]
        self.log = SourceLog(source_names)
        self._next_checkpoint_id = 1
        self.completed: List[CompletedCheckpoint] = []

    # -- normal operation --------------------------------------------------

    def push(self, source: str, element: StreamElement) -> None:
        """Push an element through the coordinator (logged, then routed)."""
        self.log.append(source, element)
        self.runtime.push(source, element)

    def trigger_checkpoint(self) -> int:
        """Inject a barrier into every source; return the checkpoint id.

        Because execution is synchronous, the barrier has fully traversed
        the dataflow when this method returns, so completion is immediate
        unless an operator failed to snapshot — in which case the snapshot
        is dropped and :class:`CheckpointFailed` is raised so callers can
        distinguish success from a silently missing checkpoint.
        """
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        offset = self.log.position
        barrier = CheckpointBarrier(timestamp=0, checkpoint_id=checkpoint_id)
        for source in self.log.sources():
            # Barriers are control-plane: they are not logged as data, the
            # recovery path re-runs from offsets instead.
            self.runtime.push(source, barrier)
        state = self.runtime.completed_checkpoint(checkpoint_id)
        if state is None:
            raise CheckpointFailed(
                checkpoint_id,
                f"checkpoint {checkpoint_id} was not acknowledged by all "
                f"operator instances; the snapshot is dropped",
            )
        self.completed.append(
            CompletedCheckpoint(
                checkpoint_id=checkpoint_id, offset=offset, state=state
            )
        )
        if self._auto_compact:
            self.compact()
        return checkpoint_id

    def compact(self) -> int:
        """Truncate the log up to the last completed checkpoint's offset.

        Checkpoints older than the latest become unusable for recovery
        and are dropped alongside their log prefix; returns the number of
        log entries reclaimed.  A no-op before the first completed
        checkpoint.
        """
        checkpoint = self.last_completed
        if checkpoint is None:
            return 0
        dropped = self.log.truncate(checkpoint.offset)
        if len(self.completed) > 1:
            self.completed = [checkpoint]
        return dropped

    @property
    def last_completed(self) -> Optional[CompletedCheckpoint]:
        """The most recent completed checkpoint, if any."""
        return self.completed[-1] if self.completed else None

    # -- recovery ----------------------------------------------------------

    def recover(self) -> JobRuntime:
        """Simulate failure + recovery: fresh runtime, restore, replay.

        Returns the new runtime (also stored on :attr:`runtime`).  If no
        checkpoint completed yet, recovery replays the whole log from the
        beginning into fresh state.
        """
        if self._runtime_factory is None:
            raise RuntimeError(
                "recovery needs a runtime_factory to redeploy the job"
            )
        new_runtime = self._runtime_factory()
        checkpoint = self.last_completed
        if checkpoint is not None:
            new_runtime.restore_checkpoint(checkpoint.state)
            offset = checkpoint.offset
        else:
            offset = 0
        self.runtime = new_runtime
        for source, element in self.log.replay(offset):
            new_runtime.push(source, element)
        return new_runtime
