"""Operator state backends with snapshot/restore support.

Two kinds of state mirror Flink's model:

* :class:`KeyedState` — a per-key map scoped to the record key currently
  being processed.  Shared operators use it for per-partition slice stores.
* :class:`OperatorState` — a single value per operator instance (e.g. the
  set of active queries inside a shared operator).

Both support :meth:`snapshot` / :meth:`restore` used by the checkpoint
coordinator.  Snapshots are deep copies so later mutation of live state
cannot corrupt a completed checkpoint.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class KeyedState:
    """A per-key state map with a default factory.

    Example::

        state = KeyedState(default_factory=list)
        state.get(key).append(tuple_)
    """

    def __init__(self, default_factory: Optional[Callable[[], Any]] = None) -> None:
        self._entries: Dict[Any, Any] = {}
        self._default_factory = default_factory

    def get(self, key: Any) -> Any:
        """Return the state for ``key``, creating it via the factory if absent."""
        if key not in self._entries:
            if self._default_factory is None:
                return None
            self._entries[key] = self._default_factory()
        return self._entries[key]

    def put(self, key: Any, value: Any) -> None:
        """Set the state for ``key``."""
        self._entries[key] = value

    def contains(self, key: Any) -> bool:
        """Return True if state exists for ``key``."""
        return key in self._entries

    def remove(self, key: Any) -> None:
        """Drop the state for ``key`` (no-op if absent)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop all per-key state."""
        self._entries.clear()

    def keys(self) -> Iterator[Any]:
        """Iterate over keys that currently hold state."""
        return iter(list(self._entries.keys()))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over ``(key, state)`` pairs."""
        return iter(list(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[Any, Any]:
        """Return a deep copy of all entries for checkpointing."""
        return copy.deepcopy(self._entries)

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        """Replace the entries with a deep copy of ``snapshot``."""
        self._entries = copy.deepcopy(snapshot)


class OperatorState:
    """A single mutable value per operator instance."""

    def __init__(self, initial: Any = None) -> None:
        self._value = initial

    @property
    def value(self) -> Any:
        """The current state value."""
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._value = new_value

    def snapshot(self) -> Any:
        """Return a deep copy of the value for checkpointing."""
        return copy.deepcopy(self._value)

    def restore(self, snapshot: Any) -> None:
        """Replace the value with a deep copy of ``snapshot``."""
        self._value = copy.deepcopy(snapshot)
