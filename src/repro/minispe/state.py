"""Operator state backends with snapshot/restore support.

Two kinds of state mirror Flink's model:

* :class:`KeyedState` — a per-key map scoped to the record key currently
  being processed.  Shared operators use it for per-partition slice stores.
* :class:`OperatorState` — a single value per operator instance (e.g. the
  set of active queries inside a shared operator).

Both support :meth:`snapshot` / :meth:`restore` used by the checkpoint
coordinator.  Snapshots are copy-on-write: immutable values (tuples of
scalars, numbers, strings) are shared with the live map — they cannot be
mutated in place, so sharing is safe — and only mutable values pay a
deep copy.  Later mutation of live state therefore still cannot corrupt
a completed checkpoint, at a fraction of the old whole-map
``copy.deepcopy`` cost (benchmarked in ``bench_ablation_storage.py``).

:class:`KeyedState` sits on the pluggable
:class:`repro.store.StateStore` interface: the default backend is the
in-memory dict; passing an :class:`repro.store.LSMStateStore` (or
``store=make_state_store("lsm")``) spills values to disk so keyed state
can exceed RAM.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.store.backend import MemoryStateStore, StateStore

_IMMUTABLE_SCALARS = (int, float, str, bytes, bool, frozenset, type(None))


def _copy_value(value: Any) -> Any:
    """Copy-on-write snapshot copy: share immutables, deep-copy the rest."""
    if isinstance(value, _IMMUTABLE_SCALARS):
        return value
    if type(value) is tuple:
        if all(isinstance(item, _IMMUTABLE_SCALARS) for item in value):
            return value
        return tuple(_copy_value(item) for item in value)
    return copy.deepcopy(value)


class KeyedState:
    """A per-key state map with a default factory.

    Example::

        state = KeyedState(default_factory=list)
        state.get(key).append(tuple_)

    ``store`` selects the physical backend (in-memory dict by default);
    any :class:`repro.store.StateStore` works, including the
    spill-to-disk LSM store.
    """

    def __init__(
        self,
        default_factory: Optional[Callable[[], Any]] = None,
        store: Optional[StateStore] = None,
    ) -> None:
        self._store: StateStore = store if store is not None else MemoryStateStore()
        self._default_factory = default_factory

    @property
    def store(self) -> StateStore:
        """The physical backend this state sits on."""
        return self._store

    def get(self, key: Any) -> Any:
        """Return the state for ``key``, creating it via the factory if absent.

        This is the *read-modify* accessor: with a ``default_factory``
        the created entry is inserted so callers can mutate it in place.
        Use :meth:`peek` on read-only paths — probing here permanently
        materialises an entry per probed key.
        """
        value = self._store.get(key, _MISSING)
        if value is _MISSING:
            if self._default_factory is None:
                return None
            value = self._default_factory()
            self._store.put(key, value)
        return value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Return the state for ``key`` without creating it.

        The read-only sibling of :meth:`get`: absent keys return
        ``default`` and the map is left untouched, so probes do not
        inflate state size or snapshot cost.
        """
        return self._store.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        """Set the state for ``key``."""
        self._store.put(key, value)

    def contains(self, key: Any) -> bool:
        """Return True if state exists for ``key``."""
        return key in self._store

    def remove(self, key: Any) -> None:
        """Drop the state for ``key`` (no-op if absent)."""
        self._store.delete(key)

    def clear(self) -> None:
        """Drop all per-key state."""
        self._store.clear()

    def keys(self) -> Iterator[Any]:
        """Iterate over keys that currently hold state."""
        return self._store.keys()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over ``(key, state)`` pairs."""
        return self._store.items()

    def __len__(self) -> int:
        return len(self._store)

    def snapshot(self) -> Dict[Any, Any]:
        """Copy-on-write snapshot of all entries for checkpointing.

        Immutable values are shared (they cannot change under the
        checkpoint); mutable values are deep-copied.
        """
        return {key: _copy_value(value) for key, value in self._store.items()}

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        """Replace the entries from ``snapshot`` (copy-on-write copies)."""
        self._store.clear()
        for key, value in snapshot.items():
            self._store.put(key, _copy_value(value))


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


class OperatorState:
    """A single mutable value per operator instance."""

    def __init__(self, initial: Any = None) -> None:
        self._value = initial

    @property
    def value(self) -> Any:
        """The current state value."""
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._value = new_value

    def snapshot(self) -> Any:
        """Return a deep copy of the value for checkpointing."""
        return copy.deepcopy(self._value)

    def restore(self, snapshot: Any) -> None:
        """Replace the value with a deep copy of ``snapshot``."""
        self._value = copy.deepcopy(snapshot)
