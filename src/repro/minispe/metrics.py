"""Metrics primitives: counters, gauges, and reservoir histograms.

AStream extends Flink's latency-marker metrics (§3.4): the sink of every
query periodically samples a tuple and measures end-to-end latency, and
results are collected centrally.  The harness builds those QoS metrics out
of these primitives; they are dependency-free so benchmarks pay minimal
overhead.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increase the counter (``amount`` must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str = "gauge", initial: float = 0.0) -> None:
        self.name = name
        self.value = initial

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = value


class Histogram:
    """Record samples; report count/mean/min/max/percentiles.

    Keeps all samples (experiments here are bounded); ``max_samples``
    enables simple reservoir-free truncation for long benchmark runs.
    """

    def __init__(self, name: str = "histogram", max_samples: int = 1_000_000) -> None:
        self.name = name
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._dropped = 0
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        """Add one sample."""
        if len(self._samples) >= self._max_samples:
            self._dropped += 1
            return
        self._samples.append(value)
        self._sorted = None

    def _ordered(self) -> List[float]:
        # Sorted view cached between mutations: the dashboard reads many
        # percentiles per snapshot and must not re-sort per call.
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    @property
    def count(self) -> int:
        """Number of recorded samples (excluding dropped)."""
        return len(self._samples)

    @property
    def dropped(self) -> int:
        """Samples dropped after hitting ``max_samples``."""
        return self._dropped

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank; 0 <= p <= 100).

        Boundary semantics are pinned explicitly: ``p=0`` is the
        minimum, ``p=100`` is the maximum, and a single-sample
        histogram returns that sample for every ``p`` — the nearest-rank
        index is clamped into ``[1, n]`` so float rounding at the
        reservoir boundaries can never index outside the samples.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = self._ordered()
        size = len(ordered)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = min(size, max(1, math.ceil(p / 100 * size)))
        return ordered[rank - 1]

    def quantiles(self, ps: Iterable[float]) -> List[float]:
        """Bulk :meth:`percentile`: one sort, many read-offs."""
        return [self.percentile(p) for p in ps]

    def samples(self) -> List[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def reservoir(self, size: int = 64) -> List[float]:
        """Up to ``size`` samples evenly strided across the sorted data.

        A deterministic order-statistic sketch: concatenating the
        reservoirs of several histograms and reading percentiles off the
        union approximates the merged distribution, which is how
        cross-process snapshots merge without shipping every sample.
        """
        if size < 1:
            raise ValueError(f"reservoir size must be >= 1, got {size}")
        ordered = self._ordered()
        if len(ordered) <= size:
            return list(ordered)
        if size == 1:
            return [ordered[-1]]
        step = (len(ordered) - 1) / (size - 1)
        return [ordered[round(i * step)] for i in range(size)]

    def reset(self) -> None:
        """Drop all samples."""
        self._samples.clear()
        self._dropped = 0
        self._sorted = None


class MetricRegistry:
    """Named metric lookup with lazy creation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counter_value(self, name: str) -> Optional[int]:
        """The counter's value, or None if it was never created."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else None

    def snapshot(self) -> Dict[str, float]:
        """A flat name → value view (histograms report their mean)."""
        view: Dict[str, float] = {}
        for name, counter in self._counters.items():
            view[name] = counter.value
        for name, gauge in self._gauges.items():
            view[name] = gauge.value
        for name, histogram in self._histograms.items():
            view[f"{name}.mean"] = histogram.mean()
        return view
