"""Metrics primitives: counters, gauges, and reservoir histograms.

AStream extends Flink's latency-marker metrics (§3.4): the sink of every
query periodically samples a tuple and measures end-to-end latency, and
results are collected centrally.  The harness builds those QoS metrics out
of these primitives; they are dependency-free so benchmarks pay minimal
overhead.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increase the counter (``amount`` must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str = "gauge", initial: float = 0.0) -> None:
        self.name = name
        self.value = initial

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = value


class Histogram:
    """Record samples; report count/mean/min/max/percentiles.

    Keeps all samples (experiments here are bounded); ``max_samples``
    enables simple reservoir-free truncation for long benchmark runs.
    """

    def __init__(self, name: str = "histogram", max_samples: int = 1_000_000) -> None:
        self.name = name
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._dropped = 0

    def record(self, value: float) -> None:
        """Add one sample."""
        if len(self._samples) >= self._max_samples:
            self._dropped += 1
            return
        self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of recorded samples (excluding dropped)."""
        return len(self._samples)

    @property
    def dropped(self) -> int:
        """Samples dropped after hitting ``max_samples``."""
        return self._dropped

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank; 0 <= p <= 100)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    def samples(self) -> List[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def reset(self) -> None:
        """Drop all samples."""
        self._samples.clear()
        self._dropped = 0


class MetricRegistry:
    """Named metric lookup with lazy creation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counter_value(self, name: str) -> Optional[int]:
        """The counter's value, or None if it was never created."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else None

    def snapshot(self) -> Dict[str, float]:
        """A flat name → value view (histograms report their mean)."""
        view: Dict[str, float] = {}
        for name, counter in self._counters.items():
            view[name] = counter.value
        for name, gauge in self._gauges.items():
            view[name] = gauge.value
        for name, histogram in self._histograms.items():
            view[f"{name}.mean"] = histogram.mean()
        return view
