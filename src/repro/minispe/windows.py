"""Window assigners, triggers, and evictors.

The paper's workloads use time windows with per-query length/slide (join
and aggregation templates, Figures 7 and 8) plus session windows with a
per-query gap.  AStream implements its window operators "by customizing
triggers, evictors, and window functions to be dynamic and updatable at
runtime" (§5); this module provides those extension points on the
substrate side.

A :class:`Window` is a half-open event-time interval ``[start, end)``.
Window identity is purely a function of the record timestamp and the
assigner parameters, so replays assign records to the same windows
(deterministic recovery, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.minispe.record import Record, Watermark


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval ``[start, end)`` in milliseconds."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Window length in milliseconds."""
        return self.end - self.start

    def contains(self, timestamp: int) -> bool:
        """Return True if ``timestamp`` falls inside this window."""
        return self.start <= timestamp < self.end

    def intersects(self, other: "Window") -> bool:
        """Return True if the two intervals overlap."""
        return self.start < other.end and other.start < self.end

    def max_timestamp(self) -> int:
        """The largest timestamp belonging to this window."""
        return self.end - 1


class WindowAssigner:
    """Maps a record timestamp to the set of windows it belongs to."""

    def assign(self, timestamp: int) -> List[Window]:
        """Return the windows that contain ``timestamp``."""
        raise NotImplementedError

    def is_session(self) -> bool:
        """Session windows need merge handling downstream."""
        return False

    def max_window_length(self) -> int:
        """Upper bound on window length (used for state retention)."""
        raise NotImplementedError


class TumblingWindows(WindowAssigner):
    """Fixed-length, non-overlapping windows aligned to the epoch."""

    def __init__(self, length_ms: int) -> None:
        if length_ms <= 0:
            raise ValueError(f"window length must be positive, got {length_ms}")
        self.length_ms = length_ms

    def assign(self, timestamp: int) -> List[Window]:
        start = (timestamp // self.length_ms) * self.length_ms
        return [Window(start, start + self.length_ms)]

    def max_window_length(self) -> int:
        return self.length_ms

    def __repr__(self) -> str:
        return f"TumblingWindows({self.length_ms}ms)"


class SlidingWindows(WindowAssigner):
    """Overlapping windows of ``length_ms`` sliding every ``slide_ms``."""

    def __init__(self, length_ms: int, slide_ms: int) -> None:
        if length_ms <= 0:
            raise ValueError(f"window length must be positive, got {length_ms}")
        if slide_ms <= 0:
            raise ValueError(f"window slide must be positive, got {slide_ms}")
        if slide_ms > length_ms:
            raise ValueError(
                f"slide {slide_ms} larger than length {length_ms} would drop tuples"
            )
        self.length_ms = length_ms
        self.slide_ms = slide_ms

    def assign(self, timestamp: int) -> List[Window]:
        windows = []
        last_start = (timestamp // self.slide_ms) * self.slide_ms
        start = last_start
        while start > timestamp - self.length_ms:
            windows.append(Window(start, start + self.length_ms))
            start -= self.slide_ms
        windows.reverse()
        return windows

    def max_window_length(self) -> int:
        return self.length_ms

    def __repr__(self) -> str:
        return f"SlidingWindows({self.length_ms}ms, slide={self.slide_ms}ms)"


class SessionWindows(WindowAssigner):
    """Gap-based session windows.

    A record initially opens a proto-window ``[t, t + gap)``; the window
    operator merges overlapping proto-windows per key (standard session
    merge semantics).
    """

    def __init__(self, gap_ms: int) -> None:
        if gap_ms <= 0:
            raise ValueError(f"session gap must be positive, got {gap_ms}")
        self.gap_ms = gap_ms

    def assign(self, timestamp: int) -> List[Window]:
        return [Window(timestamp, timestamp + self.gap_ms)]

    def is_session(self) -> bool:
        return True

    def max_window_length(self) -> int:
        return self.gap_ms

    def __repr__(self) -> str:
        return f"SessionWindows(gap={self.gap_ms}ms)"


def merge_session_windows(windows: Iterable[Window]) -> List[Window]:
    """Merge overlapping/touching proto-windows into maximal sessions.

    Standard interval merge: sort by start, coalesce while the next window
    starts at or before the current end.
    """
    ordered = sorted(windows)
    if not ordered:
        return []
    merged = [ordered[0]]
    for window in ordered[1:]:
        last = merged[-1]
        if window.start <= last.end:
            if window.end > last.end:
                merged[-1] = Window(last.start, window.end)
        else:
            merged.append(window)
    return merged


class Trigger:
    """Decides when a window's contents are emitted.

    Returning True from either hook fires the window.  The default —
    :class:`EventTimeTrigger` — fires when the watermark passes the end of
    the window, which is what the paper's queries use.
    """

    def on_element(self, record: Record, window: Window) -> bool:
        """Called for each record added to ``window``."""
        return False

    def on_watermark(self, watermark: Watermark, window: Window) -> bool:
        """Called when a watermark arrives; True fires the window."""
        raise NotImplementedError


class EventTimeTrigger(Trigger):
    """Fire when the watermark reaches the window end (the default)."""

    def on_watermark(self, watermark: Watermark, window: Window) -> bool:
        return watermark.timestamp >= window.max_timestamp()


class CountTrigger(Trigger):
    """Fire every ``count`` elements (used in tests and ablations)."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count
        self._seen: dict = {}

    def on_element(self, record: Record, window: Window) -> bool:
        seen = self._seen.get(window, 0) + 1
        self._seen[window] = seen
        if seen >= self.count:
            self._seen[window] = 0
            return True
        return False

    def on_watermark(self, watermark: Watermark, window: Window) -> bool:
        return False


class Evictor:
    """Optionally drops elements from a window's buffer before emission."""

    def evict(self, elements: List[Record], window: Window) -> List[Record]:
        """Return the elements to keep."""
        return elements


class TimeEvictor(Evictor):
    """Keep only elements within ``keep_ms`` of the window max timestamp."""

    def __init__(self, keep_ms: int) -> None:
        if keep_ms <= 0:
            raise ValueError(f"keep_ms must be positive, got {keep_ms}")
        self.keep_ms = keep_ms

    def evict(self, elements: List[Record], window: Window) -> List[Record]:
        cutoff = window.max_timestamp() - self.keep_ms
        return [element for element in elements if element.timestamp > cutoff]
