"""Job graph: vertices, edges, and partitioning strategies.

A :class:`JobGraph` is the logical dataflow a job submits to the runtime:
*source* vertices (fed by the driver), *operator* vertices (each with an
operator factory and a parallelism), and edges carrying a
:class:`Partitioning` strategy plus the input index they feed on binary
operators.

The main assumption of the paper (§2) — operators can be shared as long as
they have common upstream operators and common partitioning keys — shows
up here: AStream builds a single graph whose shared join/aggregation
vertices are hash-partitioned on the common key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class Partitioning(enum.Enum):
    """How records are distributed across downstream parallel instances."""

    FORWARD = "forward"
    """Instance *i* sends to instance *i* (parallelism must match)."""

    HASH = "hash"
    """Route by ``hash(record.key) % parallelism`` — keyed streams."""

    BROADCAST = "broadcast"
    """Every record goes to every downstream instance."""

    REBALANCE = "rebalance"
    """Round-robin across downstream instances."""


@dataclass
class Edge:
    """A directed dataflow edge."""

    source: str
    target: str
    partitioning: Partitioning = Partitioning.FORWARD
    input_index: int = 0
    """Which input of the target this edge feeds (0 or 1 for joins)."""


@dataclass
class Vertex:
    """A logical dataflow vertex."""

    name: str
    operator_factory: Optional[Callable[[], Any]]
    """None for sources (they are fed externally by the driver)."""
    parallelism: int = 1
    is_source: bool = field(default=False)
    fusible: bool = False
    """Declares the operator safe for chain fusion: stateless, default
    control-element behaviour, and a :meth:`fuse_step` implementation.
    See :func:`repro.minispe.fuse.fuse_chains`."""

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError(
                f"vertex {self.name!r}: parallelism must be positive, "
                f"got {self.parallelism}"
            )


class JobGraph:
    """A logical streaming dataflow graph.

    Vertices are added with :meth:`add_source` / :meth:`add_operator` and
    wired with :meth:`connect`.  :meth:`validate` checks structural rules
    before the runtime deploys the graph.
    """

    def __init__(self, name: str = "job") -> None:
        self.name = name
        self.vertices: Dict[str, Vertex] = {}
        self.edges: List[Edge] = []

    # -- construction ------------------------------------------------------

    def add_source(self, name: str) -> "JobGraph":
        """Add a source vertex (fed externally; parallelism 1)."""
        self._add_vertex(Vertex(name, None, parallelism=1, is_source=True))
        return self

    def add_operator(
        self,
        name: str,
        operator_factory: Callable[[], Any],
        parallelism: int = 1,
        fusible: bool = False,
    ) -> "JobGraph":
        """Add an operator vertex built from ``operator_factory``.

        Pass ``fusible=True`` for stateless record-at-a-time operators
        (map/filter/flat-map/key-by) to let
        :func:`repro.minispe.fuse.fuse_chains` collapse adjacent ones
        into a single runtime stage.
        """
        self._add_vertex(
            Vertex(name, operator_factory, parallelism, fusible=fusible)
        )
        return self

    def connect(
        self,
        source: str,
        target: str,
        partitioning: Partitioning = Partitioning.FORWARD,
        input_index: int = 0,
    ) -> "JobGraph":
        """Wire ``source`` → ``target`` with the given partitioning."""
        if source not in self.vertices:
            raise KeyError(f"unknown edge source vertex {source!r}")
        if target not in self.vertices:
            raise KeyError(f"unknown edge target vertex {target!r}")
        if input_index not in (0, 1):
            raise ValueError(f"input_index must be 0 or 1, got {input_index}")
        self.edges.append(Edge(source, target, partitioning, input_index))
        return self

    def _add_vertex(self, vertex: Vertex) -> None:
        if vertex.name in self.vertices:
            raise ValueError(f"duplicate vertex name {vertex.name!r}")
        self.vertices[vertex.name] = vertex

    # -- queries -----------------------------------------------------------

    def sources(self) -> List[Vertex]:
        """All source vertices."""
        return [vertex for vertex in self.vertices.values() if vertex.is_source]

    def out_edges(self, name: str) -> List[Edge]:
        """Edges leaving vertex ``name``."""
        return [edge for edge in self.edges if edge.source == name]

    def in_edges(self, name: str) -> List[Edge]:
        """Edges entering vertex ``name``."""
        return [edge for edge in self.edges if edge.target == name]

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Rules: at least one source; no cycles; forward edges connect equal
        parallelism; every non-source vertex has at least one input; no
        vertex feeds the same input index from conflicting edge sets in a
        way the runtime cannot align (a binary input index may have several
        upstream edges — union semantics — but a unary operator must only
        use input 0).
        """
        if not self.sources():
            raise ValueError("job graph has no source vertex")
        for vertex in self.vertices.values():
            if not vertex.is_source and not self.in_edges(vertex.name):
                raise ValueError(f"vertex {vertex.name!r} has no inputs")
        for edge in self.edges:
            if edge.partitioning is Partitioning.FORWARD:
                up = self.vertices[edge.source].parallelism
                down = self.vertices[edge.target].parallelism
                if up != down:
                    raise ValueError(
                        f"forward edge {edge.source!r}->{edge.target!r} "
                        f"connects parallelism {up} to {down}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Kahn's algorithm over vertex names.
        indegree = {name: 0 for name in self.vertices}
        for edge in self.edges:
            indegree[edge.target] += 1
        frontier = [name for name, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            name = frontier.pop()
            visited += 1
            for edge in self.out_edges(name):
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    frontier.append(edge.target)
        if visited != len(self.vertices):
            raise ValueError("job graph contains a cycle")

    def topological_order(self) -> List[str]:
        """Vertex names in a deterministic topological order."""
        indegree = {name: 0 for name in self.vertices}
        for edge in self.edges:
            indegree[edge.target] += 1
        frontier = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            ready = []
            for edge in self.out_edges(name):
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    ready.append(edge.target)
            frontier.extend(sorted(ready))
            frontier.sort()
        if len(order) != len(self.vertices):
            raise ValueError("job graph contains a cycle")
        return order

    def total_instances(self) -> int:
        """Total number of parallel operator instances in this graph."""
        return sum(
            vertex.parallelism
            for vertex in self.vertices.values()
            if not vertex.is_source
        )

    def __repr__(self) -> str:
        return (
            f"JobGraph({self.name!r}, vertices={len(self.vertices)}, "
            f"edges={len(self.edges)})"
        )
