"""Operator framework: the extension point AStream builds on.

An :class:`Operator` is a user-defined, stateful dataflow vertex.  The
runtime instantiates one copy per parallel instance, calls
:meth:`Operator.open` with an :class:`OperatorContext`, and then feeds it
stream elements:

* :meth:`Operator.process` for data records,
* :meth:`Operator.on_watermark` when the *aligned* watermark (the minimum
  over all input channels) advances,
* :meth:`Operator.on_marker` for changelog markers, and
* :meth:`Operator.snapshot` / :meth:`Operator.restore` for checkpoints.

Operators emit downstream by calling :meth:`Operator.output`.  This mirrors
the low-level operator API that the paper's Flink implementation extends
(custom triggers, evictors, and window functions — §5) and that PyFlink
does not expose, which is why this substrate exists.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.minispe.record import (
    ChangelogMarker,
    Record,
    RecordBatch,
    StreamElement,
    Watermark,
)


class OperatorContext:
    """Per-instance runtime context handed to :meth:`Operator.open`."""

    def __init__(
        self,
        operator_name: str,
        instance_index: int,
        parallelism: int,
        metrics: Optional[Any] = None,
    ) -> None:
        self.operator_name = operator_name
        self.instance_index = instance_index
        self.parallelism = parallelism
        self.metrics = metrics

    def __repr__(self) -> str:
        return (
            f"OperatorContext({self.operator_name!r}, "
            f"{self.instance_index}/{self.parallelism})"
        )


class Operator:
    """Base class for one-input operators."""

    fusible = False
    """True when this operator may be fused into an operator chain.

    A fusible operator must be *stateless* (``snapshot`` returns None),
    must not override the control-element hooks (``on_watermark`` /
    ``on_marker`` default-forward), and must implement :meth:`fuse_step`.
    The built-in ``Map``/``Filter``/``KeyBy``/``FlatMap`` qualify.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self._collector: Optional[Callable[[StreamElement], None]] = None
        self.context: Optional[OperatorContext] = None

    # -- lifecycle ---------------------------------------------------------

    def open(self, context: OperatorContext) -> None:
        """Called once before any element is processed."""
        self.context = context

    def close(self) -> None:
        """Called once after the last element; flush any pending output."""

    # -- element handling --------------------------------------------------

    def process(self, record: Record) -> None:
        """Handle one data record (override)."""
        raise NotImplementedError

    def process_batch(self, records: List[Record]) -> None:
        """Handle a micro-batch of records arriving on one channel.

        The default loops over :meth:`process`, so every operator is
        batch-correct for free; hot operators override this with a
        vectorized implementation that amortises per-record dispatch and
        emits whole output batches via :meth:`output_batch`.  Semantics
        must be identical to processing the records one by one.
        """
        process = self.process
        for record in records:
            process(record)

    def on_watermark(self, watermark: Watermark) -> None:
        """Handle an aligned watermark.  Default: forward it."""
        self.output(watermark)

    def on_marker(self, marker: ChangelogMarker) -> None:
        """Handle a changelog marker.  Default: forward it."""
        self.output(marker)

    # -- fusion ------------------------------------------------------------

    def fuse_step(
        self,
        downstream: Callable[[int, Any, Any, dict], None],
    ) -> Callable[[int, Any, Any, dict], None]:
        """Return this operator's per-row step for a fused chain.

        The step receives ``(timestamp, value, key, tags)`` for one input
        row and calls ``downstream`` zero or more times with the rows it
        emits.  Steps never copy ``tags`` — the fused chain's terminal
        sink makes the single defensive copy when it builds the output
        :class:`Record` — and they never see control elements (fusible
        operators default-forward those).  Only operators with
        ``fusible = True`` implement this.
        """
        raise NotImplementedError(
            f"operator {self.name!r} does not support fusion"
        )

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Any:
        """Return this instance's state for a checkpoint (default: none)."""
        return None

    def restore(self, snapshot: Any) -> None:
        """Restore this instance's state from :meth:`snapshot` output."""

    # -- emission ----------------------------------------------------------

    def set_collector(self, collector: Callable[[StreamElement], None]) -> None:
        """Wire the downstream collector (runtime-internal)."""
        self._collector = collector

    def output(self, element: StreamElement) -> None:
        """Emit ``element`` to the downstream edge(s)."""
        if self._collector is None:
            raise RuntimeError(
                f"operator {self.name!r} emitted before being wired to a job"
            )
        self._collector(element)

    def output_batch(self, records: List[Record]) -> None:
        """Emit a whole micro-batch downstream in one routing pass.

        Empty batches are dropped here so downstream operators never see
        them; single-record batches are unwrapped — the per-record path
        is cheaper than batch dispatch for one element.
        """
        if not records:
            return
        if self._collector is None:
            raise RuntimeError(
                f"operator {self.name!r} emitted before being wired to a job"
            )
        if len(records) == 1:
            self._collector(records[0])
        else:
            self._collector(RecordBatch(records))


class TwoInputOperator(Operator):
    """Base class for binary operators (e.g. stream joins).

    The runtime routes elements from input 0 to :meth:`process_left` and
    from input 1 to :meth:`process_right`; watermarks and markers are
    aligned across *both* inputs before the ``on_*`` hooks fire.
    """

    def process(self, record: Record) -> None:
        raise RuntimeError(
            "two-input operators receive records via process_left/process_right"
        )

    def process_batch(self, records: List[Record]) -> None:
        raise RuntimeError(
            "two-input operators receive batches via "
            "process_left_batch/process_right_batch"
        )

    def process_left(self, record: Record) -> None:
        """Handle one record from the first input (override)."""
        raise NotImplementedError

    def process_right(self, record: Record) -> None:
        """Handle one record from the second input (override)."""
        raise NotImplementedError

    def process_left_batch(self, records: List[Record]) -> None:
        """Handle a micro-batch from the first input (default: loop)."""
        process = self.process_left
        for record in records:
            process(record)

    def process_right_batch(self, records: List[Record]) -> None:
        """Handle a micro-batch from the second input (default: loop)."""
        process = self.process_right
        for record in records:
            process(record)


class MapOperator(Operator):
    """Apply ``fn`` to each record value, preserving timestamp and key."""

    fusible = True

    def __init__(self, fn: Callable[[Any], Any], name: str = "map") -> None:
        super().__init__(name)
        self._fn = fn

    def fuse_step(self, downstream):
        fn = self._fn

        def step(timestamp, value, key, tags):
            downstream(timestamp, fn(value), key, tags)

        return step

    def process(self, record: Record) -> None:
        self.output(
            Record(
                timestamp=record.timestamp,
                value=self._fn(record.value),
                key=record.key,
                tags=dict(record.tags),
            )
        )

    def process_batch(self, records: List[Record]) -> None:
        fn = self._fn
        self.output_batch(
            [
                Record(r.timestamp, fn(r.value), r.key, dict(r.tags))
                for r in records
            ]
        )


class FilterOperator(Operator):
    """Keep only records whose value satisfies ``predicate``."""

    fusible = True

    def __init__(self, predicate: Callable[[Any], bool], name: str = "filter") -> None:
        super().__init__(name)
        self._predicate = predicate

    def fuse_step(self, downstream):
        predicate = self._predicate

        def step(timestamp, value, key, tags):
            if predicate(value):
                downstream(timestamp, value, key, tags)

        return step

    def process(self, record: Record) -> None:
        if self._predicate(record.value):
            self.output(record)

    def process_batch(self, records: List[Record]) -> None:
        predicate = self._predicate
        self.output_batch([r for r in records if predicate(r.value)])


class KeyByOperator(Operator):
    """Re-key records with ``key_fn`` (the shuffle happens on the edge)."""

    fusible = True

    def __init__(self, key_fn: Callable[[Any], Any], name: str = "key_by") -> None:
        super().__init__(name)
        self._key_fn = key_fn

    def fuse_step(self, downstream):
        key_fn = self._key_fn

        def step(timestamp, value, key, tags):
            downstream(timestamp, value, key_fn(value), tags)

        return step

    def process(self, record: Record) -> None:
        self.output(
            Record(
                timestamp=record.timestamp,
                value=record.value,
                key=self._key_fn(record.value),
                tags=dict(record.tags),
            )
        )

    def process_batch(self, records: List[Record]) -> None:
        key_fn = self._key_fn
        self.output_batch(
            [
                Record(r.timestamp, r.value, key_fn(r.value), dict(r.tags))
                for r in records
            ]
        )


class FlatMapOperator(Operator):
    """Apply ``fn`` returning an iterable of values; emit one record each."""

    fusible = True

    def __init__(self, fn: Callable[[Any], List[Any]], name: str = "flat_map") -> None:
        super().__init__(name)
        self._fn = fn

    def fuse_step(self, downstream):
        fn = self._fn

        def step(timestamp, value, key, tags):
            for out_value in fn(value):
                downstream(timestamp, out_value, key, tags)

        return step

    def process(self, record: Record) -> None:
        for value in self._fn(record.value):
            self.output(
                Record(
                    timestamp=record.timestamp,
                    value=value,
                    key=record.key,
                    tags=dict(record.tags),
                )
            )

    def process_batch(self, records: List[Record]) -> None:
        fn = self._fn
        out: List[Record] = []
        for r in records:
            timestamp, key, tags = r.timestamp, r.key, r.tags
            for value in fn(r.value):
                out.append(Record(timestamp, value, key, dict(tags)))
        self.output_batch(out)
