"""Operator framework: the extension point AStream builds on.

An :class:`Operator` is a user-defined, stateful dataflow vertex.  The
runtime instantiates one copy per parallel instance, calls
:meth:`Operator.open` with an :class:`OperatorContext`, and then feeds it
stream elements:

* :meth:`Operator.process` for data records,
* :meth:`Operator.on_watermark` when the *aligned* watermark (the minimum
  over all input channels) advances,
* :meth:`Operator.on_marker` for changelog markers, and
* :meth:`Operator.snapshot` / :meth:`Operator.restore` for checkpoints.

Operators emit downstream by calling :meth:`Operator.output`.  This mirrors
the low-level operator API that the paper's Flink implementation extends
(custom triggers, evictors, and window functions — §5) and that PyFlink
does not expose, which is why this substrate exists.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.minispe.record import (
    ChangelogMarker,
    Record,
    StreamElement,
    Watermark,
)


class OperatorContext:
    """Per-instance runtime context handed to :meth:`Operator.open`."""

    def __init__(
        self,
        operator_name: str,
        instance_index: int,
        parallelism: int,
        metrics: Optional[Any] = None,
    ) -> None:
        self.operator_name = operator_name
        self.instance_index = instance_index
        self.parallelism = parallelism
        self.metrics = metrics

    def __repr__(self) -> str:
        return (
            f"OperatorContext({self.operator_name!r}, "
            f"{self.instance_index}/{self.parallelism})"
        )


class Operator:
    """Base class for one-input operators."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self._collector: Optional[Callable[[StreamElement], None]] = None
        self.context: Optional[OperatorContext] = None

    # -- lifecycle ---------------------------------------------------------

    def open(self, context: OperatorContext) -> None:
        """Called once before any element is processed."""
        self.context = context

    def close(self) -> None:
        """Called once after the last element; flush any pending output."""

    # -- element handling --------------------------------------------------

    def process(self, record: Record) -> None:
        """Handle one data record (override)."""
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark) -> None:
        """Handle an aligned watermark.  Default: forward it."""
        self.output(watermark)

    def on_marker(self, marker: ChangelogMarker) -> None:
        """Handle a changelog marker.  Default: forward it."""
        self.output(marker)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Any:
        """Return this instance's state for a checkpoint (default: none)."""
        return None

    def restore(self, snapshot: Any) -> None:
        """Restore this instance's state from :meth:`snapshot` output."""

    # -- emission ----------------------------------------------------------

    def set_collector(self, collector: Callable[[StreamElement], None]) -> None:
        """Wire the downstream collector (runtime-internal)."""
        self._collector = collector

    def output(self, element: StreamElement) -> None:
        """Emit ``element`` to the downstream edge(s)."""
        if self._collector is None:
            raise RuntimeError(
                f"operator {self.name!r} emitted before being wired to a job"
            )
        self._collector(element)


class TwoInputOperator(Operator):
    """Base class for binary operators (e.g. stream joins).

    The runtime routes elements from input 0 to :meth:`process_left` and
    from input 1 to :meth:`process_right`; watermarks and markers are
    aligned across *both* inputs before the ``on_*`` hooks fire.
    """

    def process(self, record: Record) -> None:
        raise RuntimeError(
            "two-input operators receive records via process_left/process_right"
        )

    def process_left(self, record: Record) -> None:
        """Handle one record from the first input (override)."""
        raise NotImplementedError

    def process_right(self, record: Record) -> None:
        """Handle one record from the second input (override)."""
        raise NotImplementedError


class MapOperator(Operator):
    """Apply ``fn`` to each record value, preserving timestamp and key."""

    def __init__(self, fn: Callable[[Any], Any], name: str = "map") -> None:
        super().__init__(name)
        self._fn = fn

    def process(self, record: Record) -> None:
        self.output(
            Record(
                timestamp=record.timestamp,
                value=self._fn(record.value),
                key=record.key,
                tags=dict(record.tags),
            )
        )


class FilterOperator(Operator):
    """Keep only records whose value satisfies ``predicate``."""

    def __init__(self, predicate: Callable[[Any], bool], name: str = "filter") -> None:
        super().__init__(name)
        self._predicate = predicate

    def process(self, record: Record) -> None:
        if self._predicate(record.value):
            self.output(record)


class KeyByOperator(Operator):
    """Re-key records with ``key_fn`` (the shuffle happens on the edge)."""

    def __init__(self, key_fn: Callable[[Any], Any], name: str = "key_by") -> None:
        super().__init__(name)
        self._key_fn = key_fn

    def process(self, record: Record) -> None:
        self.output(
            Record(
                timestamp=record.timestamp,
                value=record.value,
                key=self._key_fn(record.value),
                tags=dict(record.tags),
            )
        )


class FlatMapOperator(Operator):
    """Apply ``fn`` returning an iterable of values; emit one record each."""

    def __init__(self, fn: Callable[[Any], List[Any]], name: str = "flat_map") -> None:
        super().__init__(name)
        self._fn = fn

    def process(self, record: Record) -> None:
        for value in self._fn(record.value):
            self.output(
                Record(
                    timestamp=record.timestamp,
                    value=value,
                    key=record.key,
                    tags=dict(record.tags),
                )
            )
