"""Operator-chain fusion: collapse stateless chains into one stage.

A chain of stateless record-at-a-time operators (map → filter → map …)
connected by FORWARD edges costs, per record, one runtime dispatch per
operator: collector call, routing, isinstance chain, hook checks, and a
fresh ``Record`` (plus a tags-dict copy) at every hop.  For the hot path
those per-hop overheads dwarf the user functions themselves.

:func:`fuse_chains` rewrites a :class:`JobGraph` at build time: every
maximal chain of :attr:`~repro.minispe.graph.Vertex.fusible` vertices
becomes a single vertex running a :class:`FusedOperator`.  The fused
operator compiles the chain into one nested closure — each sub-operator
contributes a *step* ``(timestamp, value, key, tags) -> emit(...)`` via
:meth:`~repro.minispe.operators.Operator.fuse_step` — so a record
traverses the whole chain as plain positional arguments and exactly one
output ``Record`` (with a single tags copy) is built at the sink.

Fusion is transparent to the rest of the system:

* **Semantics** — fused output is record-for-record identical to the
  unfused chain (fusible operators are stateless and default-forward
  control elements, so collapsing forwards into one hop changes nothing).
* **Checkpointing** — :meth:`FusedOperator.snapshot` nests per-sub
  snapshots keyed by position and name; fusible operators are stateless
  so these are ``None``, but the shape survives a future stateful step.
* **Telemetry** — under a live trace the runtime calls
  :meth:`FusedOperator.process_batch_traced`, which executes the chain
  *stage-wise* with one nested span per sub-operator, so breakdowns
  still attribute time to ``map``/``filter``/… rather than one opaque
  fused stage.
* **Backends** — the rewrite happens before deployment, so the fused
  graph runs unchanged on the in-process runtime and (built inside each
  worker from the program factory) on the sharded process backend.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.minispe.graph import Edge, JobGraph, Partitioning, Vertex
from repro.minispe.operators import Operator, OperatorContext
from repro.minispe.record import Record, RecordBatch


class FusedOperator(Operator):
    """A chain of fusible operators executing as one runtime stage.

    ``operators`` run in pipeline order.  When every sub-operator
    implements :meth:`~repro.minispe.operators.Operator.fuse_step`, the
    chain is compiled into one nested closure; otherwise the operator
    falls back to stage-wise execution (each sub's ``process_batch``
    feeding the next through a capturing collector), which is still one
    runtime stage — just without the per-record closure fast path.
    """

    def __init__(
        self, operators: List[Operator], name: Optional[str] = None
    ) -> None:
        if not operators:
            raise ValueError("FusedOperator needs at least one sub-operator")
        super().__init__(
            name or "fused[" + "+".join(op.name for op in operators) + "]"
        )
        self.operators = list(operators)
        self._out: List[Record] = []
        self._compiled = all(op.fusible for op in self.operators)
        if self._compiled:
            step: Callable[[int, Any, Any, dict], None] = self._emit
            for op in reversed(self.operators):
                step = op.fuse_step(step)
            self._head = step
        else:
            self._head = None

    # -- lifecycle ---------------------------------------------------------

    def open(self, context: OperatorContext) -> None:
        super().open(context)
        for op in self.operators:
            op.open(
                OperatorContext(
                    op.name,
                    context.instance_index,
                    context.parallelism,
                    context.metrics,
                )
            )

    def close(self) -> None:
        for op in self.operators:
            op.close()

    # -- compiled fast path ------------------------------------------------

    def _emit(self, timestamp: int, value: Any, key: Any, tags: dict) -> None:
        # Terminal sink of the compiled chain: the chain's single Record
        # allocation and single defensive tags copy happen here.
        self._out.append(Record(timestamp, value, key, dict(tags)))

    def process(self, record: Record) -> None:
        if self._head is None:
            self._run_stagewise([record], None)
            return
        out: List[Record] = []
        self._out = out
        self._head(record.timestamp, record.value, record.key, record.tags)
        self.output_batch(out)

    def process_batch(self, records: List[Record]) -> None:
        if self._head is None:
            self._run_stagewise(records, None)
            return
        out: List[Record] = []
        self._out = out
        head = self._head
        for record in records:
            head(record.timestamp, record.value, record.key, record.tags)
        self.output_batch(out)

    # -- traced / stage-wise path ------------------------------------------

    def process_traced(self, record: Record, tracer) -> None:
        """Per-record delivery under a live trace (runtime hook)."""
        self._run_stagewise([record], tracer)

    def process_batch_traced(self, records: List[Record], tracer) -> None:
        """Batch delivery under a live trace (runtime hook).

        Runs the chain stage-wise with one nested span per sub-operator,
        so trace breakdowns keep attributing time to the original
        operators instead of one opaque fused stage.
        """
        self._run_stagewise(records, tracer)

    def _run_stagewise(self, records: List[Record], tracer) -> None:
        current = records
        for op in self.operators:
            out: List[Record] = []

            def capture(element, _append=out.append, _extend=out.extend):
                if type(element) is RecordBatch:
                    _extend(element.records)
                else:
                    _append(element)

            previous = op._collector
            op.set_collector(capture)
            if tracer is not None:
                tracer.enter(op.name)
            try:
                op.process_batch(current)
            finally:
                if tracer is not None:
                    tracer.exit()
                op.set_collector(previous)
            current = out
            if not current:
                return
        self.output_batch(current)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Any:
        state = {
            f"{index}:{op.name}": op.snapshot()
            for index, op in enumerate(self.operators)
        }
        return state if any(value is not None for value in state.values()) else None

    def restore(self, snapshot: Any) -> None:
        if snapshot is None:
            return
        for index, op in enumerate(self.operators):
            op.restore(snapshot.get(f"{index}:{op.name}"))


def fuse_chains(graph: JobGraph) -> JobGraph:
    """Rewrite ``graph``, collapsing fusible chains into fused vertices.

    A *chain* is a maximal run of vertices where every member has
    ``fusible=True``, consecutive members are connected by a single
    FORWARD edge feeding input 0, interior members have in/out-degree 1,
    and all members share one parallelism.  Each chain of length ≥ 2
    becomes one vertex named ``fused[a+b+…]`` whose factory builds a
    :class:`FusedOperator` from the members' factories; the head's
    in-edges and the tail's out-edges re-attach to it.  The input graph
    is not modified; the rewritten graph validates before it is returned.
    """
    chains = _find_chains(graph)
    member_of: Dict[str, str] = {}
    head_of: Dict[str, List[str]] = {}
    for chain in chains:
        fused_name = "fused[" + "+".join(chain) + "]"
        head_of[chain[0]] = chain
        for member in chain:
            member_of[member] = fused_name

    fused = JobGraph(graph.name)
    for name, vertex in graph.vertices.items():
        chain = head_of.get(name)
        if chain is not None:
            fused_name = member_of[name]
            factories = [graph.vertices[member].operator_factory for member in chain]
            fused._add_vertex(
                Vertex(
                    fused_name,
                    _fused_factory(factories, fused_name),
                    parallelism=vertex.parallelism,
                )
            )
        elif name not in member_of:
            fused._add_vertex(
                Vertex(
                    vertex.name,
                    vertex.operator_factory,
                    vertex.parallelism,
                    is_source=vertex.is_source,
                    fusible=vertex.fusible,
                )
            )
    for edge in graph.edges:
        source = member_of.get(edge.source, edge.source)
        target = member_of.get(edge.target, edge.target)
        if source == target:
            continue  # intra-chain edge, absorbed into the fused vertex
        fused.edges.append(
            Edge(source, target, edge.partitioning, edge.input_index)
        )
    fused.validate()
    return fused


def _fused_factory(
    factories: List[Callable[[], Operator]], fused_name: str
) -> Callable[[], FusedOperator]:
    def build() -> FusedOperator:
        return FusedOperator(
            [factory() for factory in factories], name=fused_name
        )

    return build


def _find_chains(graph: JobGraph) -> List[List[str]]:
    """Maximal fusible chains, each as a list of vertex names in order."""
    assigned: set = set()
    chains: List[List[str]] = []
    for name in graph.topological_order():
        if name in assigned:
            continue
        vertex = graph.vertices[name]
        if not _chainable(vertex):
            continue
        chain = [name]
        while True:
            outs = graph.out_edges(chain[-1])
            if len(outs) != 1:
                break
            edge = outs[0]
            if (
                edge.partitioning is not Partitioning.FORWARD
                or edge.input_index != 0
                or edge.target in assigned
            ):
                break
            nxt = graph.vertices[edge.target]
            if (
                not _chainable(nxt)
                or nxt.parallelism != vertex.parallelism
                or len(graph.in_edges(edge.target)) != 1
            ):
                break
            chain.append(edge.target)
        if len(chain) >= 2:
            assigned.update(chain)
            chains.append(chain)
    return chains


def _chainable(vertex: Vertex) -> bool:
    return vertex.fusible and not vertex.is_source
