"""Stream element model: records, watermarks, markers, and barriers.

Everything that flows through a dataflow edge is a :class:`StreamElement`.
Four concrete kinds exist:

* :class:`Record` — a data tuple with an event-time timestamp and an
  optional partitioning key.
* :class:`RecordBatch` — a micro-batch of records travelling one channel
  together.  Batches amortise the per-element Python dispatch cost
  (isinstance chains, hook checks, router fan-out) that dominates the
  per-record path; they carry **no** extra semantics — a batch is exactly
  its records in order, and control elements never ride inside one.
* :class:`Watermark` — an assertion that no record with a smaller event
  time will arrive on this channel (the Flink/Dataflow watermark model).
* :class:`ChangelogMarker` — AStream's query-changelog woven into the
  stream.  Markers are event-time-stamped so replays are deterministic
  (paper §3.3): the changelog timestamp is the time at which the query
  change was performed by the user, not a system clock reading.
* :class:`CheckpointBarrier` — a barrier injected by the checkpoint
  coordinator; operators snapshot their state when a barrier has been
  received on all input channels (barrier alignment).

:class:`Record` is the hottest allocation in the engine (every operator
emission creates one), so it is a plain ``__slots__`` class rather than a
dataclass; treat instances as immutable by convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


class StreamElement:
    """Base class for everything flowing through a stream channel."""

    __slots__ = ()

    timestamp: int


_EMPTY_TAGS: dict = {}


class Record(StreamElement):
    """A data tuple.

    ``value`` holds the payload (for generated workloads a
    :class:`repro.workloads.datagen.DataTuple`); ``key`` is the hash
    partitioning key.  A record may carry extra per-engine metadata in
    ``tags`` — AStream stores the query-set bitset there so the substrate
    does not need to know about query sharing.  Records are immutable by
    convention; derive new ones with :meth:`with_tag`.
    """

    __slots__ = ("timestamp", "value", "key", "tags")

    def __init__(
        self,
        timestamp: int,
        value: Any,
        key: Any = None,
        tags: Optional[dict] = None,
    ) -> None:
        self.timestamp = timestamp
        self.value = value
        self.key = key
        self.tags = tags if tags is not None else _EMPTY_TAGS

    def with_tag(self, name: str, tag_value: Any) -> "Record":
        """Return a copy of this record with ``tags[name]`` set."""
        new_tags = dict(self.tags)
        new_tags[name] = tag_value
        return Record(self.timestamp, self.value, self.key, new_tags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.value == other.value
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.timestamp, self.value, self.key))

    def __repr__(self) -> str:
        return (
            f"Record(timestamp={self.timestamp}, value={self.value!r}, "
            f"key={self.key!r}, tags={self.tags!r})"
        )


class RecordBatch(StreamElement):
    """A micro-batch of :class:`Record`\\ s flowing as one stream element.

    The runtime partitions a whole batch into per-target sub-batches in
    one pass and operators may override ``process_batch`` to amortise
    per-record overheads.  Semantically a batch is transparent: delivering
    ``RecordBatch([r1, r2])`` on a channel is equivalent to delivering
    ``r1`` then ``r2``.  Watermarks, changelog markers, and checkpoint
    barriers act as batch *flush points* — a batch never spans one, so
    event-time semantics, marker alignment, and barrier alignment are
    identical to the per-record path.

    Treat ``records`` as immutable once the batch has been emitted; the
    runtime may deliver the same list object to several broadcast targets.
    """

    __slots__ = ("records",)

    def __init__(self, records: list) -> None:
        self.records = records

    @property
    def timestamp(self) -> int:
        """Event time of the first record (batches are arrival-ordered)."""
        return self.records[0].timestamp if self.records else -1

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        return self.records == other.records

    def __repr__(self) -> str:
        return f"RecordBatch({len(self.records)} records)"


@dataclass(frozen=True)
class Watermark(StreamElement):
    """Event-time watermark: no record with ``timestamp`` < this will follow."""

    timestamp: int


@dataclass(frozen=True)
class ChangelogMarker(StreamElement):
    """A query changelog woven into the data stream.

    ``changelog`` is a :class:`repro.core.changelog.Changelog`.  The marker
    is broadcast to every downstream operator instance so all shared
    operators observe query creations/deletions at the same event-time
    position in the stream.
    """

    timestamp: int
    changelog: Any = None


@dataclass(frozen=True)
class CheckpointBarrier(StreamElement):
    """Checkpoint barrier for exactly-once snapshots (Chandy-Lamport style)."""

    timestamp: int
    checkpoint_id: int = 0


def is_data(element: StreamElement) -> bool:
    """Return True if ``element`` carries user data (record or batch)."""
    return isinstance(element, (Record, RecordBatch))


def is_control(element: StreamElement) -> bool:
    """Return True for control elements (watermarks, markers, barriers)."""
    return not isinstance(element, (Record, RecordBatch))
