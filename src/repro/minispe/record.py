"""Stream element model: records, watermarks, markers, and barriers.

Everything that flows through a dataflow edge is a :class:`StreamElement`.
Four concrete kinds exist:

* :class:`Record` — a data tuple with an event-time timestamp and an
  optional partitioning key.
* :class:`RecordBatch` — a micro-batch of records travelling one channel
  together.  Batches amortise the per-element Python dispatch cost
  (isinstance chains, hook checks, router fan-out) that dominates the
  per-record path; they carry **no** extra semantics — a batch is exactly
  its records in order, and control elements never ride inside one.
* :class:`Watermark` — an assertion that no record with a smaller event
  time will arrive on this channel (the Flink/Dataflow watermark model).
* :class:`ChangelogMarker` — AStream's query-changelog woven into the
  stream.  Markers are event-time-stamped so replays are deterministic
  (paper §3.3): the changelog timestamp is the time at which the query
  change was performed by the user, not a system clock reading.
* :class:`CheckpointBarrier` — a barrier injected by the checkpoint
  coordinator; operators snapshot their state when a barrier has been
  received on all input channels (barrier alignment).

:class:`Record` is the hottest allocation in the engine (every operator
emission creates one), so it is a plain ``__slots__`` class rather than a
dataclass; treat instances as immutable by convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


class StreamElement:
    """Base class for everything flowing through a stream channel."""

    __slots__ = ()

    timestamp: int


_EMPTY_TAGS: dict = {}


class Record(StreamElement):
    """A data tuple.

    ``value`` holds the payload (for generated workloads a
    :class:`repro.workloads.datagen.DataTuple`); ``key`` is the hash
    partitioning key.  A record may carry extra per-engine metadata in
    ``tags`` — AStream stores the query-set bitset there so the substrate
    does not need to know about query sharing.  Records are immutable by
    convention; derive new ones with :meth:`with_tag`.
    """

    __slots__ = ("timestamp", "value", "key", "tags")

    def __init__(
        self,
        timestamp: int,
        value: Any,
        key: Any = None,
        tags: Optional[dict] = None,
    ) -> None:
        self.timestamp = timestamp
        self.value = value
        self.key = key
        self.tags = tags if tags is not None else _EMPTY_TAGS

    def with_tag(self, name: str, tag_value: Any) -> "Record":
        """Return a copy of this record with ``tags[name]`` set."""
        new_tags = dict(self.tags)
        new_tags[name] = tag_value
        return Record(self.timestamp, self.value, self.key, new_tags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.value == other.value
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.timestamp, self.value, self.key))

    def __repr__(self) -> str:
        return (
            f"Record(timestamp={self.timestamp}, value={self.value!r}, "
            f"key={self.key!r}, tags={self.tags!r})"
        )


class RecordBatch(StreamElement):
    """A micro-batch of :class:`Record`\\ s flowing as one stream element.

    The runtime partitions a whole batch into per-target sub-batches in
    one pass and operators may override ``process_batch`` to amortise
    per-record overheads.  Semantically a batch is transparent: delivering
    ``RecordBatch([r1, r2])`` on a channel is equivalent to delivering
    ``r1`` then ``r2``.  Watermarks, changelog markers, and checkpoint
    barriers act as batch *flush points* — a batch never spans one, so
    event-time semantics, marker alignment, and barrier alignment are
    identical to the per-record path.

    A batch may alternatively be *columnar*: built from parallel arrays
    (:meth:`from_columns`, the binary wire codec's zero-copy decode
    target).  Columnar batches defer building their ``Record`` objects —
    ``records`` materialises them on first touch, so every existing
    consumer works unchanged, while columnar-aware operators read the
    parallel arrays directly via :meth:`timestamps` / :meth:`keys` /
    :meth:`field_columns` and never pay per-row materialisation for rows
    they drop.

    Treat ``records`` as immutable once the batch has been emitted; the
    runtime may deliver the same list object to several broadcast targets.

    A batch may carry a wire trace context in ``trace`` — an opaque
    ``(trace_id, ingest_ns)`` pair stamped by a client push.  The trace
    rides the batch across process boundaries but is metadata only: it
    never affects routing, equality, or results (byte-equality between
    traced and untraced runs is part of the serve test matrix).
    """

    __slots__ = ("_records", "_columns", "trace")

    def __init__(self, records: list, trace=None) -> None:
        self._records = records
        self._columns = None
        self.trace = trace

    @classmethod
    def from_columns(cls, timestamps, keys, fields, builder) -> "RecordBatch":
        """Build a columnar batch from parallel arrays.

        ``timestamps``/``keys`` are row-aligned sequences; ``fields`` is a
        tuple of per-field column sequences; ``builder(key, field_tuple)``
        constructs one row's value object on materialisation.  Any
        indexable sequence works — the wire codec passes ``memoryview``
        casts straight off the frame buffer (zero copy).
        """
        batch = cls.__new__(cls)
        batch._records = None
        batch._columns = (timestamps, keys, tuple(fields), builder)
        batch.trace = None
        return batch

    @property
    def records(self) -> list:
        """The batch's records (materialised on demand when columnar)."""
        records = self._records
        if records is None:
            records = self._materialize()
            self._records = records
        return records

    @property
    def is_columnar(self) -> bool:
        """True while parallel arrays back this batch (records may or
        may not have been materialised from them yet)."""
        return self._columns is not None

    def timestamps(self):
        """The row-aligned timestamp column."""
        if self._columns is not None:
            return self._columns[0]
        return [record.timestamp for record in self._records]

    def keys(self):
        """The row-aligned partitioning-key column."""
        if self._columns is not None:
            return self._columns[1]
        return [record.key for record in self._records]

    def field_columns(self):
        """Per-field value columns, or ``None`` for row-built batches
        (whose values need not expose a uniform ``fields`` sequence)."""
        if self._columns is not None:
            return self._columns[2]
        return None

    def row_value(self, row: int):
        """Materialise one row's value object (columnar batches only).

        Columnar consumers that drop most rows use this to pay value
        construction only for survivors.
        """
        _, keys, fields, builder = self._columns
        return builder(keys[row], tuple(column[row] for column in fields))

    def _materialize(self) -> list:
        timestamps, keys, fields, builder = self._columns
        records = []
        append = records.append
        for timestamp, key, field_tuple in zip(timestamps, keys, zip(*fields)):
            append(Record(timestamp, builder(key, field_tuple), key))
        return records

    @property
    def timestamp(self) -> int:
        """Event time of the first record (batches are arrival-ordered)."""
        if self._columns is not None:
            timestamps = self._columns[0]
            return timestamps[0] if len(timestamps) else -1
        return self._records[0].timestamp if self._records else -1

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._columns[0])

    def __iter__(self):
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        return self.records == other.records

    def __reduce__(self):
        # Columns may be memoryview casts into a network buffer; a batch
        # crossing a process boundary (shard workers, checkpoints)
        # materialises into plain records first.
        if self.trace is None:
            return (RecordBatch, (self.records,))
        return (RecordBatch, (self.records, self.trace))

    def __repr__(self) -> str:
        kind = "columnar, " if self._columns is not None else ""
        return f"RecordBatch({kind}{len(self)} records)"


@dataclass(frozen=True)
class Watermark(StreamElement):
    """Event-time watermark: no record with ``timestamp`` < this will follow."""

    timestamp: int


@dataclass(frozen=True)
class ChangelogMarker(StreamElement):
    """A query changelog woven into the data stream.

    ``changelog`` is a :class:`repro.core.changelog.Changelog`.  The marker
    is broadcast to every downstream operator instance so all shared
    operators observe query creations/deletions at the same event-time
    position in the stream.
    """

    timestamp: int
    changelog: Any = None


@dataclass(frozen=True)
class CheckpointBarrier(StreamElement):
    """Checkpoint barrier for exactly-once snapshots (Chandy-Lamport style)."""

    timestamp: int
    checkpoint_id: int = 0


def is_data(element: StreamElement) -> bool:
    """Return True if ``element`` carries user data (record or batch)."""
    return isinstance(element, (Record, RecordBatch))


def is_control(element: StreamElement) -> bool:
    """Return True for control elements (watermarks, markers, barriers)."""
    return not isinstance(element, (Record, RecordBatch))
