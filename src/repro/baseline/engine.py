"""The query-at-a-time engine: one independent pipeline per query.

This is the Flink execution model the paper compares against:

* every query creation deploys a **new** topology (filter → windowed
  join/aggregation → sink), paying job submission and operator placement
  each time and occupying task slots for its own operator instances;
* the input stream is forked to every running job, so a tuple is
  filtered, shuffled, and windowed once *per query* — there is no shared
  computation, no query-sets, no slicing;
* when the cluster runs out of slots the deployment fails with
  :class:`~repro.minispe.cluster.ClusterCapacityError` — the paper's
  "throws an exception" failure mode (§4.4); the driver's queueing of
  the several-second deployments produces the "ever-increasing latency"
  one (Figure 10a).

A job consumes its streams from the latest offset at creation time
(tuples with event time before the query's creation are not delivered),
matching how an ad-hoc Flink job attaches to a message bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.baseline.deployment import BaselineDeploymentModel
from repro.core.engine import DeploymentEvent
from repro.core.query import (
    AggregationQuery,
    ComplexQuery,
    JoinQuery,
    Query,
    SelectionQuery,
)
from repro.core.router import QueryChannels, QueryOutput
from repro.core.shared_join import JoinedTuple
from repro.minispe.cluster import SimulatedCluster
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import FilterOperator
from repro.minispe.record import Record, RecordBatch, Watermark
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CallbackSink
from repro.minispe.window_operators import (
    WindowedAggregateOperator,
    WindowedJoinOperator,
)


class UnsustainableWorkload(RuntimeError):
    """Raised when the baseline cannot keep up (the paper's failure)."""


@dataclass
class _Job:
    """One deployed query's topology."""

    query: Query
    runtime: JobRuntime
    created_at_ms: int
    streams: tuple
    instances: int


class QueryAtATimeEngine:
    """Flink-model baseline: no sharing, one topology per query.

    The public surface mirrors :class:`repro.core.engine.AStreamEngine`
    (submit / stop / push / watermark / results) so the harness drives
    both SUTs identically.
    """

    def __init__(
        self,
        cluster: Optional[SimulatedCluster] = None,
        deployment: Optional[BaselineDeploymentModel] = None,
        parallelism: Optional[int] = None,
        on_deliver=None,
        retain_results: bool = True,
    ) -> None:
        self.cluster = cluster or SimulatedCluster()
        self.deployment = deployment or BaselineDeploymentModel()
        self._parallelism = (
            parallelism
            if parallelism is not None
            else self.cluster.parallelism_for()
        )
        self.channels = QueryChannels(
            retain_results=retain_results, on_deliver=on_deliver
        )
        self._jobs: Dict[str, _Job] = {}
        self._first_deploy = True
        self.deployment_events: List[DeploymentEvent] = []
        self._last_watermark_ms = -1

    # -- query control -----------------------------------------------------

    def submit(self, query: Query, now_ms: int) -> str:
        """Deploy a new topology for ``query``; returns the query id.

        Raises :class:`~repro.minispe.cluster.ClusterCapacityError` when
        the cluster has no free slots for another topology.
        """
        graph = self._build_graph(query)
        instances = graph.total_instances()
        self.cluster.allocate(query.query_id, instances)
        runtime = JobRuntime(graph)
        self._jobs[query.query_id] = _Job(
            query=query,
            runtime=runtime,
            created_at_ms=now_ms,
            streams=tuple(query.streams),
            instances=instances,
        )
        self.channels.open_channel(query.query_id)
        deploy_ms = self.deployment.deploy_ms(
            instances, self.cluster.spec.nodes, first=self._first_deploy
        )
        self._first_deploy = False
        self.deployment_events.append(
            DeploymentEvent(
                query_id=query.query_id,
                kind="create",
                requested_at_ms=now_ms,
                changelog_at_ms=now_ms,
                ready_at_ms=now_ms + deploy_ms,
            )
        )
        return query.query_id

    def stop(self, query_id: str, now_ms: int) -> None:
        """Stop and tear down one query's topology."""
        job = self._jobs.pop(query_id, None)
        if job is None:
            raise KeyError(f"query {query_id!r} is not running")
        job.runtime.close()
        self.cluster.release(query_id)
        self.channels.close_channel(query_id)
        self.deployment_events.append(
            DeploymentEvent(
                query_id=query_id,
                kind="delete",
                requested_at_ms=now_ms,
                changelog_at_ms=now_ms,
                ready_at_ms=now_ms + self.deployment.stop_ms(),
            )
        )

    def deploy_cost_ms(self, query: Query) -> int:
        """The virtual-time cost the driver should charge for ``query``."""
        graph = self._build_graph(query)
        return self.deployment.deploy_ms(
            graph.total_instances(), self.cluster.spec.nodes, self._first_deploy
        )

    # -- topology per query kind -----------------------------------------------

    def _build_graph(self, query: Query) -> JobGraph:
        if isinstance(query, SelectionQuery):
            return self._selection_graph(query)
        if isinstance(query, AggregationQuery):
            return self._aggregation_graph(query)
        if isinstance(query, JoinQuery):
            return self._join_graph(query)
        if isinstance(query, ComplexQuery):
            return self._complex_graph(query)
        raise TypeError(f"unsupported query type {type(query).__name__}")

    def _sink_factory(self, query_id: str):
        deliver = self.channels.deliver

        def make_sink():
            return CallbackSink(
                lambda record, qid=query_id: deliver(
                    qid, record.timestamp, record.value
                ),
                name=f"sink:{query_id}",
            )

        return make_sink

    def _selection_graph(self, query: SelectionQuery) -> JobGraph:
        graph = JobGraph(query.query_id)
        graph.add_source("src")
        graph.add_operator(
            "filter",
            lambda: FilterOperator(query.predicate.evaluate),
            parallelism=self._parallelism,
        )
        graph.add_operator("sink", self._sink_factory(query.query_id))
        graph.connect("src", "filter", Partitioning.REBALANCE)
        graph.connect("filter", "sink", Partitioning.REBALANCE)
        return graph

    def _aggregation_graph(self, query: AggregationQuery) -> JobGraph:
        spec = query.aggregation
        graph = JobGraph(query.query_id)
        graph.add_source("src")
        graph.add_operator(
            "filter",
            lambda: FilterOperator(query.predicate.evaluate),
            parallelism=self._parallelism,
        )
        graph.add_operator(
            "window_agg",
            lambda: WindowedAggregateOperator(
                query.window_spec.make_assigner(),
                init=spec.initial,
                add=spec.add,
                merge=spec.merge,
                finish=spec.finish,
            ),
            parallelism=self._parallelism,
        )
        graph.add_operator("sink", self._sink_factory(query.query_id))
        graph.connect("src", "filter", Partitioning.REBALANCE)
        graph.connect("filter", "window_agg", Partitioning.HASH)
        graph.connect("window_agg", "sink", Partitioning.REBALANCE)
        return graph

    def _join_graph(self, query: JoinQuery) -> JobGraph:
        graph = JobGraph(query.query_id)
        graph.add_source(f"src:{query.left_stream}")
        graph.add_source(f"src:{query.right_stream}")
        graph.add_operator(
            "filter_left",
            lambda: FilterOperator(query.left_predicate.evaluate),
            parallelism=self._parallelism,
        )
        graph.add_operator(
            "filter_right",
            lambda: FilterOperator(query.right_predicate.evaluate),
            parallelism=self._parallelism,
        )
        graph.add_operator(
            "window_join",
            lambda: WindowedJoinOperator(query.window_spec.make_assigner()),
            parallelism=self._parallelism,
        )
        graph.add_operator("sink", self._sink_factory(query.query_id))
        graph.connect(f"src:{query.left_stream}", "filter_left", Partitioning.REBALANCE)
        graph.connect(
            f"src:{query.right_stream}", "filter_right", Partitioning.REBALANCE
        )
        graph.connect("filter_left", "window_join", Partitioning.HASH, input_index=0)
        graph.connect("filter_right", "window_join", Partitioning.HASH, input_index=1)
        graph.connect("window_join", "sink", Partitioning.REBALANCE)
        return graph

    def _complex_graph(self, query: ComplexQuery) -> JobGraph:
        spec = query.aggregation
        graph = JobGraph(query.query_id)
        for stream, predicate in zip(query.join_streams, query.predicates):
            graph.add_source(f"src:{stream}")
            graph.add_operator(
                f"filter:{stream}",
                lambda p=predicate: FilterOperator(p.evaluate),
                parallelism=self._parallelism,
            )
            graph.connect(f"src:{stream}", f"filter:{stream}", Partitioning.REBALANCE)

        def flatten(key, left, right, window):
            left_parts = left.parts if isinstance(left, JoinedTuple) else (left,)
            right_parts = right.parts if isinstance(right, JoinedTuple) else (right,)
            return JoinedTuple(
                key=key,
                parts=left_parts + right_parts,
                timestamp=window.max_timestamp(),
            )

        upstream = f"filter:{query.join_streams[0]}"
        for depth, stream in enumerate(query.join_streams[1:], start=1):
            join_name = f"join{depth}"
            graph.add_operator(
                join_name,
                lambda: WindowedJoinOperator(
                    query.join_window.make_assigner(), result_fn=flatten
                ),
                parallelism=self._parallelism,
            )
            graph.connect(upstream, join_name, Partitioning.HASH, input_index=0)
            graph.connect(
                f"filter:{stream}", join_name, Partitioning.HASH, input_index=1
            )
            upstream = join_name
        graph.add_operator(
            "window_agg",
            lambda: WindowedAggregateOperator(
                query.aggregation_window.make_assigner(),
                init=spec.initial,
                add=spec.add,
                merge=spec.merge,
                finish=spec.finish,
            ),
            parallelism=self._parallelism,
        )
        graph.add_operator("sink", self._sink_factory(query.query_id))
        graph.connect(upstream, "window_agg", Partitioning.HASH)
        graph.connect("window_agg", "sink", Partitioning.REBALANCE)
        return graph

    # -- fault tolerance ---------------------------------------------------------

    def recover(self) -> int:
        """Supervised restart after a failure: redeploy every running job.

        The query-at-a-time model has no shared checkpoint/replay path:
        each job's topology is rebuilt from scratch and its in-flight
        window state is lost (the tuples-before-creation semantics of an
        ad-hoc job re-attaching to the bus).  Slot allocations and result
        channels are preserved.  Returns the number of jobs redeployed.
        """
        for job in self._jobs.values():
            # No close(): a crash discards in-flight state, it does not
            # flush pending windows.
            job.runtime = JobRuntime(self._build_graph(job.query))
        return len(self._jobs)

    # -- data path ----------------------------------------------------------------

    def push(self, stream: str, timestamp: int, value: Any, key: Any = None) -> None:
        """Fork one tuple to every running job that reads ``stream``.

        This is the baseline's fundamental cost: with *k* matching
        queries the tuple is processed *k* times.
        """
        if key is None:
            key = getattr(value, "key", None)
        record = Record(timestamp=timestamp, value=value, key=key)
        for job in self._jobs.values():
            if stream in job.streams and timestamp >= job.created_at_ms:
                source = self._source_name(job, stream)
                job.runtime.push(source, record)

    def push_many(self, stream: str, tuples: List) -> int:
        """Fork a micro-batch of ``(timestamp, value)`` tuples to jobs.

        Records are materialised once; each matching job receives the
        sub-batch of tuples at or after its creation time (the same
        attach-from-latest-offset rule as :meth:`push`).  Returns the
        number of tuples injected.
        """
        records = [
            Record(
                timestamp=timestamp,
                value=value,
                key=getattr(value, "key", None),
            )
            for timestamp, value in tuples
        ]
        if not records:
            return 0
        for job in self._jobs.values():
            if stream not in job.streams:
                continue
            created = job.created_at_ms
            eligible = [r for r in records if r.timestamp >= created]
            if not eligible:
                continue
            job.runtime.push(
                self._source_name(job, stream),
                eligible[0] if len(eligible) == 1 else RecordBatch(eligible),
            )
        return len(records)

    def watermark(self, timestamp: int) -> None:
        """Advance event time on every stream of every job."""
        if timestamp <= self._last_watermark_ms:
            return
        self._last_watermark_ms = timestamp
        watermark = Watermark(timestamp=timestamp)
        for job in self._jobs.values():
            for source in job.runtime.graph.sources():
                job.runtime.push(source.name, watermark)

    @staticmethod
    def _source_name(job: _Job, stream: str) -> str:
        if len(job.streams) == 1:
            return "src"
        return f"src:{stream}"

    # -- results & stats --------------------------------------------------------------

    def results(self, query_id: str) -> List[QueryOutput]:
        """Results delivered to a query so far."""
        return self.channels.results(query_id)

    def canonical_results(self, query_id: str) -> List[QueryOutput]:
        """Results in the deterministic cross-backend merge order.

        Lets equivalence tests compare the baseline against either
        AStream backend without caring about arrival order.
        """
        return self.channels.canonical_results(query_id)

    def result_count(self, query_id: str) -> int:
        """Number of results delivered to a query."""
        return self.channels.count(query_id)

    def result_counts(self) -> Dict[str, int]:
        """Delivered-result count per query (driver reporting)."""
        return {
            query_id: self.channels.count(query_id)
            for query_id in self.channels.query_ids()
        }

    @property
    def active_query_count(self) -> int:
        """Currently running jobs."""
        return len(self._jobs)

    @property
    def used_slots(self) -> int:
        """Task slots occupied by all running jobs."""
        return self.cluster.used_slots

    def shutdown(self) -> None:
        """Stop every job and release all slots."""
        for query_id in list(self._jobs):
            job = self._jobs.pop(query_id)
            job.runtime.close()
            self.cluster.release(query_id)
