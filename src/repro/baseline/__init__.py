"""Query-at-a-time baseline: the Flink model without sharing.

The paper's baseline SUT is Apache Flink 1.5.2 driven one query per job:
every ad-hoc query submits a *new* streaming topology, the input stream
is forked to each job (the "fork via message bus + add resources"
best practice of §1), and no computation or state is shared.  This
package reimplements that model on the same :mod:`repro.minispe`
substrate so that the comparison isolates exactly AStream's sharing and
on-the-fly query management:

* :mod:`repro.baseline.deployment` — the per-job deployment cost model
  (job submission, operator placement, slot allocation) that produces
  Figure 10a's unbounded deployment queueing;
* :mod:`repro.baseline.engine` — :class:`QueryAtATimeEngine`, which runs
  one independent pipeline per query and processes each input tuple once
  *per query*.
"""

from repro.baseline.deployment import BaselineDeploymentModel
from repro.baseline.engine import QueryAtATimeEngine, UnsustainableWorkload

__all__ = [
    "BaselineDeploymentModel",
    "QueryAtATimeEngine",
    "UnsustainableWorkload",
]
