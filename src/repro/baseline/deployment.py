"""Deployment cost model for the query-at-a-time baseline.

Every ad-hoc query in the baseline is a full streaming job: the client
packages and submits it, the job manager schedules its operators onto
task slots, and task managers spin the operators up.  Measured Flink 1.x
submission times are in the several-seconds range — Figure 11 shows about
five seconds for a single Flink query deployment on the paper's cluster —
and crucially they exceed the one-query-per-second arrival rate of SC1's
mildest configuration, so the driver's request queue (Figure 5) grows
without bound and deployment latency climbs to tens of seconds
(Figure 10a; the paper reports the 20-query total at 910 s).

Costs are charged in *virtual* time by the driver; calibration constants
live here so ablations can tweak them in one place.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BaselineDeploymentModel:
    """Virtual-time costs (ms) of query-at-a-time job management."""

    cold_start_ms: int = 5_000
    """First-ever deployment: cluster session spin-up (Figure 10's tall
    first bar exists for both SUTs)."""

    job_submit_ms: int = 4_000
    """Per-job client → job-manager submission, scheduling, task spin-up.

    Calibrated to Figure 11's ~5 s single-query Flink deployment
    (submit + placement on a 4-node cluster)."""

    job_stop_ms: int = 1_500
    """Stopping a running job (savepoint + teardown)."""

    per_instance_ms: int = 25
    """Placing one operator instance on a task manager."""

    def deploy_ms(self, instances: int, nodes: int, first: bool) -> int:
        """Cost of deploying one query's topology."""
        cost = self.job_submit_ms + self._placement_ms(instances, nodes)
        if first:
            cost += self.cold_start_ms
        return cost

    def stop_ms(self) -> int:
        """Cost of stopping one query's topology."""
        return self.job_stop_ms

    def _placement_ms(self, instances: int, nodes: int) -> int:
        per_node = -(-instances // max(1, nodes))
        return self.per_instance_ms * per_node
