"""Live pipeline inspector: render telemetry snapshots for terminals.

The ISSUE 4 tentpole's presentation layer.  Input is the JSON-able
snapshot produced by :meth:`repro.core.engine.AStreamEngine.obs_snapshot`
(or the merged cross-shard snapshot of
:class:`~repro.core.parallel_engine.ProcessAStreamEngine`); output is a
plain-text dashboard:

* per-operator latency breakdown — exclusive time per stage from the
  sampled span traces, with each stage's share of the end-to-end time;
* operator state — slice counts, changelog table sizes, join/agg
  cardinalities, router fan-out, spill-store gauges (segments, spilled
  bytes) and arrangement gauges (arranged deltas, leases, backfills) —
  grouped per operator (and per shard on the process backend);
* shard balance — per-shard input records and the straggler skew gauge;
* the tail of the structured event log.

Everything renders from snapshot dicts, so the inspector works equally
on a live engine, a merged cross-process snapshot, or a
``obs_*_metrics.json`` artifact read back from disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.tracing import breakdown_from_snapshot

_STATE_GAUGES = (
    "slices",
    "slices_left",
    "slices_right",
    "tuples_stored",
    "pair_cache_size",
    "changelog_table_size",
    "session_windows",
    "fan_out",
    "active_query_count",
    "sharing_groups",
    "sharing_grouped_slots",
    "sharing_cover_skips",
    "sharing_residual_checks",
    # ISSUE 10: spill-to-disk keyed state and shared arrangements.
    "spilled_bytes",
    "spill_segments",
    "spill_memtable_entries",
    "spill_flushes",
    "arrangement_count",
    "reader_leases",
    "arranged_deltas",
    "arranged_keys",
    "compaction_debt",
    "backfilled_windows",
)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e3:.1f}us"


def render_breakdown(trace_snapshot: Dict, width: int = 28) -> List[str]:
    """Per-operator latency breakdown lines from a trace snapshot."""
    breakdown = breakdown_from_snapshot(trace_snapshot)
    lines = [
        f"latency breakdown ({breakdown['sampled']} sampled pushes, "
        f"mean e2e {_fmt_ns(breakdown['e2e_mean_ns'])}, "
        f"{breakdown['coverage']:.1%} attributed)"
    ]
    if not breakdown["stages"]:
        lines.append("  (no sampled traces)")
        return lines
    total = breakdown["e2e_total_ns"] or 1
    ranked = sorted(
        breakdown["stages"].items(),
        key=lambda item: -item[1]["total_ns"],
    )
    for stage, info in ranked:
        share = info["total_ns"] / total
        bar = "#" * max(1, round(share * 24)) if info["total_ns"] else ""
        lines.append(
            f"  {stage:<{width}} {_fmt_ns(info['mean_ns']):>9}/push "
            f"{share:>6.1%} {bar}"
        )
    return lines


def render_operator_state(registry: Dict[str, dict]) -> List[str]:
    """Operator state-gauge lines grouped by (operator, shard)."""
    grouped: Dict[str, Dict[str, object]] = {}
    for entry in registry.values():
        if entry["type"] != "gauge" or entry["name"] not in _STATE_GAUGES:
            continue
        operator = entry["labels"].get("operator")
        if operator is None:
            continue
        shard = entry["labels"].get("shard")
        group = operator if shard is None else f"{operator} [shard {shard}]"
        grouped.setdefault(group, {})[entry["name"]] = entry["value"]
    if not grouped:
        return []
    lines = ["operator state"]
    for group in sorted(grouped):
        parts = ", ".join(
            f"{name}={grouped[group][name]:,}"
            for name in _STATE_GAUGES
            if name in grouped[group]
        )
        lines.append(f"  {group}: {parts}")
    return lines


def render_shard_balance(registry: Dict[str, dict]) -> List[str]:
    """Per-shard record counts and straggler skew (process backend)."""
    records = {
        entry["labels"]["shard"]: entry["value"]
        for entry in registry.values()
        if entry["name"] == "shard_records" and "shard" in entry["labels"]
    }
    if not records:
        return []
    skew = next(
        (
            entry["value"]
            for entry in registry.values()
            if entry["name"] == "straggler_skew"
        ),
        None,
    )
    lines = ["shard balance" + (f" (straggler skew {skew:.2f}x)" if skew else "")]
    peak = max(records.values()) or 1
    for shard in sorted(records, key=int):
        count = records[shard]
        bar = "#" * max(1, round(count / peak * 24)) if count else ""
        lines.append(f"  shard {shard}: {count:>10,.0f} {bar}")
    return lines


def render_latency_slo(
    slo_summary: Optional[Dict],
    wire_snapshot: Optional[Dict] = None,
    limit: int = 10,
) -> List[str]:
    """Wire-latency / SLO panel: per-query percentiles, targets, burn.

    ``slo_summary`` is :meth:`repro.obs.slo.SLOTracker.summary` (or the
    ``slo`` block of a serve ``stats`` frame); ``wire_snapshot`` is a
    :meth:`repro.obs.tracing.WireTraceBook.snapshot`, rendered as the
    wire-stage breakdown header when present.
    """
    if not slo_summary or not slo_summary.get("queries"):
        return []
    lines: List[str] = []
    if wire_snapshot and wire_snapshot.get("e2e_count"):
        count = wire_snapshot["e2e_count"]
        mean_ns = wire_snapshot["e2e_total_ns"] / count
        stages = ", ".join(
            f"{stage} {_fmt_ns(total / max(1, n))}"
            for stage, (n, total) in sorted(
                wire_snapshot.get("stage_totals", {}).items(),
                key=lambda item: -item[1][1],
            )
        )
        lines.append(
            f"wire latency ({count} traced pushes, mean e2e "
            f"{_fmt_ns(mean_ns)}; {stages})"
        )
    header = (
        f"latency SLOs (objective {slo_summary.get('objective', 0):.2%}, "
        f"{slo_summary.get('observed_total', 0)} observed, "
        f"{slo_summary.get('violations_total', 0)} violations, "
        f"max burn {slo_summary.get('max_burn_rate', 0.0):.2f}x)"
    )
    lines.append(header)
    queries = slo_summary["queries"]
    ranked = sorted(
        queries.items(),
        key=lambda item: (-item[1].get("burn_rate", 0.0), item[0]),
    )
    for query_id, info in ranked[:limit]:
        target = info.get("target_ms")
        target_txt = f"slo {target:g}ms" if target is not None else "no slo"
        burn = info.get("burn_rate", 0.0)
        flame = " BURNING" if burn >= 1.0 else ""
        lines.append(
            f"  {query_id:<20} p50 {info.get('p50', 0.0):>8.2f}ms  "
            f"p95 {info.get('p95', 0.0):>8.2f}ms  "
            f"p99 {info.get('p99', 0.0):>8.2f}ms  "
            f"{target_txt:>12}  burn {burn:>5.2f}x{flame}"
        )
    if len(queries) > limit:
        lines.append(f"  ... and {len(queries) - limit} more queries")
    return lines


def render_cost_attribution(attribution: Optional[Dict], limit: int = 8) -> List[str]:
    """Per-query CPU shares (shared work split across group members)."""
    if not attribution or not attribution.get("queries"):
        return []
    total = attribution.get("total_ns", 0) or 1
    lines = [
        f"cost attribution ({_fmt_ns(total)} engine CPU, "
        f"{_fmt_ns(attribution.get('unattributed_ns', 0))} unattributed)"
    ]
    ranked = sorted(
        attribution["queries"].items(), key=lambda item: (-item[1], item[0])
    )
    for query_id, ns in ranked[:limit]:
        share = ns / total
        bar = "#" * max(1, round(share * 24)) if ns else ""
        lines.append(
            f"  {query_id:<20} {_fmt_ns(ns):>9} {share:>6.1%} {bar}"
        )
    return lines


def render_events(events: List[Dict], limit: int = 12) -> List[str]:
    """The tail of the structured event log, one line per event."""
    if not events:
        return []
    lines = [f"events (last {min(limit, len(events))} of {len(events)})"]
    for event in events[-limit:]:
        fields = ", ".join(
            f"{key}={value}"
            for key, value in sorted(event.items())
            if key not in ("seq", "kind", "t_ms")
        )
        stamp = f"t={event['t_ms']}ms " if event.get("t_ms") is not None else ""
        lines.append(f"  [{event['seq']:>5}] {stamp}{event['kind']}: {fields}")
    return lines


def render_dashboard(
    snapshot: Dict,
    events: Optional[List[Dict]] = None,
    title: str = "pipeline inspector",
) -> str:
    """The full terminal dashboard for one telemetry snapshot."""
    registry = snapshot.get("registry", {})
    sections = [
        [f"== {title} =="],
        render_breakdown(snapshot.get("trace", {})),
        render_latency_slo(
            snapshot.get("slo"), snapshot.get("wire_trace")
        ),
        render_cost_attribution(snapshot.get("cost")),
        render_shard_balance(registry),
        render_operator_state(registry),
        render_events(events or []),
    ]
    body = []
    for section in sections:
        if not section:
            continue
        if body:
            body.append("")
        body.extend(section)
    return "\n".join(body)
