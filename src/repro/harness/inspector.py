"""Live pipeline inspector: render telemetry snapshots for terminals.

The ISSUE 4 tentpole's presentation layer.  Input is the JSON-able
snapshot produced by :meth:`repro.core.engine.AStreamEngine.obs_snapshot`
(or the merged cross-shard snapshot of
:class:`~repro.core.parallel_engine.ProcessAStreamEngine`); output is a
plain-text dashboard:

* per-operator latency breakdown — exclusive time per stage from the
  sampled span traces, with each stage's share of the end-to-end time;
* operator state — slice counts, changelog table sizes, join/agg
  cardinalities, router fan-out — grouped per operator (and per shard on
  the process backend);
* shard balance — per-shard input records and the straggler skew gauge;
* the tail of the structured event log.

Everything renders from snapshot dicts, so the inspector works equally
on a live engine, a merged cross-process snapshot, or a
``obs_*_metrics.json`` artifact read back from disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.tracing import breakdown_from_snapshot

_STATE_GAUGES = (
    "slices",
    "slices_left",
    "slices_right",
    "tuples_stored",
    "pair_cache_size",
    "changelog_table_size",
    "session_windows",
    "fan_out",
    "active_query_count",
    "sharing_groups",
    "sharing_grouped_slots",
    "sharing_cover_skips",
    "sharing_residual_checks",
)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e3:.1f}us"


def render_breakdown(trace_snapshot: Dict, width: int = 28) -> List[str]:
    """Per-operator latency breakdown lines from a trace snapshot."""
    breakdown = breakdown_from_snapshot(trace_snapshot)
    lines = [
        f"latency breakdown ({breakdown['sampled']} sampled pushes, "
        f"mean e2e {_fmt_ns(breakdown['e2e_mean_ns'])}, "
        f"{breakdown['coverage']:.1%} attributed)"
    ]
    if not breakdown["stages"]:
        lines.append("  (no sampled traces)")
        return lines
    total = breakdown["e2e_total_ns"] or 1
    ranked = sorted(
        breakdown["stages"].items(),
        key=lambda item: -item[1]["total_ns"],
    )
    for stage, info in ranked:
        share = info["total_ns"] / total
        bar = "#" * max(1, round(share * 24)) if info["total_ns"] else ""
        lines.append(
            f"  {stage:<{width}} {_fmt_ns(info['mean_ns']):>9}/push "
            f"{share:>6.1%} {bar}"
        )
    return lines


def render_operator_state(registry: Dict[str, dict]) -> List[str]:
    """Operator state-gauge lines grouped by (operator, shard)."""
    grouped: Dict[str, Dict[str, object]] = {}
    for entry in registry.values():
        if entry["type"] != "gauge" or entry["name"] not in _STATE_GAUGES:
            continue
        operator = entry["labels"].get("operator")
        if operator is None:
            continue
        shard = entry["labels"].get("shard")
        group = operator if shard is None else f"{operator} [shard {shard}]"
        grouped.setdefault(group, {})[entry["name"]] = entry["value"]
    if not grouped:
        return []
    lines = ["operator state"]
    for group in sorted(grouped):
        parts = ", ".join(
            f"{name}={grouped[group][name]:,}"
            for name in _STATE_GAUGES
            if name in grouped[group]
        )
        lines.append(f"  {group}: {parts}")
    return lines


def render_shard_balance(registry: Dict[str, dict]) -> List[str]:
    """Per-shard record counts and straggler skew (process backend)."""
    records = {
        entry["labels"]["shard"]: entry["value"]
        for entry in registry.values()
        if entry["name"] == "shard_records" and "shard" in entry["labels"]
    }
    if not records:
        return []
    skew = next(
        (
            entry["value"]
            for entry in registry.values()
            if entry["name"] == "straggler_skew"
        ),
        None,
    )
    lines = ["shard balance" + (f" (straggler skew {skew:.2f}x)" if skew else "")]
    peak = max(records.values()) or 1
    for shard in sorted(records, key=int):
        count = records[shard]
        bar = "#" * max(1, round(count / peak * 24)) if count else ""
        lines.append(f"  shard {shard}: {count:>10,.0f} {bar}")
    return lines


def render_events(events: List[Dict], limit: int = 12) -> List[str]:
    """The tail of the structured event log, one line per event."""
    if not events:
        return []
    lines = [f"events (last {min(limit, len(events))} of {len(events)})"]
    for event in events[-limit:]:
        fields = ", ".join(
            f"{key}={value}"
            for key, value in sorted(event.items())
            if key not in ("seq", "kind", "t_ms")
        )
        stamp = f"t={event['t_ms']}ms " if event.get("t_ms") is not None else ""
        lines.append(f"  [{event['seq']:>5}] {stamp}{event['kind']}: {fields}")
    return lines


def render_dashboard(
    snapshot: Dict,
    events: Optional[List[Dict]] = None,
    title: str = "pipeline inspector",
) -> str:
    """The full terminal dashboard for one telemetry snapshot."""
    registry = snapshot.get("registry", {})
    sections = [
        [f"== {title} =="],
        render_breakdown(snapshot.get("trace", {})),
        render_shard_balance(registry),
        render_operator_state(registry),
        render_events(events or []),
    ]
    body = []
    for section in sections:
        if not section:
            continue
        if body:
            body.append("")
        body.extend(section)
    return "\n".join(body)
