"""Figure results and table rendering.

Each experiment in :mod:`repro.harness.figures` returns a
:class:`FigureResult`; :func:`render_table` prints it the way the
benchmark harness and EXPERIMENTS.md consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class FigureResult:
    """One reproduced figure: rows of measurements plus context."""

    figure_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_expectation: str = ""
    """The shape the paper's figure shows, for EXPERIMENTS.md."""
    notes: str = ""

    def add(self, **row: Any) -> None:
        """Append one row."""
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if abs(value) >= 1_000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def render_table(result: FigureResult) -> str:
    """Render a figure result as a fixed-width ASCII table."""
    columns = list(result.columns)
    header = [column for column in columns]
    body = [
        [_format_cell(row.get(column)) for column in columns]
        for row in result.rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    divider = "-+-".join("-" * width for width in widths)
    lines = [
        f"{result.figure_id}: {result.title}",
        " | ".join(header[i].ljust(widths[i]) for i in range(len(columns))),
        divider,
    ]
    for line in body:
        lines.append(
            " | ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        )
    if result.paper_expectation:
        lines.append(f"paper: {result.paper_expectation}")
    if result.notes:
        lines.append(f"notes: {result.notes}")
    return "\n".join(lines)


def render_csv(result: FigureResult) -> str:
    """Render a figure result as CSV (for external plotting tools).

    Cells are rendered raw (no thousands separators); commas or quotes
    inside values are quoted per RFC 4180.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([row.get(column) for column in result.columns])
    return buffer.getvalue()


def render_recovery_log(events: List) -> str:
    """Render a supervisor's recovery events as a readable incident log.

    Takes :class:`~repro.faults.supervisor.RecoveryEvent` objects (any
    object with the same fields works); returns one line per recovery
    plus a summary footer, or a quiet-run marker when nothing failed.
    """
    if not events:
        return "recovery log: no failures"
    lines = ["recovery log:"]
    for index, event in enumerate(events, start=1):
        checkpoint = (
            f"ckpt {event.checkpoint_id}"
            if event.checkpoint_id is not None
            else "full restart"
        )
        lines.append(
            f"  #{index} t={event.detected_at_ms / 1000.0:.2f}s "
            f"cause={event.cause} {checkpoint} "
            f"replayed={event.replayed_elements} "
            f"mttr={event.mttr_ms / 1000.0:.2f}s"
        )
    mean_mttr = sum(event.mttr_ms for event in events) / len(events)
    lines.append(
        f"  {len(events)} recoveries, mean MTTR {mean_mttr / 1000.0:.2f}s, "
        f"{sum(event.replayed_elements for event in events)} elements replayed"
    )
    return "\n".join(lines)


def render_series(
    title: str, series: List, value_label: str = "value", bins: int = 12
) -> str:
    """Render a (time, value) series as a coarse ASCII sparkline table."""
    if not series:
        return f"{title}: (empty)"
    lines = [title]
    step = max(1, len(series) // bins)
    for index in range(0, len(series), step):
        time_ms, value = series[index]
        lines.append(f"  t={time_ms / 1000.0:7.1f}s  {value_label}={value:,.1f}")
    return "\n".join(lines)
